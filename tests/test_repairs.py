"""Tests for the repair substrate: subset repairs, fresh chase, minimality
and the canonical ⊕-repair oracle."""

import pytest

from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query
from repro.db.constraints import is_consistent
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.exceptions import OracleLimitation
from repro.repairs import (
    OracleConfig,
    canonical_repairs,
    certain_answer,
    certainty_primary_keys,
    count_subset_repairs,
    dominating_instance,
    falsifying_repair,
    falsifying_subset_repair,
    frequency_of_satisfaction,
    fresh_completion,
    is_certain,
    is_subset_repair,
    least_needed,
    subset_repairs,
    verify_repair,
)
from repro.workloads import ChainParams, chain_instance, chain_problem


def F(rel, *values, key=1):
    return Fact(rel, tuple(values), key)


class TestSubsetRepairs:
    def test_count_matches_enumeration(self):
        db = DatabaseInstance(
            [F("R", 1, 2), F("R", 1, 3), F("R", 2, 1), F("S", 1)]
        )
        repairs = list(subset_repairs(db))
        assert len(repairs) == count_subset_repairs(db) == 2

    def test_each_is_a_subset_repair(self):
        db = DatabaseInstance([F("R", 1, 2), F("R", 1, 3), F("S", 1)])
        for repair in subset_repairs(db):
            assert is_subset_repair(repair, db)

    def test_empty_db(self):
        assert list(subset_repairs(DatabaseInstance())) == [DatabaseInstance()]
        assert count_subset_repairs(DatabaseInstance()) == 1

    def test_certainty(self):
        q = parse_query("R(x | 'a')")
        certain_db = DatabaseInstance([F("R", 1, "a")])
        uncertain_db = DatabaseInstance([F("R", 1, "a"), F("R", 1, "b")])
        assert certainty_primary_keys(q, certain_db)
        assert not certainty_primary_keys(q, uncertain_db)
        witness = falsifying_subset_repair(q, uncertain_db)
        assert witness is not None and F("R", 1, "b") in witness

    def test_frequency(self):
        q = parse_query("R(x | 'a')")
        db = DatabaseInstance([F("R", 1, "a"), F("R", 1, "b")])
        assert frequency_of_satisfaction(q, db) == (1, 2)

    def test_is_subset_repair_rejects_partial(self):
        db = DatabaseInstance([F("R", 1, 2), F("S", 1)])
        assert not is_subset_repair(DatabaseInstance([F("R", 1, 2)]), db)
        assert not is_subset_repair(
            DatabaseInstance([F("R", 1, 2), F("R", 9, 9), F("S", 1)]), db
        )


class TestFreshCompletion:
    def _fks(self):
        q = parse_query("R(x | y)", "S(y | z)", "T(z |)")
        return fk_set(q, "R[2]->S", "S[2]->T")

    def test_completion_restores_consistency(self):
        fks = self._fks()
        kept = frozenset({F("R", "a", "b")})
        completion = fresh_completion(kept, fks)
        assert not completion.used_pool
        full = DatabaseInstance(kept | completion.insertions)
        assert is_consistent(full, fks)

    def test_completion_is_least(self):
        fks = self._fks()
        kept = frozenset({F("R", "a", "b")})
        completion = fresh_completion(kept, fks)
        needed = least_needed(kept, completion.insertions, fks)
        assert needed == completion.insertions

    def test_reuses_kept_facts(self):
        fks = self._fks()
        kept = frozenset({F("R", "a", "b"), F("S", "b", "c")})
        completion = fresh_completion(kept, fks)
        # only T(c) is missing
        assert len(completion.insertions) == 1
        (inserted,) = completion.insertions
        assert inserted.relation == "T" and inserted.value_at(1) == "c"

    def test_cyclic_chain_closes_with_pool(self):
        q = parse_query("S(y | z)")
        fks = fk_set(q, "S[2]->S")
        kept = frozenset({F("S", "a", "b")})
        completion = fresh_completion(kept, fks, depth_limit=2, period=2)
        assert completion.used_pool
        full = DatabaseInstance(kept | completion.insertions)
        assert is_consistent(full, fks)

    def test_insertion_bound(self):
        q = parse_query("S(y | z)")
        fks = fk_set(q, "S[2]->S")
        with pytest.raises(OracleLimitation):
            fresh_completion(
                frozenset({F("S", "a", "b")}),
                fks,
                depth_limit=10_001,
                max_insertions=100,
            )


class TestLeastNeeded:
    def test_unfixable_returns_none(self):
        q = parse_query("R(x | y)", "S(y |)")
        fks = fk_set(q, "R[2]->S")
        assert least_needed(
            frozenset({F("R", 1, 2)}), frozenset(), fks
        ) is None

    def test_picks_only_what_is_referenced(self):
        q = parse_query("R(x | y)", "S(y |)")
        fks = fk_set(q, "R[2]->S")
        available = frozenset({F("S", 2), F("S", 9)})
        needed = least_needed(frozenset({F("R", 1, 2)}), available, fks)
        assert needed == {F("S", 2)}


class TestExample4:
    """The paper's Example 4: exactly three ⊕-repairs."""

    def setup_method(self):
        q = parse_query("R(x | y)", "S(y | z)", "T(z |)")
        self.q = q
        self.fks = fk_set(q, "R[2]->S", "S[2]->T")
        self.db = DatabaseInstance([F("R", "a", "b"), F("S", "b", "c")])

    def test_three_canonical_repairs(self):
        repairs = list(canonical_repairs(self.db, self.fks))
        assert len(repairs) == 3
        sizes = sorted(r.size for r in repairs)
        assert sizes == [0, 3, 3]

    def test_superset_repair_present(self):
        repairs = list(canonical_repairs(self.db, self.fks))
        superset = [r for r in repairs if self.db.facts <= r.facts]
        assert len(superset) == 1
        assert F("T", "c") in superset[0]

    def test_empty_repair_present(self):
        repairs = list(canonical_repairs(self.db, self.fks))
        assert DatabaseInstance() in repairs

    def test_all_verified(self):
        for repair in canonical_repairs(self.db, self.fks):
            assert verify_repair(self.db, repair, self.fks)

    def test_not_certain(self):
        answer = certain_answer(self.q, self.fks, self.db)
        assert not answer.certain
        assert answer.falsifying_repair is not None

    def test_non_repairs_rejected(self):
        # keeping S(b,c) without T(c) is inconsistent
        assert not verify_repair(
            self.db, DatabaseInstance([F("R", "a", "b"), F("S", "b", "c")]),
            self.fks,
        )
        # dropping R(a,b) while T(c), S(b,c) kept is not minimal
        assert not verify_repair(
            self.db,
            DatabaseInstance([F("S", "b", "c"), F("T", "c")]),
            self.fks,
        )


class TestDominance:
    def test_unneeded_insertion_detected(self):
        q = parse_query("R(x | y)", "S(y |)")
        fks = fk_set(q, "R[2]->S")
        db = DatabaseInstance([F("R", 1, 2)])
        dominated = dominating_instance(
            db, frozenset({F("R", 1, 2)}),
            frozenset({F("S", 2), F("S", 99)}), fks,
        )
        assert dominated is not None
        assert F("S", 99) not in dominated

    def test_droppable_block_detected(self):
        q = parse_query("R(x | y)", "S(y |)")
        fks = fk_set(q, "R[2]->S")
        db = DatabaseInstance([F("R", 1, 2), F("S", 2)])
        # dropping R's block while S(2) is kept is dominated by keeping it
        dominated = dominating_instance(
            db, frozenset({F("S", 2)}), frozenset(), fks
        )
        assert dominated is not None
        assert F("R", 1, 2) in dominated


class TestChainOracle:
    def test_chain_semantics(self):
        q, fks = chain_problem()
        for n in (1, 2, 3):
            for marker, expected in (("c", True), ("e", False)):
                params = ChainParams(n, marker)
                db = chain_instance(params)
                assert is_certain(q, fks, db) == expected, (n, marker)

    def test_seedless_chain_is_no_instance(self):
        q, fks = chain_problem()
        db = chain_instance(ChainParams(2, "c", with_seed_fact=False))
        assert not is_certain(q, fks, db)

    def test_falsifying_repair_returned(self):
        q, fks = chain_problem()
        db = chain_instance(ChainParams(2, "e"))
        repair = falsifying_repair(q, fks, db)
        assert repair is not None
        assert verify_repair(db, repair, fks)

    def test_keep_choice_bound(self):
        q, fks = chain_problem()
        db = chain_instance(ChainParams(6, "c"))
        with pytest.raises(OracleLimitation):
            certain_answer(q, fks, db, OracleConfig(max_keep_choices=4))


class TestCyclicDependencyOracle:
    def test_self_loop_forced_block(self):
        """q = {N(x,x), O(x,y)}, FK = {N[2]→N, N[2]→O} (Example 27 shape).

        ``N(a,a)`` is self-supporting and ``O(a,b)`` supports its second
        reference, so dropping either is ⊕-dominated: every repair contains
        both and the instance is certain.
        """
        q = parse_query("N(x | x)", "O(x | y)")
        fks = fk_set(q, "N[2]->N", "N[2]->O")
        db = DatabaseInstance([F("N", "a", "a"), F("O", "a", "b")])
        assert is_certain(q, fks, db)

    def test_example27_irrelevant_completion(self):
        """A falsifying repair must complete the dangling ``N(b,c)`` with an
        irrelevant cyclic pattern (the paper's ``db_{A,P}`` in Example 27),
        which exercises the oracle's pool-closure strategy."""
        q = parse_query("N(x | x)", "O(x | y)")
        fks = fk_set(q, "N[2]->N", "N[2]->O")
        db = DatabaseInstance(
            [F("N", "b", "b"), F("N", "b", "c"), F("O", "b", "e")]
        )
        answer = certain_answer(q, fks, db)
        assert not answer.certain
        repair = answer.falsifying_repair
        # The repair keeps N(b,c) and closes its reference chain with
        # invented facts that never form a diagonal N(x,x).
        assert F("N", "b", "c") in repair
        for fact in repair.relation_facts("N"):
            assert fact.value_at(1) != fact.value_at(2)

    def test_diagonal_choice_forces_certainty(self):
        """Without the escape fact, every repair keeps the diagonal."""
        q = parse_query("N(x | x)", "O(x | y)")
        fks = fk_set(q, "N[2]->N", "N[2]->O")
        db = DatabaseInstance([F("N", "b", "b"), F("O", "b", "e")])
        assert is_certain(q, fks, db)
