"""Admission control: budgets, overloaded envelopes, overload telemetry.

Covers the server half of the overload contract: decide verbs past an
inflight budget are shed *at admission* with a structured ``overloaded``
envelope carrying ``retry_after_ms``; control-plane verbs always answer;
sheds land in the ``shed`` counters and ``repro_server_*`` gauge/counter
families — and never in the per-tier engine latency percentiles, which
only ever see admitted work (the satellite guarantee: an error-heavy
overload stream cannot skew p99).
"""

import asyncio

import pytest

from repro.api import Problem
from repro.engine.engine import EngineStats, merge_engine_stats
from repro.exceptions import RemoteError
from repro.serve import (
    AsyncServeClient,
    BackgroundServer,
    ServeClient,
    ServerConfig,
    ServerMetrics,
)
from repro.workloads.random_instances import (
    RandomInstanceParams,
    random_instances_for_query,
)

BURST = 24


@pytest.fixture(scope="module")
def slow_item():
    """One FO problem whose decide costs real milliseconds, so a
    pipelined burst reliably overlaps at the admission gate."""
    problem = Problem.of(
        "R(x | y)", "S(y | 'adm')", fks=["R[2]->S"], name="admission"
    )
    db = next(
        iter(
            random_instances_for_query(
                problem.query, problem.fks, 1, seed=7,
                params=RandomInstanceParams(
                    blocks_per_relation=150, max_block_size=3,
                    domain_size=300,
                ),
            )
        )
    )
    return problem, db


def _burst(host, port, problem, db, n=BURST, retries=0):
    """Fire *n* pipelined decides on ONE connection; return
    (ok, overloaded envelopes)."""

    async def drive():
        async with await AsyncServeClient.connect(
            host, port, retries=retries
        ) as client:
            results = await asyncio.gather(
                *[client.decide(problem, db) for _ in range(n)],
                return_exceptions=True,
            )
        ok = [r for r in results if isinstance(r, dict)]
        shed = [
            r for r in results
            if isinstance(r, RemoteError) and r.code == "overloaded"
        ]
        other = [
            r for r in results
            if isinstance(r, BaseException)
            and not (isinstance(r, RemoteError) and r.code == "overloaded")
        ]
        assert not other, f"unexpected failures: {other!r}"
        return ok, shed

    return asyncio.run(drive())


class TestConnectionBudget:
    def test_pipelined_burst_past_budget_sheds_with_retry_after(
        self, slow_item
    ):
        problem, db = slow_item
        config = ServerConfig(
            shards=1, max_connection_inflight=1, retry_after_ms=30
        )
        with BackgroundServer(config) as server:
            host, port = server.address
            ok, shed = _burst(host, port, problem, db)
            with ServeClient(host, port) as control:
                stats = control.stats()["server"]
        assert ok, "the first admitted request must be answered"
        assert shed, "a 1-deep budget must shed a pipelined burst"
        assert len(ok) + len(shed) == BURST
        for envelope in shed:
            assert envelope.retry_after_ms >= 30  # the hint, maybe scaled
            assert "connection" in str(envelope)
        assert stats["shed"] == len(shed)
        assert stats["shed_scopes"] == {"connection": len(shed)}

    def test_separate_connections_have_separate_budgets(self, slow_item):
        problem, db = slow_item
        config = ServerConfig(shards=1, max_connection_inflight=1)
        with BackgroundServer(config) as server:
            host, port = server.address

            async def two_clients():
                a = await AsyncServeClient.connect(host, port)
                b = await AsyncServeClient.connect(host, port)
                try:
                    # one request per connection: nobody exceeds their
                    # own budget, so nothing is shed
                    results = await asyncio.gather(
                        a.decide(problem, db), b.decide(problem, db)
                    )
                finally:
                    await a.close()
                    await b.close()
                return results

            results = asyncio.run(two_clients())
        assert all(r["decision"]["certain"] in (True, False)
                   for r in results)


class TestGlobalBudget:
    def test_global_budget_sheds_across_connections(self, slow_item):
        problem, db = slow_item
        config = ServerConfig(shards=1, max_inflight=2, retry_after_ms=10)
        with BackgroundServer(config) as server:
            host, port = server.address
            ok, shed = _burst(host, port, problem, db)
            with ServeClient(host, port) as control:
                stats = control.stats()["server"]
        assert ok and shed
        assert stats["shed_scopes"] == {"server": len(shed)}
        # pressure scaling: the hint never exceeds 8x the base
        for envelope in shed:
            assert 10 <= envelope.retry_after_ms <= 80

    def test_control_verbs_answer_while_saturated(self, slow_item):
        problem, db = slow_item
        config = ServerConfig(shards=1, max_inflight=1)
        with BackgroundServer(config) as server:
            host, port = server.address

            async def saturate_and_inspect():
                async with await AsyncServeClient.connect(
                    host, port
                ) as client:
                    decides = [
                        asyncio.ensure_future(client.decide(problem, db))
                        for _ in range(8)
                    ]
                    # un-budgeted verbs answer even mid-overload: an
                    # operator can always inspect a drowning server
                    pong = await client.ping()
                    stats = await client.stats()
                    exposition = await client.metrics()
                    await asyncio.gather(*decides, return_exceptions=True)
                return pong, stats, exposition

            pong, stats, exposition = asyncio.run(saturate_and_inspect())
        assert pong["pong"] is True
        assert "server" in stats
        assert "repro_server_inflight" in exposition

    def test_budgets_off_by_default(self, slow_item):
        problem, db = slow_item
        with BackgroundServer(ServerConfig(shards=1)) as server:
            ok, shed = _burst(*server.address, problem, db)
        assert len(ok) == BURST
        assert not shed


class TestClientRetries:
    def test_async_retries_ride_out_the_overload(self, slow_item):
        problem, db = slow_item
        config = ServerConfig(
            shards=1, max_connection_inflight=2, retry_after_ms=5
        )
        with BackgroundServer(config) as server:
            host, port = server.address
            ok, shed = _burst(
                host, port, problem, db, n=12, retries=8
            )
        # with retries honoring retry-after, every request eventually
        # lands: the burst serializes instead of failing
        assert len(ok) == 12
        assert not shed


class TestOverloadTelemetry:
    def test_prometheus_families_and_stats_gauges(self, slow_item):
        problem, db = slow_item
        config = ServerConfig(shards=1, max_inflight=1)
        with BackgroundServer(config) as server:
            host, port = server.address
            _burst(host, port, problem, db)
            with ServeClient(host, port) as control:
                stats = control.stats()["server"]
                exposition = control.metrics()
        assert "# TYPE repro_server_shed_total counter" in exposition
        assert "# TYPE repro_server_inflight gauge" in exposition
        assert "# TYPE repro_server_queue_depth gauge" in exposition
        assert "# TYPE repro_server_workers gauge" in exposition
        assert "repro_server_workers 1" in exposition
        # settled after the burst: gauges read zero, the counter stuck
        assert stats["inflight"] == 0
        assert stats["queue_depth"] == 0
        assert stats["shed"] > 0
        assert stats["max_inflight"] == 1

    def test_server_metrics_counts_shed_scopes(self):
        metrics = ServerMetrics()
        metrics.count_shed("server")
        metrics.count_shed("connection")
        metrics.count_shed("connection")
        document = metrics.to_dict()
        assert document["shed"] == 3
        assert document["shed_scopes"] == {"server": 1, "connection": 2}

    def test_sheds_never_skew_tier_percentiles(self, slow_item):
        """The satellite guarantee: an error-heavy overload stream lands
        in shed counters, not in the per-tier latency distribution."""
        problem, db = slow_item
        config = ServerConfig(shards=2, max_inflight=1, retry_after_ms=5)
        with BackgroundServer(config) as server:
            host, port = server.address
            ok, shed = _burst(host, port, problem, db)
            with ServeClient(host, port) as control:
                payload = control.stats()
        assert shed, "the test needs real overload to mean anything"
        merged = merge_engine_stats(
            EngineStats.from_dict(doc) for doc in payload["shards"]
        )
        tier_evals = sum(t.metrics.evaluations for t in merged.tiers)
        tier_errors = sum(t.metrics.errors for t in merged.tiers)
        # only admitted decides ever reach the engine: the tier
        # distribution counts exactly the ok responses, and the shed
        # excess shows up in the server's shed counter instead
        assert tier_evals == len(ok)
        assert tier_errors == 0
        assert payload["server"]["shed"] == len(shed)

    def test_merge_engine_stats_keeps_tier_shape_across_shards(
        self, slow_item
    ):
        problem, db = slow_item
        with BackgroundServer(ServerConfig(shards=2)) as server:
            ok, _ = _burst(*server.address, problem, db, n=6)
            with ServeClient(*server.address) as control:
                payload = control.stats()
        merged = merge_engine_stats(
            EngineStats.from_dict(doc) for doc in payload["shards"]
        )
        fo = {t.tier: t for t in merged.tiers}["fo"]
        assert fo.metrics.evaluations == len(ok) == 6
        assert fo.metrics.p99_seconds is not None
