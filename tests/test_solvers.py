"""Tests for the solver layer: Prop 16/17 algorithms, SAT substrate,
and the interchangeable solver interface."""

import random

import pytest

from repro.core.query import parse_query
from repro.core.foreign_keys import fk_set
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.exceptions import NotInFOError
from repro.repairs import certain_answer
from repro.solvers import (
    Clause,
    DualHornFormula,
    NotDualHornError,
    OplusOracleSolver,
    Problem,
    ProceduralSolver,
    RewritingSolver,
    SubsetRepairSolver,
    brute_force_satisfiable,
    build_reachability_graph,
    certain_by_dual_horn,
    certain_by_reachability,
    instance_to_dual_horn,
    proposition16_query,
    proposition17_query,
    solve_dual_horn,
)
from repro.workloads import ChainParams, chain_instance, expected_certainty


def F(rel, *values, key=1):
    return Fact(rel, tuple(values), key)


class TestDualHornSat:
    def test_all_positive_is_satisfiable(self):
        formula = DualHornFormula([Clause(("p", "q")), Clause(("r",))])
        result = solve_dual_horn(formula)
        assert result.satisfiable
        assert all(result.assignment.values())

    def test_forcing_chain_unsat(self):
        formula = DualHornFormula(
            [
                Clause(("a",)),
                Clause((), negative="b"),          # ¬b
                Clause(("b",), negative="a"),      # ¬a ∨ b
            ]
        )
        assert not solve_dual_horn(formula).satisfiable

    def test_maximal_model(self):
        formula = DualHornFormula(
            [Clause((), negative="a"), Clause(("b", "c"))]
        )
        result = solve_dual_horn(formula)
        assert result.assignment == {"a": False, "b": True, "c": True}

    def test_from_literal_lists_validates(self):
        with pytest.raises(NotDualHornError):
            DualHornFormula.from_literal_lists(
                [[("a", False), ("b", False)]]
            )
        formula = DualHornFormula.from_literal_lists(
            [[("a", False), ("b", True)]]
        )
        assert formula.clauses[0].negative == "a"

    def test_evaluate(self):
        formula = DualHornFormula([Clause(("p",), negative="q")])
        assert formula.evaluate({"p": True, "q": True})
        assert formula.evaluate({"p": False, "q": False})
        assert not formula.evaluate({"p": False, "q": True})

    def test_against_brute_force(self, rng):
        for _ in range(300):
            n_vars = rng.randint(1, 6)
            clauses = []
            for _ in range(rng.randint(0, 7)):
                positives = tuple(
                    rng.sample(range(n_vars), rng.randint(0, min(3, n_vars)))
                )
                negative = rng.choice([None] + list(range(n_vars)))
                clauses.append(Clause(positives, negative))
            formula = DualHornFormula(clauses)
            assert (
                solve_dual_horn(formula).satisfiable
                == brute_force_satisfiable(formula)
            )

    def test_satisfying_assignment_is_model(self, rng):
        for _ in range(100):
            n_vars = rng.randint(1, 5)
            clauses = [
                Clause(
                    tuple(rng.sample(range(n_vars),
                                     rng.randint(0, min(2, n_vars)))),
                    rng.choice([None] + list(range(n_vars))),
                )
                for _ in range(rng.randint(1, 5))
            ]
            formula = DualHornFormula(clauses)
            result = solve_dual_horn(formula)
            if result.satisfiable:
                assert formula.evaluate(result.assignment)


class TestProposition16:
    def test_graph_shape_on_simple_instance(self):
        db = DatabaseInstance(
            [F("N", 1, 1), F("N", 1, 2), F("N", 2, 2), F("O", 1)]
        )
        graph = build_reachability_graph(db)
        assert 1 in graph.vertices and 2 in graph.vertices
        assert graph.edges[1] == {2}
        assert graph.marked == {1}

    def test_escape_edge(self):
        db = DatabaseInstance([F("N", 1, 1), F("N", 1, 9), F("O", 1)])
        graph = build_reachability_graph(db)
        assert graph.edges[1] == {("⊥",)}
        assert not certain_by_reachability(db)  # escape exists -> no-instance

    def test_trapped_marked_vertex_is_certain(self):
        db = DatabaseInstance([F("N", 1, 1), F("O", 1)])
        assert certain_by_reachability(db)

    def test_obligation_cycle_is_no_instance(self):
        # The repair {N(1,2), N(2,1), O(1), O(2)} sustains a cyclic chain
        # of O-obligations without ever keeping a diagonal fact, so the
        # marked vertex escapes by riding the cycle — not certain.
        db = DatabaseInstance(
            [F("N", 1, 1), F("N", 1, 2), F("N", 2, 2), F("N", 2, 1),
             F("O", 1)]
        )
        assert not certain_by_reachability(db)
        expected = certain_answer(*proposition16_query(), db).certain
        assert certain_by_reachability(db) == expected

    def test_cycle_with_stuck_branch_stays_certain(self):
        # Vertex 1 is marked and its only choice leads to the stuck vertex
        # 2 (block {N(2,2)} offers only the diagonal), so every repair
        # keeps N(2,2) with O(2): certain despite the larger graph.
        db = DatabaseInstance(
            [F("N", 1, 1), F("N", 1, 2), F("N", 2, 2), F("O", 1)]
        )
        assert certain_by_reachability(db)

    def test_against_oracle(self, rng):
        q, fks = proposition16_query()
        for _ in range(300):
            facts = []
            for _ in range(rng.randint(0, 5)):
                facts.append(F("N", rng.randint(1, 3), rng.randint(1, 3)))
            for _ in range(rng.randint(0, 2)):
                facts.append(F("O", rng.randint(1, 3)))
            db = DatabaseInstance(facts)
            expected = certain_answer(q, fks, db).certain
            assert certain_by_reachability(db) == expected, db.pretty()


class TestProposition17:
    def test_chain_encoding(self):
        db = chain_instance(ChainParams(2, "c"))
        formula = instance_to_dual_horn(db, "c")
        # 1 unit clause from O(1) + one implication per chain block + the
        # final block's forced-false clause.
        assert not solve_dual_horn(formula).satisfiable
        assert certain_by_dual_horn(db, "c")

    def test_chain_family_closed_form(self):
        for n in (1, 2, 5, 9):
            for marker in ("c", "e"):
                params = ChainParams(n, marker)
                db = chain_instance(params)
                assert certain_by_dual_horn(db, "c") == expected_certainty(
                    params
                ), (n, marker)

    def test_against_oracle(self, rng):
        q, fks = proposition17_query("c")
        for _ in range(250):
            facts = []
            for _ in range(rng.randint(0, 5)):
                facts.append(
                    F("N", rng.randint(1, 3), rng.choice(["c", "d"]),
                      rng.randint(1, 3))
                )
            for _ in range(rng.randint(0, 2)):
                facts.append(F("O", rng.randint(1, 3)))
            db = DatabaseInstance(facts)
            expected = certain_answer(q, fks, db).certain
            assert certain_by_dual_horn(db, "c") == expected, db.pretty()


class TestSolverInterface:
    def test_rewriting_solver_agrees_with_oracle_solver(self, rng):
        q = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q, "R[2]->S")
        fast = RewritingSolver(q, fks)
        slow = OplusOracleSolver(q, fks)
        procedural = ProceduralSolver(q, fks)
        from tests.conftest import random_db

        for _ in range(40):
            db = random_db(q, rng)
            assert fast.decide(db) == slow.decide(db) == procedural.decide(db)

    def test_subset_solver(self):
        q = parse_query("R(x | 'a')")
        solver = SubsetRepairSolver(q)
        assert solver.decide(DatabaseInstance([F("R", 1, "a")]))
        assert not solver.decide(
            DatabaseInstance([F("R", 1, "a"), F("R", 1, "b")])
        )

    def test_rewriting_solver_rejects_hard_problems(self):
        q = parse_query("N(x | 'c', y)", "O(y |)")
        fks = fk_set(q, "N[3]->O")
        with pytest.raises(NotInFOError):
            RewritingSolver(q, fks)
        with pytest.raises(NotInFOError):
            ProceduralSolver(q, fks)

    def test_problem_validates_aboutness(self):
        from repro.core.foreign_keys import ForeignKey, ForeignKeySet
        from repro.exceptions import ForeignKeyError

        q = parse_query("E(x | y)")
        fks = ForeignKeySet([ForeignKey("E", 2, "E")], q.schema())
        with pytest.raises(ForeignKeyError):
            Problem(q, fks)
