"""Tests for the full consistent-rewriting construction (Theorem 1).

The heavy artillery: for every FO catalog entry and a set of additional
pipeline-exercising problems, the constructed formula, the procedural
decider and the exact ⊕-repair oracle must agree on random instances.
"""

import random

import pytest

from repro.core.decision import decide
from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query
from repro.core.rewriting import consistent_rewriting
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.exceptions import NotInFOError
from repro.fo import Evaluator, evaluate, render
from repro.repairs import certain_answer
from repro.workloads import fo_catalog, hard_catalog, q1_distinguishing_instance
from tests.conftest import random_db

PIPELINE_CASES = [
    # exercises Lemma 36 (weak keys)
    (["A(x | y)", "B(x | z)"], ["A[1]->B"]),
    (["A(x | y)", "B(x | z)"], ["A[1]->B", "B[1]->A"]),
    # Lemma 37 (o→o), incl. chains
    (["R(x | y)", "S(y | z)"], ["R[2]->S"]),
    (["R(x | y)", "S(y | z)", "T(z | w)"], ["R[2]->S", "S[2]->T"]),
    # Lemma 39 (d→d)
    (["R(x | y)", "S(y | z)", "P(y |)", "Q(z |)"], ["R[2]->S"]),
    # Lemma 45 (empty key) with and without inner foreign keys
    (["N('c' | y)", "O(y |)", "P(y |)"], ["N[2]->O"]),
    (["N('c' | y)", "O(y |)", "P(y | w)", "Q(w |)"],
     ["N[2]->O", "P[2]->Q"]),
    # Lemma 40 (d→o)
    (["Y(y |)", "N(x | y, u)", "O(y |)"], ["N[2]->O"]),
    # mixed weak + strong
    (["DOCS(x | t, '2016')", "R(x, y |)", "AUTHORS(y | 'Jeff', z)"],
     ["R[1]->DOCS", "R[2]->AUTHORS"]),
]


def _three_way_check(query, fks, rng, trials, domain=(0, 1, "c", "d")):
    result = consistent_rewriting(query, fks)
    evaluator_hits = 0
    for _ in range(trials):
        db = random_db(query, rng, domain=domain)
        oracle = certain_answer(query, fks, db).certain
        formula_answer = evaluate(result.formula, db)
        procedural = decide(query, fks, db, check_classification=False)
        assert formula_answer == oracle, (
            f"formula disagrees with oracle on\n{db.pretty()}\n"
            f"formula: {render(result.formula)}"
        )
        assert procedural == oracle, (
            f"procedural decider disagrees with oracle on\n{db.pretty()}"
        )
        evaluator_hits += 1
    assert evaluator_hits == trials


class TestPipelineCases:
    @pytest.mark.parametrize(
        "atoms,fk_texts", PIPELINE_CASES,
        ids=lambda value: "+".join(value) if isinstance(value, list) else None,
    )
    def test_three_way_agreement(self, atoms, fk_texts):
        query = parse_query(*atoms)
        fks = fk_set(query, *fk_texts)
        rng = random.Random(hash((tuple(atoms), tuple(fk_texts))) & 0xFFFF)
        _three_way_check(query, fks, rng, trials=60)


class TestCatalog:
    @pytest.mark.parametrize(
        "entry", fo_catalog(), ids=lambda e: e.label
    )
    def test_fo_entries_rewrite_and_agree(self, entry):
        rng = random.Random(hash(entry.label) & 0xFFFF)
        _three_way_check(
            entry.query, entry.fks, rng, trials=40,
            domain=(0, 1, "c", "2016", "Jeff", "o1"),
        )

    @pytest.mark.parametrize(
        "entry", hard_catalog(), ids=lambda e: e.label
    )
    def test_hard_entries_raise(self, entry):
        with pytest.raises(NotInFOError):
            consistent_rewriting(entry.query, entry.fks)
        with pytest.raises(NotInFOError):
            decide(entry.query, entry.fks, DatabaseInstance())


class TestPaperFormulas:
    def test_section8_formula_shape(self):
        """The constructed rewriting matches ∃y(N∧O) ∧ ∀y(N→P) semantically
        on the paper's sensitivity instance."""
        q = parse_query("N('c' | y)", "O(y |)", "P(y |)")
        fks = fk_set(q, "N[2]->O")
        result = consistent_rewriting(q, fks)
        db = DatabaseInstance(
            [
                Fact("N", ("c", "a"), 1),
                Fact("N", ("c", "b"), 1),
                Fact("O", ("a",), 1),
                Fact("P", ("a",), 1),
                Fact("P", ("b",), 1),
            ]
        )
        evaluator = Evaluator(db)
        assert evaluator.evaluate(result.formula)
        for dropped in ("a", "b"):
            smaller = db.difference([Fact("P", (dropped,), 1)])
            assert not evaluate(result.formula, smaller), dropped

    def test_example13_q1_differs_from_pk_rewriting(self):
        """The paper's two-row instance separates CERTAINTY(q1, FK) from
        CERTAINTY(q1)."""
        from repro.core.rewriting_pk import rewrite_primary_keys

        q1 = parse_query("N(x | u, y)", "O(y | w)")
        fks = fk_set(q1, "N[3]->O")
        with_fk = consistent_rewriting(q1, fks).formula
        without_fk = rewrite_primary_keys(q1)
        db = q1_distinguishing_instance()
        assert evaluate(with_fk, db)
        assert not evaluate(without_fk, db)

    def test_example13_q3_same_as_pk_rewriting(self):
        """CERTAINTY(q3, FK) and CERTAINTY(q3) have the same rewriting —
        checked semantically on random instances."""
        from repro.core.rewriting_pk import rewrite_primary_keys

        q3 = parse_query("N(x | 'c', y)", "O(y | 'c')")
        fks = fk_set(q3, "N[3]->O")
        with_fk = consistent_rewriting(q3, fks).formula
        without_fk = rewrite_primary_keys(q3)
        rng = random.Random(31)
        for _ in range(80):
            db = random_db(q3, rng, domain=(0, 1, "c"))
            assert evaluate(with_fk, db) == evaluate(without_fk, db)

    def test_lemma_trace_matches_expectation(self):
        q = parse_query("N('c' | y)", "O(y |)", "P(y |)")
        fks = fk_set(q, "N[2]->O")
        result = consistent_rewriting(q, fks)
        assert "Lemma 45" in result.lemma_trace

    def test_trace_for_weak_keys(self):
        q = parse_query("DOCS(x | t, '2016')", "R(x, y |)",
                        "AUTHORS(y | 'Jeff', z)")
        fks = fk_set(q, "R[1]->DOCS", "R[2]->AUTHORS")
        result = consistent_rewriting(q, fks)
        assert result.lemma_trace.count("Lemma 36") == 2
