"""Serve-layer tests for the instance registry: the ``instance_*`` verbs
and ref decides over the loopback wire (CAS conflicts, eviction →
``unknown-instance``, incremental provenance in the response), mutation
replay gating in the retrying client, and ref affinity plus resize
migration on the multi-process fleet."""

import pytest

from repro.api import Problem
from repro.core.schema import Schema
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.exceptions import RemoteError
from repro.serve import (
    BackgroundServer,
    FleetEngine,
    ServeClient,
    ServerConfig,
)
from repro.serve.protocol import (
    MUTATION_VERBS,
    Request,
    replay_safe,
)
from repro.serve.shard import ref_digest
from repro.store import Delta
from repro.store.registry import estimate_instance_bytes


def _fo_problem() -> Problem:
    return Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])


def _p16_problem() -> Problem:
    return Problem.of("N(x | x)", "O(x |)", fks=["N[2]->O"])


def _small_db() -> DatabaseInstance:
    schema = Schema.of(R=(2, 1), S=(2, 1))
    return DatabaseInstance.build(
        schema, {"R": [("a", "b")], "S": [("b", "c")]}
    )


def _p16_db() -> DatabaseInstance:
    return DatabaseInstance([
        Fact("N", (1, 1), 1),
        Fact("N", (1, 2), 1),
        Fact("N", (2, 2), 1),
        Fact("O", (1,), 1),
    ])


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(
        ServerConfig(shards=2, linger_ms=5, plan_cache_size=16)
    ) as background:
        yield background


@pytest.fixture()
def client(server):
    host, port = server.address
    with ServeClient(host, port) as serve_client:
        yield serve_client


class TestReplaySafety:
    def test_mutation_verbs_are_flagged(self):
        assert MUTATION_VERBS == {
            "instance_put", "instance_patch", "instance_drop"
        }

    @pytest.mark.parametrize("verb", sorted(MUTATION_VERBS))
    def test_mutations_are_not_replay_safe(self, verb):
        assert replay_safe(verb) is False

    def test_cas_patch_is_replay_safe(self):
        assert replay_safe("instance_patch", expect_version=3) is True

    @pytest.mark.parametrize(
        "verb", ["decide", "ping", "stats", "instance_get", "instance_list"]
    )
    def test_reads_are_replay_safe(self, verb):
        assert replay_safe(verb) is True

    def test_client_skips_retries_for_blind_mutations(self, server):
        host, port = server.address
        with ServeClient(host, port, retries=3) as retrying:
            # observable contract: the request still works, and the CAS
            # variant self-reports as replayable
            retrying.put_instance("replay-probe", _small_db())
            retrying.patch_instance(
                "replay-probe",
                Delta.of(adds=[Fact("R", ("z", "w"), 1)]),
                expect_version=1,
            )
            retrying.drop_instance("replay-probe")


class TestInstanceVerbsOverTheWire:
    def test_put_decide_patch_decide_flow(self, client):
        problem = _fo_problem()
        result = client.put_instance("wire-flow", _small_db())
        assert result["instance"]["version"] == 1
        assert result["instance"]["facts"] == 2
        assert "shard" in result

        first = client.decide(problem, ref="wire-flow")
        assert first.certain is True

        patched = client.patch_instance(
            "wire-flow",
            Delta.of(removes=[Fact("S", ("b", "c"), 1)]),
            expect_version=1,
        )
        assert patched["instance"]["version"] == 2
        assert patched["applied"] == {"adds": 0, "removes": 1}

        second = client.decide(problem, ref="wire-flow")
        assert second.certain is False
        client.drop_instance("wire-flow")

    def test_stale_cas_is_a_conflict_envelope(self, client):
        client.put_instance("wire-cas", _small_db())
        delta = Delta.of(adds=[Fact("R", ("p", "q"), 1)])
        client.patch_instance("wire-cas", delta, expect_version=1)
        with pytest.raises(RemoteError) as excinfo:
            client.patch_instance("wire-cas", delta, expect_version=1)
        assert excinfo.value.code == "conflict"
        client.drop_instance("wire-cas")

    def test_delta_conflict_is_a_conflict_envelope(self, client):
        client.put_instance("wire-strict", _small_db())
        with pytest.raises(RemoteError) as excinfo:
            client.patch_instance(
                "wire-strict",
                Delta.of(removes=[Fact("R", ("nope", "nope"), 1)]),
            )
        assert excinfo.value.code == "conflict"
        client.drop_instance("wire-strict")

    def test_unknown_ref_envelope(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.decide(_fo_problem(), ref="ghost")
        assert excinfo.value.code == "unknown-instance"
        with pytest.raises(RemoteError) as excinfo:
            client.request("instance_get", instance_ref="ghost")
        assert excinfo.value.code == "unknown-instance"

    def test_get_round_trips_the_instance(self, client):
        db = _small_db()
        client.put_instance("wire-get", db)
        stored, version = client.get_instance("wire-get")
        assert stored == db and version == 1
        client.drop_instance("wire-get")

    def test_drop_reports_existence(self, client):
        client.put_instance("wire-drop", _small_db())
        assert client.drop_instance("wire-drop")["dropped"] is True
        assert client.drop_instance("wire-drop")["dropped"] is False

    def test_list_and_stats_carry_the_registry(self, client):
        client.put_instance("wire-list", _small_db())
        listing = client.list_instances()
        refs = [info["ref"] for info in listing["instances"]]
        assert "wire-list" in refs
        assert listing["stats"]["instances"] >= 1
        stats = client.stats()
        assert stats["server"]["store"]["instances"] >= 1
        client.drop_instance("wire-list")

    def test_decide_needs_instance_or_ref(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.request("decide", problem=_fo_problem())
        assert "instance" in str(excinfo.value)

    def test_mutation_verbs_validate_the_ref(self, client):
        with pytest.raises(RemoteError):
            client.request("instance_put", instance=_small_db())

    def test_incremental_provenance_in_the_response(self, client):
        problem = _p16_problem()
        client.put_instance("wire-inc", _p16_db())
        first = client.request(
            "decide",
            problem=problem,
            instance_ref="wire-inc",
        )
        assert first["instance"]["strategy"] == "rebuild"
        assert first["instance"]["incremental"] is False
        assert first["decision"]["incremental"] is False
        # an escape successor outside the diagonal un-dooms vertex 1,
        # flipping certainty
        client.patch_instance(
            "wire-inc", Delta.of(adds=[Fact("N", (1, "esc"), 1)])
        )
        second = client.request(
            "decide", problem=problem, instance_ref="wire-inc"
        )
        assert second["instance"]["strategy"] == "p16-attractor"
        assert second["instance"]["incremental"] is True
        assert second["decision"]["incremental"] is True
        assert second["decision"]["certain"] != first["decision"]["certain"]
        client.drop_instance("wire-inc")


class TestEvictionOverTheWire:
    def test_lru_eviction_surfaces_as_unknown_instance(self):
        db = _small_db()
        budget = estimate_instance_bytes(db) * 2 + 1
        config = ServerConfig(shards=1, linger_ms=5, store_bytes=budget)
        with BackgroundServer(config) as background:
            host, port = background.address
            with ServeClient(host, port) as client:
                client.put_instance("keep", db)
                client.put_instance("middle", db)
                client.get_instance("keep")  # touch: middle becomes LRU
                client.put_instance("new", db)  # over budget: evicts middle
                stats = client.stats()["server"]["store"]
                assert stats["evictions"] == 1
                with pytest.raises(RemoteError) as excinfo:
                    client.decide(_fo_problem(), ref="middle")
                assert excinfo.value.code == "unknown-instance"
                # survivors still decide
                assert client.decide(_fo_problem(), ref="keep").certain

    def test_store_bytes_is_validated(self):
        with pytest.raises(ValueError, match="store_bytes"):
            ServerConfig(store_bytes=0)


class TestFleetRefAffinity:
    def test_refs_route_by_digest_and_survive_resize(self):
        problem = _fo_problem()
        db = _small_db()
        refs = [f"aff-{i}" for i in range(8)]
        with FleetEngine(2) as fleet:
            for ref in refs:
                request = Request(
                    id=1, verb="instance_put", instance_ref=ref,
                    instance={"format": "repro/instance", "version": 1,
                              "relations": {}},
                )
                result = fleet.instance_request(request)
                expected = fleet.shard_for_ref(ref)
                assert result["shard"] == expected
                assert expected == fleet._ring.shard_for(ref_digest(ref))
            # a real payload on one ref; decide through its owner
            fleet.instance_request(Request(
                id=1, verb="instance_put", instance_ref="aff-real",
                instance=_db_doc(db),
            ))
            before = fleet.decide_ref(
                fleet.shard_for_ref("aff-real"), problem, "aff-real", None
            )
            assert before["decision"]["certain"] is True

            # grow the fleet: moved refs must follow their new owner
            fleet.resize(3)
            listing = fleet.instance_request(Request(id=1, verb="instance_list"))
            live = {info["ref"] for info in listing["instances"]}
            assert live == set(refs) | {"aff-real"}
            for ref in refs + ["aff-real"]:
                shard = fleet.shard_for_ref(ref)
                got = fleet.instance_request(
                    Request(id=1, verb="instance_get", instance_ref=ref)
                )
                assert got["shard"] == shard
            after = fleet.decide_ref(
                fleet.shard_for_ref("aff-real"), problem, "aff-real", None
            )
            assert after["decision"]["certain"] is True

            # shrink back: refs from the dropped worker are re-homed
            fleet.resize(2)
            listing = fleet.instance_request(Request(id=1, verb="instance_list"))
            assert {info["ref"] for info in listing["instances"]} == \
                set(refs) | {"aff-real"}

    def test_migration_preserves_versions(self):
        with FleetEngine(2) as fleet:
            fleet.instance_request(Request(
                id=1, verb="instance_put", instance_ref="ver",
                instance=_db_doc(_small_db()),
            ))
            fleet.instance_request(Request(
                id=1, verb="instance_patch", instance_ref="ver",
                delta=Delta.of(
                    adds=[Fact("R", ("m", "n"), 1)]
                ).to_dict(),
            ))
            fleet.resize(3)
            fleet.resize(2)
            got = fleet.instance_request(
                Request(id=1, verb="instance_get", instance_ref="ver")
            )
            assert got["version"] == 2


def _db_doc(db: DatabaseInstance) -> dict:
    from repro.db import io as db_io

    return db_io.to_dict(db)
