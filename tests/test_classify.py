"""Tests for the Theorem 12 classifier against the paper catalog."""

import pytest

from repro.core.classify import ComplexityVerdict, classify, is_in_fo
from repro.core.foreign_keys import ForeignKey, ForeignKeySet, fk_set
from repro.core.query import parse_query
from repro.exceptions import ForeignKeyError
from repro.workloads import paper_catalog


class TestCatalog:
    @pytest.mark.parametrize(
        "entry", paper_catalog(), ids=lambda e: e.label
    )
    def test_expected_verdict(self, entry):
        result = classify(entry.query, entry.fks)
        assert result.verdict == entry.expected
        assert result.in_fo == entry.in_fo


class TestVerdictLogic:
    def test_interference_beats_cycle(self):
        """When both lower bounds apply, NL-hard (the stronger) is reported."""
        q = parse_query("R(x | y)", "S(y | x)", "N(u | 'c', v)", "O(v |)")
        fks = fk_set(q, "N[3]->O")
        result = classify(q, fks)
        assert result.attack_graph_cyclic
        assert result.interference is not None
        assert result.verdict == ComplexityVerdict.NL_HARD

    def test_empty_fk_reduces_to_certainty_q(self):
        q = parse_query("R(x | y)", "S(y | z)")
        assert is_in_fo(q, fk_set(q))

    def test_not_about_raises(self):
        q = parse_query("E(x | y)")
        fks = ForeignKeySet([ForeignKey("E", 2, "E")], q.schema())
        with pytest.raises(ForeignKeyError):
            classify(q, fks)

    def test_explain_mentions_verdict(self):
        q = parse_query("N(x | 'c', y)", "O(y |)")
        result = classify(q, fk_set(q, "N[3]->O"))
        text = result.explain()
        assert "NL-hard" in text
        assert "block-interference" in text

    def test_classification_is_pure(self):
        """Classifying twice gives identical results (no hidden state)."""
        q = parse_query("N(x | u, y)", "O(y | w)")
        fks = fk_set(q, "N[3]->O")
        first = classify(q, fks)
        second = classify(q, fks)
        assert first.verdict == second.verdict
        assert first.attack_graph_cyclic == second.attack_graph_cyclic


class TestConstantSubstitutionPhenomenon:
    """Example 13's punchline: constants can move complexity both ways."""

    def test_grounding_u_raises_complexity(self):
        q1 = parse_query("N(x | u, y)", "O(y | w)")
        q2 = parse_query("N(x | 'c', y)", "O(y | w)")
        assert is_in_fo(q1, fk_set(q1, "N[3]->O"))
        assert not is_in_fo(q2, fk_set(q2, "N[3]->O"))

    def test_grounding_w_lowers_complexity(self):
        q2 = parse_query("N(x | 'c', y)", "O(y | w)")
        q3 = parse_query("N(x | 'c', y)", "O(y | 'c')")
        assert not is_in_fo(q2, fk_set(q2, "N[3]->O"))
        assert is_in_fo(q3, fk_set(q3, "N[3]->O"))

    def test_without_fk_all_three_in_fo(self):
        for atoms in (
            ["N(x | u, y)", "O(y | w)"],
            ["N(x | 'c', y)", "O(y | w)"],
            ["N(x | 'c', y)", "O(y | 'c')"],
        ):
            q = parse_query(*atoms)
            assert is_in_fo(q, fk_set(q))
