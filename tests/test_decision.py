"""Tests for the procedural decider (forward pipeline execution)."""

import random

import pytest

from repro.core.decision import decide
from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.exceptions import NotInFOError
from repro.workloads import fig1_instance, intro_query_q0, intro_query_q1
from tests.conftest import random_db


def F(rel, *values, key=1):
    return Fact(rel, tuple(values), key)


class TestFig1:
    def test_q0_is_uncertain(self):
        q, fks = intro_query_q0()
        assert not decide(q, fks, fig1_instance())

    def test_q0_certain_after_cleaning(self):
        """Fixing the first name and the dangling fact makes q0 certain."""
        q, fks = intro_query_q0()
        cleaned = (
            fig1_instance()
            .difference(
                [
                    Fact("AUTHORS", ("o1", "Jeffrey", "Ullman"), 1),
                    Fact("R", ("d1", "o3"), 2),
                ]
            )
        )
        assert decide(q, fks, cleaned)

    def test_q1_on_fig1(self):
        q, fks = intro_query_q1()
        # o1 authored d1 (2016): R(d1,o1) is never deleted (all-key block),
        # DOCS(d1) always kept, AUTHORS(o1,·) always has some fact — certain.
        assert decide(q, fks, fig1_instance())

    def test_q1_uncertain_when_authorship_dangling(self):
        q, fks = intro_query_q1()
        db = fig1_instance().difference(
            [
                Fact("AUTHORS", ("o1", "Jeff", "Ullman"), 1),
                Fact("AUTHORS", ("o1", "Jeffrey", "Ullman"), 1),
            ]
        )
        # now R(d1, o1) is dangling: a repair may delete it.
        assert not decide(q, fks, db)


class TestGuards:
    def test_hard_problem_raises(self):
        q = parse_query("N(x | 'c', y)", "O(y |)")
        fks = fk_set(q, "N[3]->O")
        with pytest.raises(NotInFOError):
            decide(q, fks, DatabaseInstance())

    def test_check_can_be_skipped_only_for_fo(self):
        q = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q, "R[2]->S")
        assert decide(
            q, fks, DatabaseInstance([F("R", 1, 2), F("S", 2, 3)]),
            check_classification=False,
        )

    def test_irrelevant_relations_ignored(self):
        """Facts of relations outside the query must not affect the answer."""
        q = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q, "R[2]->S")
        base = DatabaseInstance([F("R", 1, 2), F("S", 2, 3)])
        noisy = base.union([F("Z", 9, 9)])
        assert decide(q, fks, base) == decide(q, fks, noisy) is True


class TestNestedLemma45:
    """Two empty-key atoms trigger nested case splits."""

    def test_two_constant_blocks(self, rng):
        q = parse_query("N('c' | y)", "O(y |)", "M('d' | z)", "Q(z |)",
                        "P(y | z2)")
        fks = fk_set(q, "N[2]->O", "M[2]->Q")
        from repro.repairs import certain_answer

        for _ in range(50):
            db = random_db(q, rng, domain=(0, 1, "c", "d"))
            expected = certain_answer(q, fks, db).certain
            assert decide(q, fks, db) == expected, db.pretty()

    def test_cascading_freeze(self, rng):
        """The inner problem of a Lemma 45 split has parameters that a second
        split must thread through."""
        q = parse_query("N('c' | y)", "O(y |)", "P(y | w)", "Q(w |)")
        fks = fk_set(q, "N[2]->O", "P[2]->Q")
        from repro.repairs import certain_answer

        for _ in range(50):
            db = random_db(q, rng, domain=(0, "c"))
            expected = certain_answer(q, fks, db).certain
            assert decide(q, fks, db) == expected, db.pretty()
