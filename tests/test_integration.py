"""End-to-end integration tests: the public API, the examples, and full
paper walkthroughs spanning all modules."""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

import repro
from repro import (
    certain,
    classify,
    consistent_rewriting,
    fk_set,
    parse_query,
)
from repro.db import DatabaseInstance, Fact
from repro.workloads import fig1_instance, intro_query_q0

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_one_shot_certain_fo_path(self):
        q, fks = intro_query_q0()
        assert certain(q, fks, fig1_instance()) is False

    def test_one_shot_certain_oracle_path(self):
        """`certain` must fall back to the oracle on NL-hard problems."""
        q = parse_query("N(x | 'c', y)", "O(y |)")
        fks = fk_set(q, "N[3]->O")
        db = DatabaseInstance(
            [Fact("N", ("b", "c", 1), 1), Fact("O", (1,), 1)]
        )
        assert certain(q, fks, db) is True

    def test_all_top_level_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestExamples:
    @pytest.mark.parametrize(
        "name", ["quickstart", "referential_integrity_audit",
                 "complexity_atlas", "reachability_oracle"]
    )
    def test_example_runs(self, name):
        output = _run_example(name)
        assert output.strip()

    def test_quickstart_reports_expected_answers(self):
        output = _run_example("quickstart")
        assert "consistent answer on Fig. 1: False" in output
        assert "⊕-repair oracle agrees:     False" in output

    def test_atlas_covers_all_verdicts(self):
        output = _run_example("complexity_atlas")
        assert "FO" in output and "NL_HARD" in output and "L_HARD" in output


class TestPaperWalkthrough:
    """The introduction's data-cleaning narrative, end to end."""

    def test_cleaning_changes_the_consistent_answer(self):
        q, fks = intro_query_q0()
        db = fig1_instance()
        assert certain(q, fks, db) is False
        # cleaning decision: keep 'Jeff', resolve the dangling authorship
        cleaned = db.difference(
            [
                Fact("AUTHORS", ("o1", "Jeffrey", "Ullman"), 1),
                Fact("R", ("d1", "o3"), 2),
            ]
        )
        assert certain(q, fks, cleaned) is True

    def test_rewriting_evaluates_like_certain_everywhere(self):
        from repro.workloads import (
            BibliographyParams,
            synthetic_bibliography,
        )

        q, fks = intro_query_q0()
        rewriting = consistent_rewriting(q, fks)
        from repro.fo import evaluate

        for seed in range(5):
            db = synthetic_bibliography(
                BibliographyParams(n_docs=4, n_authors=4, n_authorships=6),
                seed=seed,
            )
            assert evaluate(rewriting.formula, db) == certain(q, fks, db)

    def test_classification_guides_solver_choice(self):
        from repro.exceptions import NotInFOError
        from repro.solvers import RewritingSolver, certain_by_dual_horn

        q = parse_query("N(x | 'c', y)", "O(y |)")
        fks = fk_set(q, "N[3]->O")
        verdict = classify(q, fks)
        assert not verdict.in_fo
        with pytest.raises(NotInFOError):
            RewritingSolver(q, fks)
        # and the dedicated P algorithm takes over; with no N-facts at all,
        # no repair can satisfy q, so the certain answer is False:
        db = DatabaseInstance([Fact("O", (1,), 1)])
        assert certain_by_dual_horn(db, "c") is False
        # a trapped chain (final marker c) is certain:
        from repro.workloads import ChainParams, chain_instance

        assert certain_by_dual_horn(
            chain_instance(ChainParams(3, "c")), "c"
        ) is True
