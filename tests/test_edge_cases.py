"""Edge-case tests across modules: weak keys in the oracle, composite keys,
self-referencing schemas, exception hierarchy, API invariants."""

import pytest

import repro
from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query
from repro.db import DatabaseInstance, Fact
from repro.exceptions import (
    EvaluationError,
    ForeignKeyError,
    NotInFOError,
    OracleLimitation,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.repairs import canonical_repairs, certain_answer, is_certain


def F(rel, *values, key=1):
    return Fact(rel, tuple(values), key)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (SchemaError, QueryError, ForeignKeyError, NotInFOError,
                    OracleLimitation, EvaluationError):
            assert issubclass(cls, ReproError)

    def test_catching_base_class_works(self):
        with pytest.raises(ReproError):
            parse_query("R(x | y)", "R(y | z)")


class TestOracleWithWeakKeys:
    """Weak foreign keys leave the source's key positions dangling-checked,
    which interacts with all-key blocks (singleton blocks)."""

    def setup_method(self):
        self.q = parse_query("A(x, y |)", "B(x | z)")
        self.fks = fk_set(self.q, "A[1]->B")

    def test_keeping_a_requires_b(self):
        db = DatabaseInstance([F("A", 1, 2, key=2)])
        # keeping A(1,2) forces inserting B(1,⋅); dropping it is also minimal
        repairs = list(canonical_repairs(db, self.fks))
        sizes = sorted(r.size for r in repairs)
        assert sizes == [0, 2]

    def test_certainty_with_support(self):
        db = DatabaseInstance([F("A", 1, 2, key=2), F("B", 1, 9)])
        # A(1,2) is supported by B(1,9): every repair keeps both -> certain
        assert is_certain(self.q, self.fks, db)

    def test_uncertain_when_dangling(self):
        db = DatabaseInstance([F("A", 1, 2, key=2)])
        assert not is_certain(self.q, self.fks, db)


class TestCompositeKeyBlocks:
    def test_composite_key_grouping(self):
        db = DatabaseInstance(
            [F("R", 1, 2, "a", key=2), F("R", 1, 2, "b", key=2),
             F("R", 1, 3, "a", key=2)]
        )
        assert len(db.blocks("R")) == 2

    def test_oracle_on_composite_keys(self):
        q = parse_query("R(x, y | z)", "S(z |)")
        fks = fk_set(q, "R[3]->S")
        db = DatabaseInstance(
            [F("R", 1, 2, "a", key=2), F("R", 1, 2, "b", key=2)]
        )
        # either fact can be kept (each forces its S-insert); or both dropped?
        # dropping needs no insert but is dominated? adding R(1,2,a)+S(a)
        # changes the insertion set -> incomparable -> empty IS a repair.
        answer = certain_answer(q, fks, db)
        assert not answer.certain
        assert answer.falsifying_repair is not None

    def test_composite_key_cannot_be_referenced(self):
        q = parse_query("R(x | y)", "S(y, w |)")
        with pytest.raises(ForeignKeyError):
            fk_set(q, "R[2]->S")


class TestSelfReference:
    def test_nontrivial_self_fk_repairs(self):
        """S[2]→S chains: repairs may close the chain at any length, the
        canonical oracle reports the pool-closed ones."""
        q = parse_query("S(y | z)")
        fks = fk_set(q, "S[2]->S")
        db = DatabaseInstance([F("S", "a", "b")])
        repairs = list(canonical_repairs(db, fks))
        assert DatabaseInstance() in repairs
        keepers = [r for r in repairs if F("S", "a", "b") in r]
        assert keepers, "some repair keeps the fact with a closed chain"
        from repro.db.constraints import is_consistent

        for repair in keepers:
            assert is_consistent(repair, fks)

    def test_self_supporting_fact(self):
        q = parse_query("S(y | y2)")
        fks = fk_set(q, "S[2]->S")
        db = DatabaseInstance([F("S", "a", "a")])
        # S(a,a) references itself; the only repairs are {} — dominated by
        # keeping — and {S(a,a)}.
        assert is_certain(q, fks, db)


class TestApiInvariants:
    def test_version_matches_package_metadata(self):
        assert repro.__version__ == "1.0.0"

    def test_parse_query_empty(self):
        assert len(parse_query()) == 0

    def test_instance_iteration_is_deterministic(self):
        db = DatabaseInstance([F("R", 2, 1), F("R", 1, 2), F("A", 0)])
        assert list(db) == list(db)

    def test_oracle_on_empty_instance(self):
        q = parse_query("R(x | y)")
        fks = fk_set(q)
        answer = certain_answer(q, fks, DatabaseInstance())
        assert not answer.certain
        assert answer.falsifying_repair == DatabaseInstance()

    def test_certain_requires_aboutness(self):
        from repro.core.foreign_keys import ForeignKey, ForeignKeySet

        q = parse_query("E(x | y)")
        fks = ForeignKeySet([ForeignKey("E", 2, "E")], q.schema())
        with pytest.raises(ForeignKeyError):
            repro.certain(q, fks, DatabaseInstance())
