"""Unit tests for repro.core.terms."""

from repro.core.terms import (
    Constant,
    FreshConstantFactory,
    FreshVariableFactory,
    FreshValue,
    Parameter,
    Variable,
    is_constantlike,
    is_variable,
)


class TestTermKinds:
    def test_variable_identity(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_constant_wraps_value(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant("1")

    def test_parameter_is_not_a_variable(self):
        assert Parameter("x") != Variable("x")

    def test_is_variable(self):
        assert is_variable(Variable("x"))
        assert not is_variable(Constant("x"))
        assert not is_variable(Parameter("x"))

    def test_is_constantlike(self):
        assert is_constantlike(Constant(3))
        assert is_constantlike(Parameter("p"))
        assert not is_constantlike(Variable("x"))

    def test_terms_are_hashable(self):
        {Variable("x"), Constant(1), Parameter("p")}


class TestFreshVariableFactory:
    def test_avoids_reserved_names(self):
        factory = FreshVariableFactory({"v_0", "v_1"})
        first = factory.fresh()
        assert first.name not in {"v_0", "v_1"}

    def test_never_repeats(self):
        factory = FreshVariableFactory()
        names = {factory.fresh().name for _ in range(100)}
        assert len(names) == 100

    def test_hint_prefixes_name(self):
        factory = FreshVariableFactory()
        assert factory.fresh("key").name.startswith("key")

    def test_reserve_blocks_future_names(self):
        factory = FreshVariableFactory()
        factory.reserve({"w_0"})
        assert all(factory.fresh("w").name != "w_0" for _ in range(5))

    def test_fresh_parameter(self):
        factory = FreshVariableFactory()
        parameter = factory.fresh_parameter("p")
        assert isinstance(parameter, Parameter)


class TestFreshConstantFactory:
    def test_fresh_constants_distinct(self):
        factory = FreshConstantFactory()
        values = {factory.fresh().value for _ in range(50)}
        assert len(values) == 50

    def test_fresh_value_never_equals_ordinary_values(self):
        factory = FreshConstantFactory()
        fresh = factory.fresh().value
        assert isinstance(fresh, FreshValue)
        assert fresh != 0 and fresh != "0" and fresh != ("u", 0)

    def test_two_factories_do_not_collide_by_value_hint(self):
        a = FreshConstantFactory().fresh("x").value
        b = FreshConstantFactory().fresh("y").value
        assert a != b
