"""Tests for the FO substrate: formulas, evaluation, simplification,
substitution and rendering."""

import random

import pytest

from repro.core.terms import Constant, Parameter, Variable
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.exceptions import EvaluationError
from repro.fo import (
    FALSE,
    TRUE,
    And,
    Eq,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Rel,
    conj,
    constants_of,
    disj,
    equality,
    evaluate,
    exists,
    forall,
    implies,
    negate,
    quantifier_depth,
    relations_of,
    render,
    render_tree,
    simplify,
    size,
    substitute_terms,
    walk,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")


def F(rel, *values, key=1):
    return Fact(rel, tuple(values), key)


def db123():
    return DatabaseInstance([F("R", 1, 2), F("R", 2, 3), F("S", 2)])


class TestSmartConstructors:
    def test_conj_units(self):
        assert conj([TRUE, TRUE]) == TRUE
        assert conj([TRUE, FALSE]) == FALSE
        assert conj([Rel("S", (x,))]) == Rel("S", (x,))

    def test_conj_flattens(self):
        inner = And((Rel("S", (x,)), Rel("S", (y,))))
        assert len(conj([inner, Rel("S", (z,))]).parts) == 3

    def test_disj_units(self):
        assert disj([]) == FALSE
        assert disj([FALSE, TRUE]) == TRUE

    def test_exists_drops_unused_variables(self):
        formula = exists([x, y], Rel("S", (x,)))
        assert isinstance(formula, Exists)
        assert formula.variables == (x,)

    def test_exists_collapses_nested(self):
        formula = exists([x], exists([y], Rel("R", (x, y))))
        assert isinstance(formula, Exists)
        assert formula.variables == (x, y)

    def test_forall_over_constant_body(self):
        assert forall([x], TRUE) == TRUE

    def test_equality_folding(self):
        assert equality(Constant(1), Constant(1)) == TRUE
        assert equality(Constant(1), Constant(2)) == FALSE
        assert isinstance(equality(x, Constant(1)), Eq)

    def test_implies_folding(self):
        assert implies(FALSE, Rel("S", (x,))) == TRUE
        assert implies(TRUE, Rel("S", (x,))) == Rel("S", (x,))

    def test_negate_pushes_one_level(self):
        pushed = negate(Implies(Rel("S", (x,)), Rel("S", (y,))))
        assert isinstance(pushed, And)
        pushed = negate(Forall((x,), Rel("S", (x,))))
        assert isinstance(pushed, Exists)

    def test_walk_and_metadata(self):
        formula = exists([x], And((Rel("R", (x, y)), Eq(y, Constant(1)))))
        assert Rel("R", (x, y)) in list(walk(formula))
        assert relations_of(formula) == {"R"}
        assert constants_of(formula) == {Constant(1)}


class TestEvaluator:
    def test_atom(self):
        assert evaluate(Rel("S", (Constant(2),)), db123())
        assert not evaluate(Rel("S", (Constant(9),)), db123())

    def test_exists_guided(self):
        formula = exists([x, y], Rel("R", (x, y)))
        assert evaluate(formula, db123())

    def test_forall(self):
        # every R tuple has its second component in S? R(2,3): 3 not in S.
        formula = forall(
            [x, y], implies(Rel("R", (x, y)), Rel("S", (y,)))
        )
        assert not evaluate(formula, db123())
        db = DatabaseInstance([F("R", 1, 2), F("S", 2)])
        assert evaluate(formula, db)

    def test_join_through_quantifiers(self):
        formula = exists(
            [x, y, z], conj([Rel("R", (x, y)), Rel("R", (y, z))])
        )
        assert evaluate(formula, db123())

    def test_equality_and_negation(self):
        formula = exists([x, y], conj([Rel("R", (x, y)), Not(Eq(x, y))]))
        assert evaluate(formula, db123())
        diag = DatabaseInstance([F("R", 1, 1)])
        assert not evaluate(formula, diag)

    def test_parameters_from_assignment(self):
        p = Parameter("p")
        formula = Rel("S", (p,))
        assert evaluate(formula, db123(), {p: 2})
        assert not evaluate(formula, db123(), {p: 7})

    def test_unbound_parameter_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(Rel("S", (Parameter("p"),)), db123())

    def test_empty_domain(self):
        formula = forall([x], Rel("S", (x,)))
        assert not evaluate(formula, DatabaseInstance())
        assert evaluate(exists([x], Eq(x, x)), DatabaseInstance())

    def test_domain_includes_formula_constants(self):
        # ∃x (x = 'q') must find the constant even if absent from the db.
        formula = exists([x], Eq(x, Constant("q")))
        assert evaluate(formula, DatabaseInstance())

    def test_guard_under_negated_forall(self):
        # ¬∀x(R(x,y) → ⊥) ≡ ∃x R(x,y): the guard finder must see through it.
        formula = exists(
            [y], Not(Forall((x,), Implies(Rel("R", (x, y)), FALSE)))
        )
        assert evaluate(formula, db123())


class TestEvaluatorAgainstNaive:
    """The guided evaluator agrees with a brute-force reference."""

    def _naive(self, formula, db, env):
        domain = sorted(
            set(db.active_domain())
            | {c.value for c in constants_of(formula)},
            key=repr,
        ) or [0]

        def rec(node, bound):
            if isinstance(node, Rel):
                values = tuple(
                    t.value if isinstance(t, Constant) else bound[t]
                    for t in node.terms
                )
                return Fact(node.relation, values, node.key_size) in db
            if isinstance(node, Eq):
                def resolve(t):
                    return t.value if isinstance(t, Constant) else bound[t]
                return resolve(node.left) == resolve(node.right)
            if isinstance(node, Not):
                return not rec(node.body, bound)
            if isinstance(node, And):
                return all(rec(p, bound) for p in node.parts)
            if isinstance(node, Or):
                return any(rec(p, bound) for p in node.parts)
            if isinstance(node, Implies):
                return (not rec(node.premise, bound)) or rec(
                    node.conclusion, bound
                )
            if isinstance(node, Exists):
                return self._expand(node.variables, node.body, bound,
                                    domain, rec, any)
            if isinstance(node, Forall):
                return self._expand(node.variables, node.body, bound,
                                    domain, rec, all)
            return node == TRUE

        return rec(formula, dict(env))

    def _expand(self, variables, body, bound, domain, rec, combine):
        import itertools

        return combine(
            rec(body, {**bound, **dict(zip(variables, choice))})
            for choice in itertools.product(domain, repeat=len(variables))
        )

    def test_random_formulas(self):
        rng = random.Random(17)
        for _ in range(150):
            formula = self._random_formula(rng, depth=3)
            db = DatabaseInstance(
                [
                    F("R", rng.randint(0, 2), rng.randint(0, 2))
                    for _ in range(rng.randint(0, 4))
                ]
                + [F("S", rng.randint(0, 2)) for _ in range(rng.randint(0, 2))]
            )
            assert evaluate(formula, db) == self._naive(formula, db, {}), (
                render(formula),
                db.pretty(),
            )

    def _random_formula(self, rng, depth, scope=()):
        if depth == 0 or (scope and rng.random() < 0.3):
            choices = []
            if scope:
                v = rng.choice(scope)
                w = rng.choice(scope)
                choices = [
                    Rel("S", (v,)),
                    Rel("R", (v, w)),
                    Eq(v, rng.choice([w, Constant(rng.randint(0, 2))])),
                ]
            else:
                choices = [
                    Rel("S", (Constant(rng.randint(0, 2)),)),
                    TRUE,
                ]
            return rng.choice(choices)
        kind = rng.choice(["and", "or", "not", "implies", "exists", "forall"])
        if kind == "and":
            return And(
                (self._random_formula(rng, depth - 1, scope),
                 self._random_formula(rng, depth - 1, scope))
            )
        if kind == "or":
            return Or(
                (self._random_formula(rng, depth - 1, scope),
                 self._random_formula(rng, depth - 1, scope))
            )
        if kind == "not":
            return Not(self._random_formula(rng, depth - 1, scope))
        if kind == "implies":
            return Implies(
                self._random_formula(rng, depth - 1, scope),
                self._random_formula(rng, depth - 1, scope),
            )
        fresh = Variable(f"q{depth}_{rng.randint(0, 1000)}")
        body = self._random_formula(rng, depth - 1, scope + (fresh,))
        cls = Exists if kind == "exists" else Forall
        return cls((fresh,), body)


class TestSimplify:
    def test_removes_double_negation(self):
        formula = Not(Not(Rel("S", (Constant(2),))))
        assert simplify(formula) == Rel("S", (Constant(2),))

    def test_preserves_semantics_randomized(self):
        helper = TestEvaluatorAgainstNaive()
        rng = random.Random(23)
        for _ in range(100):
            formula = helper._random_formula(rng, depth=3)
            db = DatabaseInstance(
                [F("R", rng.randint(0, 2), rng.randint(0, 2))
                 for _ in range(3)]
                + [F("S", rng.randint(0, 2))]
            )
            assert evaluate(formula, db) == evaluate(simplify(formula), db)

    def test_size_and_depth(self):
        formula = exists([x], And((Rel("R", (x, y)), Eq(y, Constant(1)))))
        assert size(formula) == 4
        assert quantifier_depth(formula) == 1


class TestSubstitute:
    def test_parameter_binding(self):
        p = Parameter("p")
        formula = Rel("R", (p, y))
        bound = substitute_terms(formula, {p: Constant(7)})
        assert bound == Rel("R", (Constant(7), y))

    def test_respects_binders(self):
        formula = Exists((x,), Rel("R", (x, y)))
        bound = substitute_terms(formula, {x: Constant(1)})
        assert bound == formula  # x is bound; no substitution inside

    def test_capture_detected(self):
        formula = Exists((x,), Rel("R", (x, y)))
        with pytest.raises(EvaluationError):
            substitute_terms(formula, {y: x})


class TestRender:
    def test_render_compact(self):
        formula = exists([x], implies(Rel("S", (x,)), Rel("S", (x,))))
        text = render(formula)
        assert "∃x" in text and "→" in text

    def test_render_tree_is_multiline(self):
        formula = exists([x], conj([Rel("S", (x,)), Rel("R", (x, y))]))
        assert len(render_tree(formula).splitlines()) >= 3

    def test_parentheses_keep_semantics_visible(self):
        # ∧ binds tighter than ∨: Or under And needs parentheses, not vice
        # versa.
        assert render(And((Or((TRUE, FALSE)), TRUE))) == "(⊤ ∨ ⊥) ∧ ⊤"
        assert render(Or((And((TRUE, FALSE)), TRUE))) == "⊤ ∧ ⊥ ∨ ⊤"
