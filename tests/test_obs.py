"""Tests for the observability layer (`repro.obs`): the span recorder
and ambient trace context, structured logging, SLO tier classification
and per-tier quantiles, snapshot/stats merge edge cases, the `trace` and
`slo` CLI commands, and the end-to-end guarantee — one trace id links
the client's request, the server's log line, and the phase spans across
both thread-shard and process-fleet deployments."""

import json
import logging
import time

import pytest

from repro.api import Problem, Session, SessionConfig, connect
from repro.core.schema import Schema
from repro.db.instance import DatabaseInstance
from repro.engine import EngineStats, merge_engine_stats
from repro.engine.metrics import (
    LATENCY_BUCKET_BOUNDS,
    MetricsSnapshot,
    PlanMetrics,
    merge_snapshots,
)
from repro.obs import (
    PHASES,
    HumanFormatter,
    JsonFormatter,
    Span,
    SpanRecorder,
    current_trace_id,
    format_slo_report,
    get_logger,
    log_event,
    new_trace_id,
    record_span,
    recorder,
    setup_logging,
    span,
    tier_for,
    trace_context,
)
from repro.serve import BackgroundServer, ServeClient, ServerConfig
from repro.workloads import fig1_instance, intro_query_q0


def _fig1_problem() -> Problem:
    query, fks = intro_query_q0()
    return Problem(query, fks, name="fig1")


def _chain_db() -> DatabaseInstance:
    schema = Schema.of(R=(2, 1), S=(2, 1))
    return DatabaseInstance.build(
        schema, {"R": [("a", "b")], "S": [("b", "c")]}
    )


class _Capture(logging.Handler):
    """A list-backed handler (caplog cannot see `propagate=False`
    loggers, and the repro loggers are attached directly anyway)."""

    def __init__(self, level=logging.DEBUG):
        super().__init__(level)
        self.records: list[logging.LogRecord] = []

    def emit(self, record: logging.LogRecord) -> None:
        self.records.append(record)

    def events(self) -> list[str]:
        return [r.getMessage() for r in self.records]


@pytest.fixture
def capture():
    """Capture every `repro.*` log record at DEBUG for one test."""
    logger = logging.getLogger("repro")
    handler = _Capture()
    previous = logger.level
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG)
    try:
        yield handler
    finally:
        logger.removeHandler(handler)
        logger.setLevel(previous)


# ---------------------------------------------------------------------------
# trace ids, context, recorder


class TestTraceContext:
    def test_new_trace_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 32 and int(i, 16) >= 0 for i in ids)

    def test_ambient_context_nests_and_restores(self):
        assert current_trace_id() is None
        with trace_context("outer"):
            assert current_trace_id() == "outer"
            with trace_context("inner"):
                assert current_trace_id() == "inner"
            assert current_trace_id() == "outer"
        assert current_trace_id() is None

    def test_context_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with trace_context("t"):
                raise RuntimeError("boom")
        assert current_trace_id() is None


class TestSpanRecorder:
    def test_ring_is_bounded(self):
        rec = SpanRecorder(capacity=4)
        for i in range(10):
            rec.record(f"t{i}", "solve", 0.001)
        assert len(rec) == 4
        assert rec.spans_for("t0") == ()
        assert len(rec.spans_for("t9")) == 1

    def test_untraced_spans_feed_aggregates_only(self):
        rec = SpanRecorder(capacity=8)
        assert rec.record(None, "solve", 0.002) is None
        assert len(rec) == 0
        snap = rec.phase_snapshots()["solve"]
        assert snap.evaluations == 1

    def test_traced_span_carries_site_and_labels(self):
        rec = SpanRecorder(capacity=8, site="worker-123")
        made = rec.record("tid", "transport", 0.5, labels={"worker": "3"})
        assert made.site == "worker-123"
        assert made.labels == {"worker": "3"}
        doc = made.to_dict()
        assert Span.from_dict(doc) == made

    def test_negative_durations_are_clamped_in_aggregates(self):
        rec = SpanRecorder(capacity=8)
        rec.record(None, "queue_wait", -0.5)  # clock skew must not raise
        assert rec.phase_snapshots()["queue_wait"].evaluations == 1

    def test_json_lines_sink(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        rec = SpanRecorder(capacity=8, span_log=str(path))
        rec.record("tid", "solve", 0.001, labels={"class": "abc"})
        rec.record(None, "solve", 0.001)  # untraced: not sunk
        rec.close()
        rec.close()  # idempotent
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["trace_id"] == "tid"
        assert lines[0]["name"] == "solve"

    def test_record_span_uses_ambient_trace(self):
        rec = recorder()
        tid = new_trace_id()
        with trace_context(tid):
            record_span("respond", 0.001, labels={"verb": "ping"})
        assert [s.name for s in rec.spans_for(tid)] == ["respond"]

    def test_span_context_manager_times_the_block(self):
        tid = new_trace_id()
        with trace_context(tid):
            with span("canonicalize", **{"class": "xyz"}):
                time.sleep(0.002)
        (made,) = recorder().spans_for(tid)
        assert made.seconds >= 0.002
        assert made.labels == {"class": "xyz"}

    def test_phase_vocabulary_is_fixed(self):
        assert PHASES == (
            "queue_wait", "batch_linger", "canonicalize", "transport",
            "delta_apply", "incremental_solve", "solve", "respond",
        )


# ---------------------------------------------------------------------------
# structured logging


class TestLogging:
    def test_setup_is_idempotent(self):
        stream_logger = logging.getLogger("repro")
        before = list(stream_logger.handlers)
        try:
            setup_logging("info", "json")
            first = [
                h for h in stream_logger.handlers if h not in before
            ]
            setup_logging("debug", "human")
            second = [
                h for h in stream_logger.handlers if h not in before
            ]
            assert len(first) == len(second) == 1
            assert first[0] is not second[0]  # replaced, not stacked
        finally:
            for handler in stream_logger.handlers[:]:
                if handler not in before:
                    stream_logger.removeHandler(handler)
            stream_logger.setLevel(logging.NOTSET)
            stream_logger.propagate = True

    def test_setup_rejects_unknown_level_and_format(self):
        with pytest.raises(ValueError):
            setup_logging("chatty", "human")
        with pytest.raises(ValueError):
            setup_logging("info", "xml")

    def test_json_formatter_emits_event_and_fields(self):
        logger = get_logger("test.json")
        record = logger.makeRecord(
            logger.name, logging.INFO, __file__, 1, "request", (), None,
        )
        record.event_fields = {"trace_id": "abc", "ms": 1.5}
        doc = json.loads(JsonFormatter().format(record))
        assert doc["event"] == "request"
        assert doc["level"] == "info"
        assert doc["trace_id"] == "abc"
        assert doc["ms"] == 1.5

    def test_human_formatter_renders_key_values(self):
        logger = get_logger("test.human")
        record = logger.makeRecord(
            logger.name, logging.WARNING, __file__, 1, "decide.slow", (),
            None,
        )
        record.event_fields = {"backend": "fo-sql"}
        line = HumanFormatter().format(record)
        assert "decide.slow" in line
        assert "backend=fo-sql" in line
        assert "WARNING" in line

    def test_log_event_drops_none_fields(self, capture):
        log_event(
            get_logger("test.fields"), logging.INFO, "ev", a=1, b=None
        )
        (record,) = capture.records
        assert record.event_fields == {"a": 1}

    def test_log_event_is_gated_by_level(self):
        logger = get_logger("test.gated")
        handler = _Capture()
        logger.addHandler(handler)
        logger.setLevel(logging.WARNING)
        logger.propagate = False
        try:
            log_event(logger, logging.DEBUG, "ev", x=1)
            assert handler.records == []
        finally:
            logger.removeHandler(handler)
            logger.propagate = True


# ---------------------------------------------------------------------------
# SLO tiers


class TestTiers:
    @pytest.mark.parametrize(
        "verdict, backend, tier",
        [
            ("FO", "fo-rewriting", "fo"),
            ("FO", "fo-sql", "fo"),
            ("FO", "fo-duckdb", "fo"),
            ("L_HARD", "nl-reachability", "p16"),
            ("NL_HARD", "p-dual-horn", "p17"),
            ("NL_HARD", "subset-repairs", "oracle"),
            ("NL_HARD", "oplus-oracle", "oracle"),
            ("NL_HARD", "my-sat-solver", "sat"),
            ("FO", "homegrown", "fo"),  # verdict breaks the tie
            ("NL_HARD", "homegrown", "oracle"),  # conservative default
            ("", "", "oracle"),
        ],
    )
    def test_tier_for(self, verdict, backend, tier):
        assert tier_for(verdict, backend) == tier

    def test_report_renders_empty(self):
        assert "no tiers recorded" in format_slo_report([])

    def test_engine_stats_carry_tiers(self):
        problem = _fig1_problem()
        with connect() as session:
            session.decide(problem, fig1_instance())
            stats = session.stats()
        assert [t.tier for t in stats.tiers] == ["fo"]
        tier = stats.tiers[0]
        assert tier.plans == 1
        assert tier.metrics.evaluations == 1
        assert tier.metrics.p50_seconds is not None
        report = format_slo_report(stats.tiers)
        assert report.splitlines()[2].startswith("fo")

    def test_tiers_survive_round_trip_and_merge(self):
        problem = _fig1_problem()
        with connect() as session:
            session.decide(problem, fig1_instance())
            stats = session.stats()
        rebuilt = EngineStats.from_dict(stats.to_dict())
        assert [t.tier for t in rebuilt.tiers] == ["fo"]
        merged = merge_engine_stats([rebuilt, rebuilt])
        (tier,) = merged.tiers
        assert tier.metrics.evaluations == 2
        assert tier.plans == 1  # same plan key merges, not doubles

    def test_tier_quantiles_in_prom_exposition(self):
        problem = _fig1_problem()
        with connect() as session:
            session.decide(problem, fig1_instance())
            page = session.stats().to_prom()
        assert 'repro_tier_plans{tier="fo"} 1' in page
        assert 'repro_tier_p50_seconds{tier="fo"}' in page
        assert 'repro_tier_p99_seconds{tier="fo"}' in page
        assert 'repro_tier_latency_seconds_bucket' in page
        assert 'repro_tier_errors_total{tier="fo"} 0' in page


# ---------------------------------------------------------------------------
# snapshot quantiles and merge edge cases


def _snapshot(histogram, evaluations=None, **overrides) -> MetricsSnapshot:
    histogram = tuple(histogram)
    fields = dict(
        evaluations=(
            sum(histogram) if evaluations is None else evaluations
        ),
        batches=0,
        total_seconds=0.0,
        min_seconds=None,
        max_seconds=None,
        histogram=histogram,
    )
    fields.update(overrides)
    return MetricsSnapshot(**fields)


class TestQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        snap = _snapshot([0] * 7)
        assert snap.p50_seconds is None
        assert snap.p99_seconds is None

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            _snapshot([1, 0, 0, 0, 0, 0, 0]).quantile(1.5)

    def test_single_bucket_interpolates_within_bounds(self):
        # 10 samples all in (1e-4, 1e-3]
        snap = _snapshot([0, 0, 10, 0, 0, 0, 0])
        p50 = snap.p50_seconds
        assert 1e-4 < p50 <= 1e-3
        assert snap.quantile(0.1) < p50 < snap.quantile(0.9)

    def test_quantiles_clamped_to_observed_extrema(self):
        snap = _snapshot(
            [0, 0, 2, 0, 0, 0, 0], min_seconds=2e-4, max_seconds=3e-4
        )
        assert snap.p50_seconds <= 3e-4
        assert snap.p99_seconds <= 3e-4
        assert snap.quantile(0.0) >= 2e-4

    def test_overflow_bucket_pins_to_max(self):
        snap = _snapshot([0, 0, 0, 0, 0, 0, 3], max_seconds=42.0)
        assert snap.p99_seconds == 42.0
        # without a recorded max the last bound is the honest answer
        snap = _snapshot([0, 0, 0, 0, 0, 0, 3])
        assert snap.p99_seconds == LATENCY_BUCKET_BOUNDS[-1]


class TestMergeSnapshots:
    def test_merge_of_nothing_is_zero(self):
        merged = merge_snapshots([])
        assert merged.evaluations == 0
        assert merged.errors == merged.timeouts == 0
        assert merged.min_seconds is None and merged.max_seconds is None
        assert sum(merged.histogram) == 0

    def test_merge_of_one_is_identity(self):
        snap = _snapshot(
            [1, 2, 0, 0, 0, 0, 0], min_seconds=1e-6, max_seconds=5e-5,
            total_seconds=1e-4, errors=1, timeouts=1,
        )
        merged = merge_snapshots([snap])
        assert merged == snap

    def test_merge_against_hand_built_fixture(self):
        a = _snapshot(
            [3, 0, 1, 0, 0, 0, 0], min_seconds=1e-6, max_seconds=4e-4,
            total_seconds=5e-4, errors=2, timeouts=1,
        )
        b = _snapshot(
            [0, 5, 0, 0, 0, 0, 2], min_seconds=2e-5, max_seconds=9.0,
            total_seconds=20.0, errors=1, timeouts=0,
        )
        merged = merge_snapshots([a, b])
        # bucket-by-bucket alignment against the hand-merged histogram
        assert merged.histogram == (3, 5, 1, 0, 0, 0, 2)
        assert merged.evaluations == 11
        assert merged.errors == 3
        assert merged.timeouts == 1
        assert merged.min_seconds == 1e-6
        assert merged.max_seconds == 9.0
        assert merged.total_seconds == pytest.approx(20.0005)

    def test_snapshot_dict_round_trip_keeps_error_counts(self):
        metrics = PlanMetrics()
        metrics.record(0.002)
        metrics.record_error()
        metrics.record_error(timeout=True)
        snap = metrics.snapshot()
        rebuilt = MetricsSnapshot.from_dict(snap.to_dict())
        assert rebuilt == snap
        assert rebuilt.errors == 2
        assert rebuilt.timeouts == 1


class TestMergeEngineStats:
    def test_merge_of_nothing(self):
        merged = merge_engine_stats([])
        assert merged.plans == ()
        assert merged.tiers == ()

    def test_disjoint_plan_keys_concatenate(self):
        first = Problem.of("R(x | y)", "S(y | 'c1')", fks=["R[2]->S"])
        second = Problem.of("R(x | y)", "S(y | 'c2')", fks=["R[2]->S"])
        assert first.fingerprint.digest != second.fingerprint.digest
        schema = Schema.of(R=(2, 1), S=(2, 1))

        def stats_for(problem, constant):
            db = DatabaseInstance.build(
                schema, {"R": [("a", "b")], "S": [("b", constant)]}
            )
            with connect() as session:
                session.decide(problem, db)
                return session.stats()

        merged = merge_engine_stats(
            [stats_for(first, "c1"), stats_for(second, "c2")]
        )
        assert len(merged.plans) == 2
        assert {p.fingerprint for p in merged.plans} == {
            first.fingerprint.digest, second.fingerprint.digest,
        }
        # both FO plans fold into one tier with summed counts
        (tier,) = merged.tiers
        assert tier.tier == "fo"
        assert tier.plans == 2
        assert tier.metrics.evaluations == 2


# ---------------------------------------------------------------------------
# session-level solve spans, slow-decide warnings, error accounting


class TestSessionObservability:
    def test_decide_records_a_solve_span(self):
        problem = _fig1_problem()
        tid = new_trace_id()
        with connect() as session:
            with trace_context(tid):
                session.decide(problem, fig1_instance())
        (made,) = [
            s for s in recorder().spans_for(tid) if s.name == "solve"
        ]
        assert made.labels["backend"] == "fo-rewriting"
        assert made.labels["class"] == problem.fingerprint.digest

    def test_slow_decide_warns(self, capture, monkeypatch):
        problem = _fig1_problem()
        with Session(SessionConfig(slow_decide_seconds=1e-9)) as session:
            session.decide(problem, fig1_instance())
        events = [
            r for r in capture.records if r.getMessage() == "decide.slow"
        ]
        assert events, capture.events()
        fields = events[0].event_fields
        assert fields["backend"] == "fo-rewriting"
        assert fields["wall_ms"] >= 0

    def test_failed_decide_counts_errors_and_logs(self, capture):
        problem = _fig1_problem()
        with connect() as session:
            plan = session.prepare(problem)

            def explode(db, form=None):
                raise TimeoutError("deadline")

            plan.decide = explode
            with pytest.raises(TimeoutError):
                session.decide(problem, fig1_instance())
            snap = plan.metrics.snapshot()
        assert snap.errors == 1
        assert snap.timeouts == 1
        events = [
            r for r in capture.records if r.getMessage() == "decide.error"
        ]
        assert events[0].event_fields["timeout"] is True

    def test_default_decide_is_quiet(self, capture):
        # acceptance: no per-request log records at default settings
        # below WARNING... and none at all for a healthy decide
        problem = _fig1_problem()
        with connect() as session:
            session.decide(problem, fig1_instance())
        noisy = [
            r for r in capture.records if r.levelno >= logging.WARNING
        ]
        assert noisy == []


# ---------------------------------------------------------------------------
# end-to-end: one trace id across client, server log, spans


class TestServeTracing:
    def test_loopback_trace_links_request_log_and_spans(self, capture):
        problem = _fig1_problem()
        with BackgroundServer(
            ServerConfig(port=0, shards=2)
        ) as background:
            host, port = background.address
            with ServeClient(host, port) as client:
                result = client.request(
                    "decide",
                    problem=problem,
                    instance=fig1_instance(),
                )
                tid = result["trace_id"]
                assert len(tid) == 32
                payload = client.trace(tid)
        names = {s["name"] for s in payload["spans"]}
        assert {
            "canonicalize", "batch_linger", "queue_wait", "solve",
        } <= names
        # the INFO request event carries the same trace id
        requests = [
            r for r in capture.records
            if r.getMessage() == "request"
            and r.event_fields.get("verb") == "decide"
        ]
        assert requests, capture.events()
        assert requests[0].event_fields["trace_id"] == tid

    def test_caller_supplied_trace_id_is_respected(self):
        problem = _fig1_problem()
        tid = new_trace_id()
        with BackgroundServer(
            ServerConfig(port=0, shards=1)
        ) as background:
            host, port = background.address
            with ServeClient(host, port) as client:
                decision = client.decide(
                    problem, fig1_instance(), trace_id=tid
                )
                assert decision.backend == "fo-rewriting"
                payload = client.trace(tid)
        assert payload["trace_id"] == tid
        assert payload["spans"]

    def test_trace_verb_requires_an_id(self):
        with BackgroundServer(
            ServerConfig(port=0, shards=1)
        ) as background:
            host, port = background.address
            with ServeClient(host, port) as client:
                from repro.exceptions import RemoteError

                with pytest.raises(RemoteError) as caught:
                    client.request("trace")
                assert caught.value.code == "bad-request"

    def test_stats_and_metrics_carry_phase_aggregates(self):
        problem = _fig1_problem()
        with BackgroundServer(
            ServerConfig(port=0, shards=1)
        ) as background:
            host, port = background.address
            with ServeClient(host, port) as client:
                client.decide(problem, fig1_instance())
                stats = client.stats()
                page = client.metrics()
        assert "solve" in stats["phases"]
        assert stats["phases"]["solve"]["evaluations"] >= 1
        assert 'repro_phase_latency_seconds_bucket{phase="solve"' in page
        assert 'repro_phase_latency_seconds_count{phase="solve"}' in page

    def test_span_log_config_mirrors_spans_to_disk(self, tmp_path):
        problem = _fig1_problem()
        path = tmp_path / "spans.jsonl"
        with BackgroundServer(
            ServerConfig(port=0, shards=1, span_log=str(path))
        ) as background:
            host, port = background.address
            with ServeClient(host, port) as client:
                result = client.request(
                    "decide", problem=problem, instance=fig1_instance()
                )
        tid = result["trace_id"]
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert any(l["trace_id"] == tid for l in lines)


class TestProtocolTracing:
    def test_trace_fields_round_trip(self):
        from repro.serve import Request, decode_request

        request = Request(
            id=1, verb="decide", trace_id="abc", parent_span="client"
        )
        decoded = decode_request(json.dumps(request.to_dict()))
        assert decoded.trace_id == "abc"
        assert decoded.parent_span == "client"

    def test_trace_fields_are_optional_and_typed(self):
        from repro.exceptions import ServeProtocolError
        from repro.serve import decode_request

        decoded = decode_request('{"id": 1, "verb": "ping"}')
        assert decoded.trace_id is None
        assert decoded.parent_span is None
        with pytest.raises(ServeProtocolError):
            decode_request('{"id": 1, "verb": "ping", "trace_id": 7}')
        with pytest.raises(ServeProtocolError):
            decode_request('{"id": 1, "verb": "ping", "parent_span": 7}')


class TestFleetTracing:
    def test_worker_hop_spans_merge_into_front_trace(self):
        problem = _fig1_problem()
        with BackgroundServer(
            ServerConfig(port=0, processes=1)
        ) as background:
            host, port = background.address
            with ServeClient(host, port, timeout=60) as client:
                result = client.request(
                    "decide", problem=problem, instance=fig1_instance()
                )
                tid = result["trace_id"]
                payload = client.trace(tid)
                stats = client.stats()
        spans = payload["spans"]
        transport = [s for s in spans if s["name"] == "transport"]
        assert transport, [s["name"] for s in spans]
        assert transport[0]["labels"]["worker"] == "0"
        assert transport[0]["site"] == "server"
        solves = [s for s in spans if s["name"] == "solve"]
        assert any(s["site"].startswith("worker-") for s in solves)
        # the worker's phase aggregates surface in the front's stats
        assert "solve" in stats["phases"]
        assert stats["phases"]["solve"]["evaluations"] >= 1


class TestSupervisorForensics:
    def test_stderr_tail_is_bounded(self, tmp_path):
        from repro.serve.supervisor import _stderr_tail

        path = tmp_path / "w.stderr"
        path.write_text("\n".join(f"line {i}" for i in range(500)) + "\n")
        tail = _stderr_tail(str(path))
        lines = tail.splitlines()
        assert len(lines) <= 15
        assert lines[-1] == "line 499"
        assert _stderr_tail(str(tmp_path / "missing")) is None
        empty = tmp_path / "empty.stderr"
        empty.write_text("")
        assert _stderr_tail(str(empty)) is None
        assert _stderr_tail(None) is None

    def test_crash_forensics_are_logged_on_respawn(self, capture):
        from repro.serve import FleetConfig, FleetEngine

        import socket

        problem = _fig1_problem()
        with FleetEngine(
            1, config=FleetConfig(heartbeat_seconds=0)
        ) as fleet:
            fleet.decide(problem, fig1_instance())
            # break the cached connection while the worker stays alive:
            # the next request hits a transport failure and retries
            fleet._clients[0][1]._sock.shutdown(socket.SHUT_RDWR)
            fleet.decide(problem, fig1_instance())
            handle = fleet.supervisor.handle(0)
            handle.process.kill()
            handle.process.join(timeout=10)
            # the request path notices the death, logs forensics, respawns
            decision = fleet.decide(problem, fig1_instance())
            assert decision.backend == "fo-rewriting"
        events = {r.getMessage() for r in capture.records}
        assert "worker.crash" in events, sorted(events)
        assert "worker.respawn" in events
        assert "fleet.retry" in events
        crash = [
            r for r in capture.records if r.getMessage() == "worker.crash"
        ][0]
        assert crash.event_fields["shard"] == 0
        assert "exit_code" in crash.event_fields


class TestClientLifecycle:
    def test_blocking_close_is_idempotent(self):
        with BackgroundServer(
            ServerConfig(port=0, shards=1)
        ) as background:
            host, port = background.address
            client = ServeClient(host, port)
            assert client.ping()["pong"] is True
            client.close()
            client.close()  # second close must be a no-op
            from repro.exceptions import ServeProtocolError

            with pytest.raises(ServeProtocolError):
                client.ping()

    def test_context_manager_closes(self):
        with BackgroundServer(
            ServerConfig(port=0, shards=1)
        ) as background:
            host, port = background.address
            with ServeClient(host, port) as client:
                client.ping()
            from repro.exceptions import ServeProtocolError

            with pytest.raises(ServeProtocolError):
                client.ping()

    def test_close_after_server_died_does_not_raise(self):
        background = BackgroundServer(ServerConfig(port=0, shards=1))
        background.start()
        host, port = background.address
        client = ServeClient(host, port)
        background.stop()
        client.close()  # socket may already be reset: still clean
        client.close()


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def test_slo_from_stats_file(self, tmp_path, capsys):
        from repro.cli import main

        problem = _fig1_problem()
        with connect() as session:
            session.decide(problem, fig1_instance())
            document = session.stats().to_dict()
        path = tmp_path / "stats.json"
        path.write_text(json.dumps(document))
        assert main(["slo", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("tier")
        assert any(line.startswith("fo") for line in out.splitlines())

    def test_slo_rejects_garbage_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "stats.json"
        path.write_text("[1, 2")  # invalid JSON
        assert main(["slo", "--file", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_command_round_trip(self, capsys):
        from repro.cli import main

        problem = _fig1_problem()
        with BackgroundServer(
            ServerConfig(port=0, shards=1)
        ) as background:
            host, port = background.address
            with ServeClient(host, port) as client:
                result = client.request(
                    "decide", problem=problem, instance=fig1_instance()
                )
            endpoint = f"{host}:{port}"
            tid = result["trace_id"]
            assert main(["trace", tid, "--connect", endpoint]) == 0
            out = capsys.readouterr().out
            assert tid in out
            assert "solve" in out
            # an unknown id reports cleanly and exits nonzero
            assert main(["trace", "f" * 32, "--connect", endpoint]) == 1

    def test_decide_trace_requires_connect(self, tmp_path, capsys):
        from repro.cli import main
        from repro.db import io as db_io

        problem = _fig1_problem()
        pfile = tmp_path / "problem.json"
        pfile.write_text(problem.to_json())
        dfile = tmp_path / "db.txt"
        db_io.dump(fig1_instance(), str(dfile))
        code = main(
            ["decide", "-p", str(pfile), str(dfile), "--trace"]
        )
        assert code == 2
        assert "--trace needs --connect" in capsys.readouterr().err
