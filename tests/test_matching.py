"""Unit tests for conjunctive-query evaluation and relevance."""

import pytest

from repro.core.query import parse_query
from repro.core.terms import Parameter, Variable
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.db.matching import (
    apply_valuation,
    is_fact_relevant,
    relevant_blocks,
    relevant_facts,
    satisfies,
    valuations,
)
from repro.exceptions import EvaluationError


def F(rel, *values, key=1):
    return Fact(rel, tuple(values), key)


class TestValuations:
    def test_single_atom(self):
        q = parse_query("R(x | y)")
        db = DatabaseInstance([F("R", 1, 2), F("R", 3, 4)])
        results = list(valuations(q, db))
        assert len(results) == 2

    def test_join(self):
        q = parse_query("R(x | y)", "S(y | z)")
        db = DatabaseInstance([F("R", 1, 2), F("S", 2, 3), F("S", 9, 9)])
        results = list(valuations(q, db))
        assert results == [{Variable("x"): 1, Variable("y"): 2, Variable("z"): 3}]

    def test_constant_filter(self):
        q = parse_query("R(x | 'c')")
        db = DatabaseInstance([F("R", 1, "c"), F("R", 2, "d")])
        assert [v[Variable("x")] for v in valuations(q, db)] == [1]

    def test_repeated_variable(self):
        q = parse_query("R(x | x)")
        db = DatabaseInstance([F("R", 1, 1), F("R", 1, 2)])
        assert len(list(valuations(q, db))) == 1

    def test_parameter_environment(self):
        q = parse_query("R($p | y)")
        db = DatabaseInstance([F("R", 1, 2), F("R", 3, 4)])
        results = list(valuations(q, db, env={Parameter("p"): 3}))
        assert results == [{Variable("y"): 4}]

    def test_unbound_parameter_raises(self):
        q = parse_query("R($p | y)")
        db = DatabaseInstance([F("R", 1, 2)])
        with pytest.raises(EvaluationError):
            list(valuations(q, db))

    def test_partial_binding(self):
        q = parse_query("R(x | y)")
        db = DatabaseInstance([F("R", 1, 2), F("R", 3, 4)])
        results = list(valuations(q, db, partial={Variable("x"): 3}))
        assert results == [{Variable("x"): 3, Variable("y"): 4}]

    def test_empty_query_has_empty_valuation(self):
        q = parse_query()
        assert list(valuations(q, DatabaseInstance())) == [{}]


class TestSatisfies:
    def test_satisfied(self):
        q = parse_query("R(x | y)", "S(y |)")
        db = DatabaseInstance([F("R", 1, 2), F("S", 2)])
        assert satisfies(q, db)

    def test_not_satisfied(self):
        q = parse_query("R(x | y)", "S(y |)")
        db = DatabaseInstance([F("R", 1, 2), F("S", 3)])
        assert not satisfies(q, db)


class TestApplyValuation:
    def test_produces_facts(self):
        q = parse_query("R(x | y)")
        facts = apply_valuation(q, {Variable("x"): 1, Variable("y"): 2})
        assert facts == {F("R", 1, 2)}

    def test_missing_binding_raises(self):
        q = parse_query("R(x | y)")
        with pytest.raises(EvaluationError):
            apply_valuation(q, {Variable("x"): 1})


class TestRelevance:
    def test_relevant_facts(self):
        q = parse_query("R(x | y)", "S(y |)")
        db = DatabaseInstance([F("R", 1, 2), F("R", 1, 3), F("S", 2)])
        relevant = relevant_facts(q, db, "R")
        assert relevant == {F("R", 1, 2)}

    def test_relevant_blocks(self):
        q = parse_query("R(x | y)", "S(y |)")
        db = DatabaseInstance(
            [F("R", 1, 2), F("R", 7, 9), F("S", 2)]
        )
        assert relevant_blocks(q, db, "R") == {("R", (1,))}

    def test_is_fact_relevant_matches_enumeration(self):
        q = parse_query("R(x | y)", "S(y |)")
        db = DatabaseInstance(
            [F("R", 1, 2), F("R", 1, 3), F("R", 4, 2), F("S", 2)]
        )
        enumerated = relevant_facts(q, db, "R")
        for fact in db.relation_facts("R"):
            assert is_fact_relevant(fact, q, db) == (fact in enumerated)

    def test_irrelevant_relation(self):
        q = parse_query("R(x | y)")
        db = DatabaseInstance([F("T", 1)])
        assert not is_fact_relevant(F("T", 1), q, db)
