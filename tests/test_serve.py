"""Tests for the `repro.serve` layer: instance/protocol wire round-trips,
consistent-hash shard routing, structured error envelopes, micro-batching,
and the end-to-end loopback serve path (Problem + instance JSON in →
Decision JSON out with provenance intact)."""

import asyncio
import json
import socket

import pytest

from repro.api import Problem
from repro.core.schema import Schema
from repro.db import io as db_io
from repro.db.instance import DatabaseInstance
from repro.exceptions import (
    InstanceFormatError,
    RemoteError,
    ServeProtocolError,
)
from repro.serve import (
    AsyncServeClient,
    BackgroundServer,
    HashRing,
    Request,
    ServeClient,
    ServerConfig,
    ShardedEngine,
    decode_request,
    decode_response,
    encode_frame,
    error_response,
    ok_response,
)
from repro.workloads import fig1_instance, intro_query_q0


def _fig1_problem() -> Problem:
    query, fks = intro_query_q0()
    return Problem(query, fks, name="fig1")


def _chain_problem(constant: str) -> Problem:
    return Problem.of(
        f"R(x | '{constant}', y)", "S(y | z)", fks=["R[3]->S"]
    )


def _small_db() -> DatabaseInstance:
    schema = Schema.of(R=(2, 1), S=(2, 1))
    return DatabaseInstance.build(
        schema, {"R": [("a", "b")], "S": [("b", "c")]}
    )


class TestInstanceWireFormat:
    def test_round_trip_json(self):
        db = fig1_instance()
        assert db_io.from_json(db_io.to_json(db)) == db

    def test_round_trip_preserves_int_vs_str(self):
        schema = Schema.of(R=(2, 1))
        db = DatabaseInstance.build(schema, {"R": [(1, "1"), ("1", 1)]})
        restored = db_io.from_json(db_io.to_json(db))
        assert restored == db
        assert {f.values for f in restored} == {(1, "1"), ("1", 1)}

    def test_deterministic_document(self):
        db = fig1_instance()
        assert db_io.to_json(db) == db_io.to_json(
            DatabaseInstance(db.facts)
        )

    def test_empty_instance(self):
        assert db_io.from_json(db_io.to_json(DatabaseInstance())).size == 0

    def test_rejects_wrong_format(self):
        with pytest.raises(InstanceFormatError, match="format"):
            db_io.from_dict({"format": "something/else", "version": 1})

    def test_rejects_wrong_version(self):
        with pytest.raises(InstanceFormatError, match="version"):
            db_io.from_dict({"format": "repro/instance", "version": 99})

    def test_rejects_bad_rows(self):
        with pytest.raises(InstanceFormatError, match="row"):
            db_io.from_dict(
                {
                    "format": "repro/instance",
                    "version": 1,
                    "relations": {
                        "R": {"arity": 2, "key_size": 1, "rows": [["a"]]}
                    },
                }
            )

    def test_rejects_non_wire_values(self):
        with pytest.raises(InstanceFormatError, match="serializable"):
            db_io.from_dict(
                {
                    "format": "repro/instance",
                    "version": 1,
                    "relations": {
                        "R": {"arity": 1, "key_size": 1, "rows": [[1.5]]}
                    },
                }
            )
        with pytest.raises(InstanceFormatError, match="serializable"):
            db_io.to_dict(DatabaseInstance([_fact_with_none()]))

    def test_rejects_bad_key_size(self):
        with pytest.raises(InstanceFormatError, match="key size"):
            db_io.from_dict(
                {
                    "format": "repro/instance",
                    "version": 1,
                    "relations": {
                        "R": {"arity": 1, "key_size": 2, "rows": []}
                    },
                }
            )

    def test_invalid_json(self):
        with pytest.raises(InstanceFormatError, match="invalid JSON"):
            db_io.from_json("{nope")


def _fact_with_none():
    from repro.db.facts import Fact

    return Fact("R", (None,), 1)


class TestProtocol:
    def test_request_round_trip(self):
        problem = _fig1_problem()
        request = Request(
            id=7,
            verb="decide",
            problem=problem.to_dict(),
            instance=db_io.to_dict(fig1_instance()),
        )
        decoded = decode_request(encode_frame(request.to_dict()))
        assert decoded == request
        assert Problem.from_dict(decoded.problem).fingerprint == \
            problem.fingerprint
        assert db_io.from_dict(decoded.instance) == fig1_instance()

    def test_ok_response_round_trip(self):
        line = encode_frame(ok_response("abc", {"pong": True}))
        request_id, result = decode_response(line)
        assert request_id == "abc" and result == {"pong": True}

    def test_error_envelope_raises_remote_error(self):
        line = encode_frame(error_response(3, "bad-problem", "nope"))
        with pytest.raises(RemoteError) as excinfo:
            decode_response(line)
        assert excinfo.value.code == "bad-problem"
        assert excinfo.value.request_id == 3
        assert "nope" in str(excinfo.value)

    def test_decode_request_rejects_bad_frames(self):
        with pytest.raises(ServeProtocolError, match="invalid JSON"):
            decode_request(b"{nope\n")
        with pytest.raises(ServeProtocolError, match="JSON object"):
            decode_request(b"[1, 2]\n")
        with pytest.raises(ServeProtocolError, match="'id'"):
            decode_request({"verb": "ping", "id": True})
        with pytest.raises(ServeProtocolError, match="'verb'"):
            decode_request({"id": 1})
        with pytest.raises(ServeProtocolError, match="'instances'"):
            decode_request(
                {"id": 1, "verb": "decide_batch", "instances": {}}
            )

    def test_frames_are_single_lines(self):
        frame = encode_frame(
            ok_response(1, {"text": "multi\nline\npayload"})
        )
        assert frame.endswith(b"\n") and frame.count(b"\n") == 1


class TestShardRouting:
    def test_deterministic_across_instances(self):
        ring_a = HashRing(4)
        ring_b = HashRing(4)
        for i in range(50):
            digest = _chain_problem(f"c{i}").fingerprint.digest
            assert ring_a.shard_for(digest) == ring_b.shard_for(digest)

    def test_alpha_variants_land_on_the_same_shard(self):
        with ShardedEngine(4) as sharded:
            a = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
            b = Problem.of("S(q | r)", "R(p | q)", fks=["R[2]->S"])
            assert a.fingerprint == b.fingerprint
            assert sharded.shard_for(a) == sharded.shard_for(b)

    def test_distribution_covers_every_shard(self):
        ring = HashRing(4)
        owners = {
            ring.shard_for(_chain_problem(f"c{i}").fingerprint.digest)
            for i in range(80)
        }
        assert owners == {0, 1, 2, 3}

    def test_consistent_hashing_limits_remapping(self):
        # growing 4 → 5 shards must move only a minority of keys
        small, grown = HashRing(4), HashRing(5)
        digests = [
            _chain_problem(f"c{i}").fingerprint.digest for i in range(200)
        ]
        moved = sum(
            small.shard_for(d) != grown.shard_for(d) for d in digests
        )
        assert 0 < moved < len(digests) / 2

    def test_sharded_engine_caches_per_shard(self):
        with ShardedEngine(2) as sharded:
            problem = _fig1_problem()
            db = fig1_instance()
            first = sharded.decide(problem, db)
            second = sharded.decide(problem, db)
            assert first.certain == second.certain
            assert not first.cache_hit and second.cache_hit
            sizes = [
                entry.stats.cache.size for entry in sharded.stats()
            ]
            assert sorted(sizes) == [0, 1]  # one shard owns the plan

    def test_rejects_bad_shard_counts(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            ServerConfig(shards=0)


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(
        ServerConfig(shards=2, linger_ms=5, plan_cache_size=16)
    ) as background:
        yield background


@pytest.fixture()
def client(server):
    host, port = server.address
    with ServeClient(host, port) as serve_client:
        yield serve_client


class TestLoopbackEndToEnd:
    def test_ping(self, client):
        result = client.ping()
        assert result["pong"] is True
        assert result["protocol"] == "repro/serve"

    def test_decide_round_trip_with_provenance(self, client):
        problem = _fig1_problem()
        db = fig1_instance()
        decision = client.decide(problem, db)
        # the serial oracle of the same problem/instance
        from repro.api import connect

        with connect() as session:
            local = session.decide(problem, db)
        assert decision.certain == local.certain
        assert decision.fingerprint == problem.fingerprint.digest
        assert decision.backend == local.backend
        assert decision.verdict == local.verdict
        assert decision.wall_seconds >= 0
        # a second decide of the same problem hits the shard's plan cache
        assert client.decide(problem, db).cache_hit is True

    def test_decide_batch_round_trip(self, client):
        problem = _fig1_problem()
        dbs = [fig1_instance(), fig1_instance()]
        batch = client.decide_batch(problem, dbs)
        assert len(batch.answers) == 2
        assert batch.answers[0] == batch.answers[1]
        assert batch.fingerprint == problem.fingerprint.digest

    def test_classify_and_explain(self, client):
        problem = _fig1_problem()
        classify = client.classify(problem)
        assert classify["in_fo"] is True
        plan = client.explain(problem)
        assert problem.fingerprint.digest in plan

    def test_stats_verb(self, client):
        problem = _fig1_problem()
        client.decide(problem, fig1_instance())
        stats = client.stats()
        assert stats["server"]["requests"] >= 1
        assert stats["server"]["shards"] == 2
        assert len(stats["shards"]) == 2
        total_plans = sum(
            len(entry["plans"]) for entry in stats["shards"]
        )
        assert total_plans >= 1
        backends = [
            aggregate["backend"]
            for entry in stats["shards"]
            for aggregate in entry["backends"]
        ]
        assert "fo-rewriting" in backends

    def test_error_envelope_unknown_verb(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.request("conjure")
        assert excinfo.value.code == "unsupported"

    def test_error_envelope_bad_problem(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.request(
                "decide",
                instances=None,
                instance=_small_db(),
                problem=None,
            )
        assert excinfo.value.code == "bad-request"

    def test_error_envelope_malformed_problem_payload(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            stream = sock.makefile("rwb")
            stream.write(
                encode_frame(
                    {
                        "id": 1,
                        "verb": "decide",
                        "problem": {"format": "wrong"},
                        "instance": db_io.to_dict(_small_db()),
                    }
                )
            )
            stream.flush()
            reply = json.loads(stream.readline())
        assert reply["ok"] is False
        assert reply["id"] == 1
        assert reply["error"]["code"] == "bad-problem"

    def test_error_envelope_invalid_json_line(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            stream = sock.makefile("rwb")
            stream.write(b"this is not json\n")
            stream.flush()
            reply = json.loads(stream.readline())
        assert reply["ok"] is False
        assert reply["error"]["code"] == "bad-request"

    def test_error_envelope_domain_error(self, server):
        host, port = server.address
        # a problem document whose foreign keys are not about the query
        document = {
            "format": "repro/problem",
            "version": 1,
            "name": "",
            "atoms": [
                {
                    "relation": "E",
                    "key_size": 1,
                    "terms": [["var", "x"], ["var", "y"]],
                }
            ],
            "foreign_keys": [
                {"source": "E", "position": 2, "target": "E"}
            ],
            "schema": {"E": [2, 1]},
        }
        with socket.create_connection((host, port), timeout=10) as sock:
            stream = sock.makefile("rwb")
            stream.write(
                encode_frame(
                    {"id": 5, "verb": "classify", "problem": document}
                )
            )
            stream.flush()
            reply = json.loads(stream.readline())
        assert reply["ok"] is False
        assert reply["error"]["code"] == "domain"


class TestFrameLimits:
    def test_large_instance_round_trips(self):
        # a document far beyond asyncio's 64 KiB default line limit
        schema = Schema.of(R=(2, 1), S=(2, 1))
        rows = [(f"key-{i}", f"value-{i}") for i in range(4000)]
        db = DatabaseInstance.build(
            schema, {"R": rows, "S": [(f"value-{i}", "t") for i in range(4000)]}
        )
        assert len(db_io.to_json(db)) > 64 * 1024
        problem = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
        with BackgroundServer(ServerConfig(shards=1)) as background:
            host, port = background.address
            with ServeClient(host, port) as serve_client:
                decision = serve_client.decide(problem, db)
        assert decision.fingerprint == problem.fingerprint.digest

    def test_oversized_frame_gets_error_envelope(self):
        with BackgroundServer(
            ServerConfig(shards=1, max_frame_bytes=4096)
        ) as background:
            host, port = background.address
            with ServeClient(host, port) as serve_client:
                big = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
                schema = Schema.of(R=(2, 1), S=(2, 1))
                db = DatabaseInstance.build(
                    schema,
                    {"R": [(f"k{i}", f"v{i}") for i in range(500)],
                     "S": [("v", "t")]},
                )
                with pytest.raises(RemoteError) as excinfo:
                    serve_client.decide(big, db)
                assert excinfo.value.code == "bad-request"
                assert "limit" in str(excinfo.value)


class TestMicroBatching:
    def test_concurrent_same_problem_decides_share_a_batch(self):
        problem = _fig1_problem()
        db = fig1_instance()
        with BackgroundServer(
            ServerConfig(shards=2, linger_ms=100, max_batch=64)
        ) as background:
            host, port = background.address

            async def hammer():
                async with await AsyncServeClient.connect(
                    host, port
                ) as async_client:
                    return await asyncio.gather(
                        *[async_client.decide(problem, db) for _ in range(8)]
                    )

            results = asyncio.run(hammer())
            with ServeClient(host, port) as stats_client:
                stats = stats_client.stats()
        answers = {r["decision"]["certain"] for r in results}
        assert len(answers) == 1  # all identical
        assert max(r["micro_batch"] for r in results) > 1
        assert stats["server"]["batched_requests"] > 0
        # micro-batching collapsed 8 requests into far fewer engine batches
        assert stats["server"]["micro_batches"] < 8

    def test_max_batch_one_disables_grouping(self):
        problem = _fig1_problem()
        db = fig1_instance()
        with BackgroundServer(
            ServerConfig(shards=1, linger_ms=50, max_batch=1)
        ) as background:
            host, port = background.address

            async def hammer():
                async with await AsyncServeClient.connect(
                    host, port
                ) as async_client:
                    return await asyncio.gather(
                        *[async_client.decide(problem, db) for _ in range(4)]
                    )

            results = asyncio.run(hammer())
        assert all(r["micro_batch"] == 1 for r in results)

    def test_shutdown_verb_stops_background_server(self):
        with BackgroundServer(ServerConfig(shards=1)) as background:
            host, port = background.address
            with ServeClient(host, port) as serve_client:
                assert serve_client.shutdown() == {"stopping": True}
            background._thread.join(timeout=30)
            assert not background._thread.is_alive()

    def test_shutdown_completes_with_idle_connections_open(self):
        # regression: on Python >= 3.12.1 Server.wait_closed() blocks until
        # every connection handler exits, so shutdown must EOF idle
        # connections instead of waiting on them
        with BackgroundServer(ServerConfig(shards=1)) as background:
            host, port = background.address
            with ServeClient(host, port) as idle:
                idle.ping()  # an established, then idle, connection
                with ServeClient(host, port) as other:
                    assert other.shutdown() == {"stopping": True}
                background._thread.join(timeout=30)
                assert not background._thread.is_alive()

    def test_async_client_raises_after_connection_lost(self):
        with BackgroundServer(ServerConfig(shards=1)) as background:
            host, port = background.address

            async def scenario():
                client = await AsyncServeClient.connect(host, port)
                assert (await client.ping())["pong"] is True
                await client.shutdown()  # the server EOFs this connection
                # wait for the read loop to observe the close
                for _ in range(100):
                    if client._closed:
                        break
                    await asyncio.sleep(0.05)
                with pytest.raises(ServeProtocolError):
                    await client.ping()
                await client.close()

            asyncio.run(scenario())
