"""Unit tests for block-interference (Definition 9)."""

from repro.core.foreign_keys import ForeignKey, fk_set
from repro.core.interference import (
    find_block_interference,
    has_block_interference,
    is_block_interfering,
)
from repro.core.query import parse_query


class TestExample10:
    def test_constant_interference_via_3a(self):
        q = parse_query("N(x | 'c', y)", "O(y |)")
        fks = fk_set(q, "N[3]->O")
        witness = find_block_interference(q, fks)
        assert witness is not None
        assert witness.via == "3a"
        assert witness.foreign_key == ForeignKey("N", 3, "O")

    def test_fresh_variable_removes_interference(self):
        """Replacing c by a once-occurring variable kills it (Section 4)."""
        q = parse_query("N(x | z, y)", "O(y |)")
        fks = fk_set(q, "N[3]->O")
        assert not has_block_interference(q, fks)

    def test_constant_in_target_removes_interference(self):
        """Replacing O(y) by O(y, c) makes O disobedient (Section 4)."""
        q = parse_query("N(x | 'c', y)", "O(y | 'c')")
        fks = fk_set(q, "N[3]->O")
        assert not has_block_interference(q, fks)

    def test_repeated_variable_in_target_removes_interference(self):
        q = parse_query("N(x | 'c', y)", "O(y | z, z)")
        fks = fk_set(q, "N[3]->O")
        assert not has_block_interference(q, fks)

    def test_fresh_variable_in_target_keeps_interference(self):
        """O(y, w) with orphan w stays obedient (Section 4)."""
        q = parse_query("N(x | 'c', y)", "O(y | w)")
        fks = fk_set(q, "N[3]->O")
        assert has_block_interference(q, fks)


class TestExample11:
    def test_connection_via_t_atom(self):
        q = parse_query("Np(x | y)", "O(y |)", "T(x | y)")
        fks = fk_set(q, "Np[2]->O")
        witness = find_block_interference(q, fks)
        assert witness is not None
        assert witness.via == "3b"

    def test_forced_variable_blocks_interference(self):
        """Adding R(a, x) forces x, emptying V of it (Example 11)."""
        q = parse_query("Np(x | y)", "O(y |)", "T(x | y)", "R('a' | x)")
        fks = fk_set(q, "Np[2]->O")
        assert not has_block_interference(q, fks)


class TestDefinitionDetails:
    def test_weak_keys_never_interfere(self):
        q = parse_query("R(x | y)", "S(x | z)")
        fks = fk_set(q, "R[1]->S")
        assert not has_block_interference(q, fks)

    def test_disobedient_target_blocks_condition_1(self):
        # O's non-key shares a variable with P, making O disobedient.
        q = parse_query("N(x | 'c', y)", "O(y | w)", "P(w |)")
        fks = fk_set(q, "N[3]->O")
        (fk,) = fks.foreign_keys
        assert is_block_interfering(q, fks, fk) is None

    def test_constant_referencing_term_blocks_condition_2(self):
        q = parse_query("N(x | u, 'a')", "O('a' | w)")
        fks = fk_set(q, "N[3]->O")
        assert not has_block_interference(q, fks)

    def test_implied_keys_are_considered(self):
        """Interference can come from FK* (transitively implied keys)."""
        # N[2]->S, S[1]->O implies N[2]->O; the direct keys are harmless
        # but the implied strong key into obedient O interferes via 3b.
        q = parse_query("N(x | y)", "S(y | 'c')", "O(y |)", "T(x | y)")
        fks = fk_set(q, "N[2]->S", "S[1]->O")
        witness = find_block_interference(q, fks)
        assert witness is not None
        assert witness.foreign_key == ForeignKey("N", 2, "O")

    def test_self_referencing_source(self):
        """Example 27's pair: N[2]→N cyclic, N[2]→O interferes."""
        q = parse_query("N(x | x)", "O(x | y)")
        fks = fk_set(q, "N[2]->N", "N[2]->O")
        witness = find_block_interference(q, fks)
        assert witness is not None
        assert witness.foreign_key == ForeignKey("N", 2, "O")

    def test_proposition16_query_interferes_via_3b(self):
        q = parse_query("N(x | x)", "O(x |)")
        fks = fk_set(q, "N[2]->O")
        witness = find_block_interference(q, fks)
        assert witness is not None
        assert witness.via == "3b"
