"""Tests for the executable hardness reductions (Lemmas 14/15, Prop 17)."""

import random

import pytest

from repro.core.query import parse_query
from repro.core.foreign_keys import fk_set
from repro.db.instance import DatabaseInstance
from repro.exceptions import QueryError
from repro.hardness import (
    DiGraph,
    ReachabilityInstance,
    build_gadget_instance,
    decide_reachability_via_cqa,
    find_attack_cycle,
    random_dag,
    reduce_dual_horn,
    reduce_reachability,
    satisfiable_via_cqa,
    theta,
)
from repro.repairs import certain_answer, certainty_primary_keys
from repro.solvers import (
    Clause,
    DualHornFormula,
    certain_by_dual_horn,
    proposition17_query,
    solve_dual_horn,
)


class TestDiGraph:
    def test_reachability(self):
        g = DiGraph.from_edges([(1, 2), (2, 3)])
        assert g.reaches(1, 3)
        assert not g.reaches(3, 1)
        assert g.reaches(1, 1)

    def test_random_dag_is_acyclic(self, rng):
        for _ in range(20):
            g = random_dag(6, 0.5, rng)
            for v in g.vertices:
                for succ in g.successors(v):
                    assert not g.reaches(succ, v), "cycle found"

    def test_with_edge_is_persistent(self):
        g = DiGraph.from_edges([(1, 2)])
        g2 = g.with_edge(2, 3)
        assert g2.reaches(1, 3)
        assert not g.reaches(1, 3)


class TestFig3Reduction:
    def test_paper_example(self):
        """The exact Fig. 3 graph: s→1, s→2, 2→t."""
        g = DiGraph.from_edges(
            [("s", 1), ("s", 2), (2, "t")], vertices=["s", 1, 2, "t"]
        )
        instance = ReachabilityInstance(g, "s", "t")
        assert instance.answer
        db = reduce_reachability(instance)
        # 6 N-facts (3 satisfying for s,1,2 + 3 edges) + O(s)
        assert db.size == 7
        assert decide_reachability_via_cqa(
            instance, lambda d: certain_by_dual_horn(d, "c")
        )

    def test_no_path_gives_yes_instance(self):
        g = DiGraph.from_edges([("s", 1)], vertices=["s", 1, "t"])
        instance = ReachabilityInstance(g, "s", "t")
        assert not instance.answer
        db = reduce_reachability(instance)
        assert certain_by_dual_horn(db, "c")

    def test_random_dags_roundtrip_via_oracle(self, rng):
        q, fks = proposition17_query("c")
        for _ in range(60):
            g = random_dag(rng.randint(2, 5), 0.4, rng)
            vertices = g.vertices
            s, t = rng.choice(vertices), rng.choice(vertices)
            instance = ReachabilityInstance(g, s, t)
            db = reduce_reachability(instance)
            no_instance = not certain_answer(q, fks, db).certain
            assert instance.answer == no_instance, (g.edges, s, t)

    def test_random_dags_roundtrip_via_solver(self, rng):
        for _ in range(120):
            g = random_dag(rng.randint(2, 8), 0.3, rng)
            vertices = g.vertices
            s, t = rng.choice(vertices), rng.choice(vertices)
            instance = ReachabilityInstance(g, s, t)
            assert decide_reachability_via_cqa(
                instance, lambda d: certain_by_dual_horn(d, "c")
            ) == instance.answer


class TestDualHornReduction:
    def test_roundtrip_small(self):
        formula = DualHornFormula(
            [Clause(("p",)), Clause((), negative="p")]
        )
        assert not solve_dual_horn(formula).satisfiable
        assert not satisfiable_via_cqa(
            formula, lambda d: certain_by_dual_horn(d, "c")
        )

    def test_roundtrip_random(self, rng):
        for _ in range(150):
            n_vars = rng.randint(1, 5)
            clauses = []
            for _ in range(rng.randint(1, 6)):
                positives = tuple(
                    ("p", i)
                    for i in rng.sample(range(n_vars),
                                        rng.randint(0, min(3, n_vars)))
                )
                negative = (
                    ("p", rng.randrange(n_vars))
                    if rng.random() < 0.5 else None
                )
                clauses.append(Clause(positives, negative))
            formula = DualHornFormula(clauses)
            expected = solve_dual_horn(formula).satisfiable
            assert satisfiable_via_cqa(
                formula, lambda d: certain_by_dual_horn(d, "c")
            ) == expected

    def test_roundtrip_via_oracle(self, rng):
        q, fks = proposition17_query("c")
        for _ in range(40):
            clauses = []
            for _ in range(rng.randint(1, 3)):
                positives = tuple(
                    ("p", i) for i in rng.sample(range(3), rng.randint(0, 2))
                )
                negative = ("p", rng.randrange(3)) if rng.random() < 0.5 else None
                clauses.append(Clause(positives, negative))
            formula = DualHornFormula(clauses)
            db = reduce_dual_horn(formula)
            expected = solve_dual_horn(formula).satisfiable
            assert (
                not certain_answer(q, fks, db).certain
            ) == expected, formula


class TestLemma14Gadget:
    def setup_method(self):
        self.q = parse_query("R(x | y)", "S(y | x)")
        self.gadget = find_attack_cycle(self.q)

    def test_acyclic_query_rejected(self):
        with pytest.raises(QueryError):
            find_attack_cycle(parse_query("R(x | y)", "S(y | z)"))

    def test_theta_partitions(self):
        valuation = theta(self.gadget, "a", "b")
        values = set(valuation.values())
        # x ∈ F⁺ only, y ∈ G⁺ only for this query
        assert values <= {"a", "b", ("⊥",), ("a", "b")}

    def test_gadget_instance_consistent_outside_fg(self):
        db = build_gadget_instance(
            self.gadget, [(1, 2), (1, 3)], [(2, 1)]
        )
        assert db.size > 0

    def test_equivalence_with_and_without_fks(self, rng):
        """Lemma 14: db_{R,S} is a no-instance of CERTAINTY(q, PK) iff it
        is one of CERTAINTY(q, PK ∪ FK)."""
        fks = fk_set(self.q, "R[2]->S", "S[2]->R")
        for _ in range(60):
            pairs = [(rng.randint(0, 2), rng.randint(0, 2))
                     for _ in range(rng.randint(1, 3))]
            spairs = [(rng.randint(0, 2), rng.randint(0, 2))
                      for _ in range(rng.randint(1, 3))]
            db = build_gadget_instance(self.gadget, pairs, spairs)
            pk_only = certainty_primary_keys(self.q, db)
            with_fks = certain_answer(self.q, fks, db).certain
            assert pk_only == with_fks, (pairs, spairs, db.pretty())

    def test_equivalence_with_subset_of_fks(self, rng):
        fks = fk_set(self.q, "R[2]->S")
        for _ in range(40):
            pairs = [(rng.randint(0, 1), rng.randint(0, 1))]
            spairs = [(rng.randint(0, 1), rng.randint(0, 1))]
            db = build_gadget_instance(self.gadget, pairs, spairs)
            assert certainty_primary_keys(self.q, db) == certain_answer(
                self.q, fks, db
            ).certain
