"""Tests for instance serialization and the command-line interface."""

import pytest

from repro.cli import main
from repro.db import DatabaseInstance, Fact
from repro.db.io import dump, dumps, load, loads
from repro.exceptions import QueryError
from repro.workloads import fig1_instance

FIG1_ARGS = [
    "-a", "DOCS(x | t, '2016')",
    "-a", "R(x, y |)",
    "-a", "AUTHORS(y | 'Jeff', z)",
    "-k", "R[1]->DOCS",
    "-k", "R[2]->AUTHORS",
]


@pytest.fixture
def fig1_file(tmp_path):
    path = tmp_path / "fig1.db"
    dump(fig1_instance(), path)
    return str(path)


class TestIo:
    def test_roundtrip(self):
        db = fig1_instance()
        assert loads(dumps(db)) == db

    def test_comments_and_blank_lines(self):
        text = "# header\n\nR(1 | 2)  # trailing\n"
        db = loads(text)
        assert db.facts == {Fact("R", (1, 2), 1)}

    def test_non_ground_rejected(self):
        with pytest.raises(QueryError):
            loads("R(x | 2)")

    def test_unserializable_value(self):
        db = DatabaseInstance([Fact("R", ((1, 2),), 1)])
        with pytest.raises(QueryError):
            dumps(db)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "db.txt"
        dump(fig1_instance(), path)
        assert load(path) == fig1_instance()

    def test_empty_instance(self):
        assert dumps(DatabaseInstance()) == ""
        assert loads("") == DatabaseInstance()


class TestCli:
    def test_classify_fo(self, capsys):
        rc = main(["classify", "-a", "R(x | y)", "-a", "S(y | z)",
                   "-k", "R[2]->S"])
        assert rc == 0
        assert "in FO" in capsys.readouterr().out

    def test_classify_hard_exit_code(self, capsys):
        rc = main(["classify", "-a", "N(x | 'c', y)", "-a", "O(y |)",
                   "-k", "N[3]->O"])
        assert rc == 1
        assert "NL-hard" in capsys.readouterr().out

    def test_rewrite_prints_formula(self, capsys):
        rc = main(["rewrite", "--trace", "-a", "N('c' | y)", "-a", "O(y |)",
                   "-a", "P(y |)", "-k", "N[2]->O"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "∃" in out and "∀" in out and "Lemma 45" in out

    def test_rewrite_hard_fails(self, capsys):
        rc = main(["rewrite", "-a", "N(x | 'c', y)", "-a", "O(y |)",
                   "-k", "N[3]->O"])
        assert rc == 1

    def test_decide_fig1(self, capsys, fig1_file):
        rc = main(["decide", *FIG1_ARGS, fig1_file])
        assert rc == 1  # the certain answer is "no"
        assert "certain: False" in capsys.readouterr().out

    def test_decide_routes_prop17_to_dual_horn(self, capsys, tmp_path):
        path = tmp_path / "chain.db"
        path.write_text("N('b1' | 'c', 1)\nO(1 |)\n")
        rc = main(["decide", "-a", "N(x | 'c', y)", "-a", "O(y |)",
                   "-k", "N[3]->O", str(path)])
        out = capsys.readouterr().out
        assert "dual-Horn" in out  # the Proposition 17 polynomial island
        assert rc == 0  # trapped block: certain

    def test_decide_oracle_fallback(self, capsys, tmp_path):
        # L-hard, no polynomial island: the exact ⊕-repair oracle decides
        path = tmp_path / "cycle.db"
        path.write_text("R(1 | 1)\nS(1 | 1)\n")
        rc = main(["decide", "-a", "R(x | y)", "-a", "S(y | x)",
                   "-k", "R[2]->S", "-k", "S[2]->R", str(path)])
        out = capsys.readouterr().out
        assert "oracle" in out
        assert rc == 0  # the consistent singleton loop satisfies q

    def test_repairs_listing(self, capsys, tmp_path):
        path = tmp_path / "ex4.db"
        path.write_text("R('a' | 'b')\nS('b' | 'c')\n")
        rc = main(["repairs", "-a", "R(x | y)", "-a", "S(y | z)",
                   "-a", "T(z |)", "-k", "R[2]->S", "-k", "S[2]->T",
                   str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("--- repair") == 3

    def test_violations(self, capsys, fig1_file):
        rc = main(["violations", *FIG1_ARGS, fig1_file])
        assert rc == 1
        out = capsys.readouterr().out
        assert "primary-key violation" in out and "dangling" in out

    def test_not_about_is_reported(self, capsys):
        rc = main(["classify", "-a", "E(x | y)", "-k", "E[2]->E"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestInstanceJsonCli:
    def test_export_import_round_trip(self, fig1_file, tmp_path, capsys):
        json_path = tmp_path / "fig1.json"
        rc = main(["instance", "export", fig1_file, "-o", str(json_path)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out

        rc = main(["instance", "import", str(json_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "facts:" in out and "primary keys:" in out

        text_path = tmp_path / "back.db"
        rc = main(["instance", "import", str(json_path), "-o", str(text_path)])
        assert rc == 0
        capsys.readouterr()
        assert load(text_path) == fig1_instance()

    def test_export_to_stdout_is_valid_json(self, fig1_file, capsys):
        import json as json_module

        from repro.db import io as db_io

        rc = main(["instance", "export", fig1_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert db_io.from_dict(json_module.loads(out)) == fig1_instance()

    def test_import_rejects_malformed_document(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "wrong"}')
        rc = main(["instance", "import", str(path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
