"""Tests for the generic Lemma 15 construction (Appendix D.2)."""

import random

import pytest

from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query
from repro.exceptions import QueryError
from repro.hardness import DiGraph, generic_reduction, random_dag
from repro.repairs import certain_answer
from repro.solvers import certain_by_dual_horn

PROBLEMS = [
    ("example10-3a", ["N(x | 'c', y)", "O(y |)"], ["N[3]->O"], "3a"),
    ("example11-3b", ["Np(x | y)", "O(y |)", "T(x | y)"], ["Np[2]->O"], "3b"),
    ("prop16-3b", ["N(x | x)", "O(x |)"], ["N[2]->O"], "3b"),
    ("example13-q2-3a", ["N(x | 'c', y)", "O(y | w)"], ["N[3]->O"], "3a"),
]


class TestConstruction:
    @pytest.mark.parametrize(
        "label,atoms,fk_texts,via", PROBLEMS, ids=[p[0] for p in PROBLEMS]
    )
    def test_witness_case(self, label, atoms, fk_texts, via):
        q = parse_query(*atoms)
        fks = fk_set(q, *fk_texts)
        reduction = generic_reduction(q, fks)
        assert reduction.witness.via == via

    def test_requires_interference(self):
        q = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q, "R[2]->S")
        with pytest.raises(QueryError):
            generic_reduction(q, fks)

    def test_instance_contains_seed_o_fact(self):
        q = parse_query("N(x | 'c', y)", "O(y |)")
        fks = fk_set(q, "N[3]->O")
        reduction = generic_reduction(q, fks)
        g = DiGraph.from_edges([("s", "t")], vertices=["s", "t"])
        db = reduction.build(g, "s", "t")
        o_facts = db.relation_facts("O")
        # only the source's O-fact is seeded
        assert len(o_facts) == 1

    def test_one_edge_fact_per_edge(self):
        q = parse_query("N(x | 'c', y)", "O(y |)")
        fks = fk_set(q, "N[3]->O")
        reduction = generic_reduction(q, fks)
        g = DiGraph.from_edges([("s", "a"), ("a", "t")],
                               vertices=["s", "a", "t"])
        db = reduction.build(g, "s", "t")
        # per vertex one satisfying N-fact + per edge (incl. t→s) one more
        assert len(db.relation_facts("N")) == 3 + 3


class TestAnswerPreservation:
    @pytest.mark.parametrize(
        "label,atoms,fk_texts,via", PROBLEMS, ids=[p[0] for p in PROBLEMS]
    )
    def test_against_oracle_on_random_dags(self, label, atoms, fk_texts, via):
        q = parse_query(*atoms)
        fks = fk_set(q, *fk_texts)
        reduction = generic_reduction(q, fks)
        rng = random.Random(hash(label) & 0xFFFF)
        checked = 0
        while checked < 15:
            g = random_dag(rng.randint(2, 4), 0.4, rng)
            vertices = g.vertices
            s, t = rng.choice(vertices), rng.choice(vertices)
            if s == t:
                continue
            db = reduction.build(g, s, t)
            expected = g.reaches(s, t)
            no_instance = not certain_answer(q, fks, db).certain
            assert expected == no_instance, (g.edges, s, t)
            checked += 1

    def test_fig3_special_case_agrees_with_concrete_reduction(self):
        """On the Fig. 3 problem, the generic construction and the concrete
        one decide reachability identically (through the P-time solver)."""
        q = parse_query("N(x | 'c', y)", "O(y |)")
        fks = fk_set(q, "N[3]->O")
        reduction = generic_reduction(q, fks)
        rng = random.Random(44)
        for _ in range(30):
            g = random_dag(rng.randint(2, 6), 0.35, rng)
            vertices = g.vertices
            s, t = rng.choice(vertices), rng.choice(vertices)
            if s == t:
                continue
            db = reduction.build(g, s, t)
            via_generic = not certain_by_dual_horn(db, "c")
            assert via_generic == g.reaches(s, t), (g.edges, s, t)
