"""Tests for canonical problem classes: renaming-isomorphism fingerprints,
class-keyed plan sharing, instance transport, the recognize pipeline, the
SQL dialect seam, and the Prometheus stats exposition."""

import random
import string

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.api import Problem, connect, prepare
from repro.cli import main
from repro.engine import (
    Backend,
    BackendRegistry,
    BackendSpec,
    CertaintyEngine,
    EngineConfig,
    Recognition,
    canonical_atoms,
    canonicalize,
    duckdb_backend_spec,
    problem_fingerprint,
    raw_encoding,
    register_builtin_backends,
    rename_instance,
    rename_problem,
)
from repro.engine.canonical import atom_shape_key, is_canonical_relation_name
from repro.exceptions import BackendRegistryError
from repro.repairs import certain_answer
from repro.workloads import (
    ProblemShape,
    RandomInstanceParams,
    paper_catalog,
    random_instances_for_query,
    random_problem,
)

SMALL = RandomInstanceParams(
    blocks_per_relation=2, max_block_size=2, domain_size=4
)


def _twin_mapping(problem: Problem, seed: int) -> dict[str, str]:
    """A deterministic, injective relation renaming for *problem*."""
    rng = random.Random(seed)
    relations = sorted(problem.query.relations)
    letters = rng.sample(string.ascii_uppercase, len(relations))
    return {
        relation: f"{letter}{rng.randrange(100)}x"
        for relation, letter in zip(relations, letters)
    }


def _twin(problem: Problem, seed: int = 0):
    mapping = _twin_mapping(problem, seed)
    return rename_problem(problem, mapping), mapping


def _instances(problem: Problem, count: int = 2, seed: int = 0):
    return list(
        random_instances_for_query(
            problem.query, problem.fks, count, seed=seed, params=SMALL
        )
    )


class TestClassFingerprint:
    @pytest.mark.parametrize(
        "entry", paper_catalog(), ids=lambda e: e.label
    )
    def test_catalog_twins_share_class_fingerprint(self, entry):
        problem = Problem(entry.query, entry.fks)
        twin, _ = _twin(problem, seed=hash(entry.label) % 1000)
        assert twin.fingerprint.digest == problem.fingerprint.digest
        assert twin.fingerprint.text == problem.fingerprint.text
        assert twin.fingerprint.raw != problem.fingerprint.raw

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(problem_seed=st.integers(0, 10_000), rename_seed=st.integers(0, 100))
    def test_random_twins_share_class_fingerprint(
        self, problem_seed, rename_seed
    ):
        query, fks = random_problem(
            ProblemShape(n_atoms=3), random.Random(problem_seed)
        )
        problem = Problem(query, fks)
        twin, mapping = _twin(problem, seed=rename_seed)
        assert twin.fingerprint.digest == problem.fingerprint.digest
        # and the recorded renaming really inverts
        form = problem.canonical
        assert {form.inverse[new]: new
                for old, new in form.relation_renaming.items()
                for new in [form.relation_renaming[old]]} \
            == form.relation_renaming

    def test_distinct_classes_keep_distinct_digests(self):
        base = Problem.of("R(x | 'c', y)", "S(y |)", fks=["R[3]->S"])
        other_constant = Problem.of("R(x | 'd', y)", "S(y |)", fks=["R[3]->S"])
        no_fk = Problem.of("R(x | 'c', y)", "S(y |)")
        diagonal = Problem.of("R(x | 'c', x)", "S(x |)", fks=["R[3]->S"])
        digests = {
            p.fingerprint.digest
            for p in (base, other_constant, no_fk, diagonal)
        }
        assert len(digests) == 4

    def test_canonicalization_is_idempotent(self):
        problem = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
        form = canonicalize(problem)
        again = canonicalize(form.problem)
        assert again.fingerprint.text == form.fingerprint.text
        assert again.fingerprint.digest == form.fingerprint.digest
        assert all(
            is_canonical_relation_name(r)
            for r in form.problem.query.relations
        )

    def test_raw_digest_matches_historical_format(self):
        # the raw half must stay byte-identical to the pre-class format:
        # atoms sorted by relation name, variables alpha-renamed
        problem = Problem.of("S(y | z)", "R(x | y)", fks=["R[2]->S"])
        assert problem.fingerprint.raw_text == \
            "R(v0|v1) ∧ S(v1|v2) ## R[2]->S"
        assert raw_encoding(problem.query, problem.fks) == \
            problem.fingerprint.raw_text

    def test_canonical_atom_order_is_renaming_invariant(self):
        problem = Problem.of("Zz(x | y)", "Aa(y | z, 'c')")
        twin, mapping = _twin(problem, seed=4)
        shapes = [atom_shape_key(a) for a in canonical_atoms(problem.query)]
        twin_shapes = [
            atom_shape_key(a) for a in canonical_atoms(twin.query)
        ]
        assert shapes == twin_shapes  # same shape sequence, any spelling


class TestClassKeyedPlanSharing:
    @pytest.mark.parametrize(
        "entry", paper_catalog(), ids=lambda e: e.label
    )
    def test_catalog_twin_hits_shared_plan_and_oracle_agrees(self, entry):
        problem = Problem(entry.query, entry.fks)
        twin, mapping = _twin(problem, seed=len(entry.label))
        dbs = _instances(problem, count=2, seed=7)
        twin_dbs = [rename_instance(db, mapping) for db in dbs]
        engine = CertaintyEngine()
        for db, twin_db in zip(dbs, twin_dbs):
            expected = certain_answer(
                problem.query, problem.fks, db
            ).certain
            assert engine.decide(problem, db) == expected
            assert engine.decide(twin, twin_db) == expected
        stats = engine.stats()
        # one plan for the pair, and the twin's lookups all hit it
        assert stats.cache.size == 1
        assert stats.cache.misses == 1
        assert stats.cache.hits >= 1
        assert stats.plans[0].spellings == 2
        engine.close()

    def test_sql_backend_shares_one_warm_connection_across_twins(self):
        problem = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
        twin, mapping = _twin(problem, seed=9)
        dbs = _instances(problem, count=4, seed=3)
        with connect(fo_backend="sql") as session:
            session.decide_batch(problem, dbs)
            solver = session.prepare(problem).solver
            session.decide_batch(
                twin, [rename_instance(db, mapping) for db in dbs]
            )
            assert session.prepare(twin).solver is solver
            assert solver.connections_opened == 1

    def test_islands_route_up_to_renaming(self):
        engine = CertaintyEngine()
        p16 = rename_problem(
            Problem.of("N(x | x)", "O(x |)", fks=["N[2]->O"]),
            {"N": "Edge", "O": "Marked"},
        )
        assert engine.plan_for(p16).backend == Backend.REACHABILITY.value
        p17 = rename_problem(
            Problem.of("N(x | 'c', y)", "O(y |)", fks=["N[3]->O"]),
            {"N": "Zeta", "O": "Alpha"},
        )
        plan = engine.plan_for(p17)
        assert plan.backend == Backend.DUAL_HORN.value
        assert plan.solver.constant == "c"
        # evidence names the spelling that routed, not canonical names
        assert "Zeta" in plan.recognition.evidence
        engine.close()

    def test_renamed_prop16_agrees_with_oracle(self):
        from repro.workloads import proposition16_instance

        base = Problem.of("N(x | x)", "O(x |)", fks=["N[2]->O"])
        twin = rename_problem(base, {"N": "E", "O": "M"})
        engine = CertaintyEngine()
        rng = random.Random(11)
        for _ in range(10):
            db = proposition16_instance(4, rng, marked_fraction=0.5)
            expected = certain_answer(base.query, base.fks, db).certain
            twin_db = rename_instance(db, {"N": "E", "O": "M"})
            assert engine.decide(twin, twin_db) == expected
        engine.close()


class TestTransport:
    def test_transport_keeps_unmapped_relations(self):
        problem = Problem.of("R(x | y)")
        form = problem.canonical
        db = next(iter(_instances(problem, 1, seed=1)))
        from repro.db.facts import Fact

        extra = db.union([Fact("Unrelated", ("a", "b"), 1)])
        moved = form.transport_instance(extra)
        assert "Unrelated" in moved.relations
        assert "R" not in moved.relations
        # double transport is the identity on canonical instances
        assert form.transport_instance(moved) == moved

    def test_prepare_returns_transporting_solver(self):
        problem = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
        twin, mapping = _twin(problem, seed=2)
        dbs = _instances(problem, count=3, seed=5)
        with prepare(problem) as base_solver, prepare(twin) as twin_solver:
            for db in dbs:
                expected = certain_answer(
                    problem.query, problem.fks, db
                ).certain
                assert base_solver.decide(db) == expected
                assert twin_solver.decide(
                    rename_instance(db, mapping)
                ) == expected

    def test_decisions_carry_both_fingerprints(self):
        problem = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
        twin, mapping = _twin(problem, seed=3)
        (db,) = _instances(problem, 1, seed=2)
        with connect() as session:
            first = session.decide(problem, db)
            second = session.decide(twin, rename_instance(db, mapping))
        assert first.fingerprint == second.fingerprint
        assert first.raw_fingerprint == problem.fingerprint.raw
        assert second.raw_fingerprint == twin.fingerprint.raw
        assert first.raw_fingerprint != second.raw_fingerprint
        assert second.cache_hit is True
        data = second.to_dict()
        assert data["raw_fingerprint"] == twin.fingerprint.raw


class TestServeLoopbackTwins:
    def test_catalog_twins_through_the_wire(self):
        from repro.serve import BackgroundServer, ServeClient, ServerConfig

        entries = paper_catalog()
        with BackgroundServer(
            ServerConfig(shards=2, linger_ms=2)
        ) as background:
            host, port = background.address
            with ServeClient(host, port) as client, connect() as session:
                for entry in entries:
                    problem = Problem(entry.query, entry.fks)
                    twin, mapping = _twin(problem, seed=1)
                    (db,) = _instances(problem, 1, seed=13)
                    local = session.decide(problem, db)
                    remote = client.decide(problem, db)
                    remote_twin = client.decide(
                        twin, rename_instance(db, mapping)
                    )
                    assert remote.certain == local.certain
                    assert remote_twin.certain == local.certain
                    assert remote.fingerprint == remote_twin.fingerprint \
                        == problem.fingerprint.digest
                    assert remote_twin.raw_fingerprint == \
                        twin.fingerprint.raw
                    # the twin rode the plan its sibling compiled
                    assert remote_twin.cache_hit is True
                text = client.metrics()
        assert "repro_class_spellings" in text
        assert 'shard="0"' in text and 'shard="1"' in text
        # a valid exposition: HELP/TYPE once per family even multi-shard
        help_lines = [
            line for line in text.splitlines() if line.startswith("# HELP")
        ]
        assert len(help_lines) == len(set(help_lines))


class TestRecognizePipeline:
    def test_spec_requires_recognizer_or_legacy_pair(self):
        with pytest.raises(BackendRegistryError):
            BackendSpec(name="hollow")
        BackendSpec(name="legacy", supports=lambda c, o: True,
                    factory=lambda c, o: None)
        BackendSpec(name="modern", recognize=lambda f, o: None)

    def test_registry_fills_recognition_metadata(self):
        registry = register_builtin_backends(BackendRegistry())
        problem = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
        from repro.engine import RouteOptions

        recognition = registry.recognize(
            problem.canonical, RouteOptions()
        )
        assert recognition.backend == Backend.FO_REWRITING.value
        assert recognition.priority == 100
        assert recognition.polynomial is True
        assert recognition.evidence

    def test_legacy_predicate_specs_still_route(self):
        from repro.engine import RouteOptions, default_registry

        built = []

        class StubSolver:
            name = "stub"

            def decide(self, db):
                return True

            def close(self):
                pass

        registry = default_registry().copy()
        registry.register(BackendSpec(
            name="legacy-always-yes",
            priority=999,
            supports=lambda classification, options: True,
            factory=lambda classification, options: (
                built.append(classification) or StubSolver()
            ),
        ))
        problem = Problem.of("R(x | y)")
        recognition = registry.recognize(problem.canonical, RouteOptions())
        assert recognition.backend == "legacy-always-yes"
        from repro.db.facts import Fact
        from repro.db.instance import DatabaseInstance

        solver = recognition.factory()
        assert solver.decide(
            DatabaseInstance([Fact("R", ("a", "b"), 1)])
        ) is True
        # the shimmed callables see the *request's* spelling, so legacy
        # predicates matching literal relation names keep working
        assert built and built[0].query.relations == frozenset({"R"})

    def test_name_sensitive_legacy_predicate_still_matches(self):
        from repro.db.facts import Fact
        from repro.db.instance import DatabaseInstance
        from repro.engine import default_registry

        built = []

        class EchoSolver:
            name = "echo"

            def __init__(self, relations):
                self.relations = relations

            def decide(self, db):
                # the instance must arrive spelled like the problem the
                # legacy factory was given
                assert db.relations <= self.relations
                return True

            def close(self):
                pass

        registry = default_registry().copy()
        registry.register(BackendSpec(
            name="orders-only",
            priority=999,
            supports=lambda c, o: c.query.has_relation("Orders"),
            factory=lambda c, o: (
                built.append(c) or EchoSolver(c.query.relations)
            ),
        ))
        orders = Problem.of("Orders(x | y)")
        other = Problem.of("R(x | y)")  # same class, different spelling
        engine = CertaintyEngine(EngineConfig(registry=registry))
        db = DatabaseInstance([Fact("Orders", ("a", "b"), 1)])
        assert engine.decide(orders, db) is True
        assert engine.plan_for(orders).backend == "orders-only"
        # the documented caveat: the twin rides the class-shared plan the
        # first spelling compiled, name-sensitive predicate or not
        assert engine.plan_for(other).backend == "orders-only"
        engine.close()
        # ... but a fresh engine routes the other spelling past it
        fresh = CertaintyEngine(EngineConfig(registry=registry))
        assert fresh.plan_for(other).backend != "orders-only"
        fresh.close()

    def test_custom_recognizer_sees_canonical_form(self):
        seen = []

        def recognize(form, options):
            seen.append(form)
            return None

        registry = CertaintyEngine(
            EngineConfig(
                registry=register_builtin_backends(BackendRegistry())
            )
        )
        registry.config.registry.register(
            BackendSpec(name="observer", priority=10_000,
                        recognize=recognize)
        )
        problem = Problem.of("Whatever(x | y)")
        registry.plan_for(problem)
        assert seen and seen[0].fingerprint.digest == \
            problem.fingerprint.digest
        registry.close()


class TestLegacySeams:
    """Regressions for the pre-redesign entry points: they must keep
    answering raw-spelling instances even though solvers are now built
    against the canonical spelling."""

    def test_select_backend_solver_accepts_raw_spelling(self):
        from repro.core.classify import classify
        from repro.db.facts import Fact
        from repro.db.instance import DatabaseInstance
        from repro.engine import select_backend

        problem = Problem.of("R(x | y)")
        db = DatabaseInstance([Fact("R", ("a", "b"), 1)])
        spec, solver = select_backend(classify(problem.query, problem.fks))
        assert spec.name == Backend.FO_REWRITING.value
        assert solver.decide(db) is True  # consistent instance: certain

    def test_registry_select_synthesizes_legacy_callables(self):
        from repro.core.classify import classify
        from repro.db.facts import Fact
        from repro.db.instance import DatabaseInstance
        from repro.engine import RouteOptions, default_registry

        problem = Problem.of("R(x | y)")
        classification = classify(problem.query, problem.fks)
        options = RouteOptions()
        spec = default_registry().select(classification, options)
        assert spec.supports(classification, options) is True
        solver = spec.factory(classification, options)
        db = DatabaseInstance([Fact("R", ("a", "b"), 1)])
        assert solver.decide(db) is True
        solver.close()

    def test_prepare_rejects_unavailable_duckdb(self):
        try:
            import duckdb  # noqa: F401

            pytest.skip("duckdb installed: the gate is open")
        except ImportError:
            pass
        with pytest.raises(ValueError, match="duckdb"):
            prepare(Problem.of("R(x | y)"), fo_backend="duckdb")

    def test_micro_batched_twin_with_stray_colliding_relation(self):
        # a twin's instance may contain a stray relation literally named
        # like the batch opener's raw spelling; sharing the micro-batch
        # must not re-apply the opener's renaming to it
        import asyncio

        from repro.db.facts import Fact
        from repro.db.instance import DatabaseInstance
        from repro.serve import BackgroundServer, ServerConfig
        from repro.serve.client import AsyncServeClient

        base = Problem.of("R(x | y)")
        twin = rename_problem(base, {"R": "Orders"})
        base_db = DatabaseInstance([Fact("R", ("a", "b"), 1)])
        stray_db = DatabaseInstance([Fact("R", ("zz", "ww"), 1)])
        # for the twin, "R" is noise and Orders is empty: certain is False
        with BackgroundServer(
            ServerConfig(shards=1, linger_ms=200, max_batch=64)
        ) as background:
            host, port = background.address

            async def burst():
                async with await AsyncServeClient.connect(
                    host, port
                ) as client:
                    return await asyncio.gather(
                        client.decide(base, base_db),
                        client.decide(twin, stray_db),
                    )

            for_base, for_twin = asyncio.run(burst())
        assert for_base["micro_batch"] == for_twin["micro_batch"] == 2
        assert for_base["decision"]["certain"] is True
        assert for_twin["decision"]["certain"] is False

    def test_plan_for_twin_binds_the_request_spelling(self):
        # the shared plan's *default* transport must follow the request:
        # plan_for(twin).decide(twin_db) has to answer correctly even
        # though the plan was compiled from the base spelling
        from repro.db.facts import Fact
        from repro.db.instance import DatabaseInstance

        base = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
        twin = rename_problem(base, {"R": "Orders", "S": "Customers"})
        db = DatabaseInstance(
            [Fact("R", ("k", "v"), 1), Fact("S", ("v", "t"), 1)]
        )
        twin_db = rename_instance(db, {"R": "Orders", "S": "Customers"})
        engine = CertaintyEngine()
        assert engine.decide(base, db) is True
        twin_plan = engine.plan_for(twin)
        assert twin_plan.decide(twin_db) is True
        assert engine.run_batch(twin_plan, [twin_db]).answers == (True,)
        # the view's provenance follows the request: twin raw, shared class
        assert twin_plan.fingerprint.raw == twin.fingerprint.raw
        assert twin_plan.fingerprint.digest == base.fingerprint.digest
        # same solver and metrics underneath; same-spelling lookups keep
        # returning the identical cached object
        assert twin_plan.solver is engine.plan_for(base).solver
        assert engine.plan_for(base) is engine.plan_for(base)
        engine.close()

    def test_symmetric_tie_groups_stay_bounded(self):
        # two symmetric 6-atom colour groups: the least-encoding search
        # must bound the *product* of permutations, not stall for minutes
        import time

        atoms = [f"A{i}(x{i} | y{i})" for i in range(6)] + [
            f"B{i}(u{i}, w{i} | z{i})" for i in range(6)
        ]
        start = time.perf_counter()
        Problem.of(*atoms).fingerprint
        assert time.perf_counter() - start < 5.0

    def test_transporting_solver_pickles_without_recursion(self):
        import pickle

        from repro.engine.canonical import TransportingSolver
        from repro.solvers.reachability import ReachabilitySolver

        p16 = Problem.of("N(x | x)", "O(x |)", fks=["N[2]->O"])
        solver = TransportingSolver(ReachabilitySolver(), p16.canonical)
        clone = pickle.loads(pickle.dumps(solver))
        assert clone.name == "nl-reachability"

    def test_identity_transport_returns_same_instance(self):
        problem = Problem.of("R(x | y)")
        form = problem.canonical
        (db,) = _instances(problem, 1, seed=1)
        canonical_db = form.transport_instance(db)
        again = canonicalize(form.problem)
        assert again.transport_instance(canonical_db) is canonical_db

    def test_reserved_alphabet_facts_cannot_reach_query_relations(self):
        # a wire instance can spell any relation name, including the
        # reserved canonical alphabet; transport must drop such facts
        # instead of merging them into the renamed query relations
        from repro.db.facts import Fact
        from repro.db.instance import DatabaseInstance

        problem = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
        db = DatabaseInstance([Fact("R", ("a", "b"), 1)])
        engine = CertaintyEngine()
        baseline = engine.decide(problem, db)
        assert baseline is False  # no S facts: not certain
        smuggled = db.union(
            [Fact("~0", ("b", "c"), 1), Fact("~1", ("a", "b"), 1)]
        )
        assert engine.decide(problem, smuggled) is False
        # and the serve path (decode → transport → micro-batch) agrees
        from repro.serve import BackgroundServer, ServeClient, ServerConfig

        with BackgroundServer(
            ServerConfig(shards=1, linger_ms=1)
        ) as background:
            host, port = background.address
            with ServeClient(host, port) as client:
                assert client.decide(problem, smuggled).certain is False
        engine.close()

    def test_canonical_problem_self_form_is_preseeded(self):
        problem = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
        canonical = problem.canonical.problem
        assert "canonical" in canonical.__dict__  # no second search
        self_form = canonical.canonical
        assert self_form.problem is canonical
        assert all(
            old == new
            for old, new in self_form.relation_renaming.items()
        )

    def test_spelling_counter_saturates(self):
        from repro.engine import CertaintyPlan

        engine = CertaintyEngine()
        plan = engine.plan_for(Problem.of("R(x | y)"))
        cap = CertaintyPlan.MAX_TRACKED_SPELLINGS
        for index in range(cap + 50):
            plan.note_spelling(f"digest-{index}")
        assert plan.spellings == cap
        engine.close()


class TestSqlDialectSeam:
    def test_duckdb_gates_cleanly_when_absent(self):
        try:
            import duckdb  # noqa: F401

            pytest.skip("duckdb installed: the gate is open")
        except ImportError:
            pass
        from repro.solvers.rewriting_solver import duckdb_dialect

        assert duckdb_dialect() is None
        assert duckdb_backend_spec() is None
        with pytest.raises(ValueError, match="duckdb"):
            EngineConfig(fo_backend="duckdb")

    def test_duckdb_spec_registers_when_present(self):
        duckdb = pytest.importorskip("duckdb")
        assert duckdb is not None
        spec = duckdb_backend_spec()
        assert spec is not None and spec.name == Backend.FO_DUCKDB.value
        problem = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
        engine = CertaintyEngine(EngineConfig(fo_backend="duckdb"))
        (db,) = _instances(problem, 1, seed=4)
        expected = certain_answer(problem.query, problem.fks, db).certain
        assert engine.decide(problem, db) == expected
        assert engine.plan_for(problem).backend == Backend.FO_DUCKDB.value
        engine.close()

    def test_strict_dialect_roundtrip_on_sqlite(self):
        # exercise the dialect seam (typed columns + value encoding)
        # without duckdb: a strict SQLite dialect must agree with the
        # default dynamic-typed one on every instance
        from repro.solvers.rewriting_solver import (
            SqlDialect,
            SqlRewritingSolver,
            _connect_sqlite,
            _duckdb_encode,
        )

        strict = SqlDialect(
            name="sqlite-strict",
            connect=_connect_sqlite,
            column_type="TEXT",
            value_encoder=_duckdb_encode,
        )
        problem = Problem.of(
            "DOCS(x | t, 1)", "R(x, y |)", "AUTHORS(y | 'Jeff', z)",
            fks=["R[1]->DOCS", "R[2]->AUTHORS"],
        )  # intro-q0 with an int constant: FO, mixed value types
        dbs = _instances(problem, count=6, seed=8)
        with SqlRewritingSolver(problem.query, problem.fks) as plain, \
                SqlRewritingSolver(
                    problem.query, problem.fks, dialect=strict
                ) as tagged:
            assert [plain.decide(db) for db in dbs] \
                == [tagged.decide(db) for db in dbs]

    def test_value_encoder_keeps_int_and_string_apart(self):
        from repro.exceptions import EvaluationError
        from repro.solvers.rewriting_solver import _duckdb_encode

        assert _duckdb_encode(7) != _duckdb_encode("7")
        assert _duckdb_encode("i:7") != _duckdb_encode(7)
        # the encoder is injective because it is *strict*: values outside
        # the str/int wire domain are rejected, not stringified
        for bad in (1.5, None, True):
            with pytest.raises(EvaluationError):
                _duckdb_encode(bad)


class TestPromExposition:
    def test_engine_stats_to_prom_shape(self):
        problem = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
        engine = CertaintyEngine()
        (db,) = _instances(problem, 1, seed=6)
        engine.decide(problem, db)
        twin, mapping = _twin(problem, seed=6)
        engine.decide(twin, rename_instance(db, mapping))
        text = engine.stats().to_prom(labels={"shard": "3"})
        assert "# TYPE repro_plan_cache_hits_total counter" in text
        assert 'repro_plan_cache_hits_total{shard="3"} 1' in text
        assert 'repro_class_spellings{' in text and "} 2" in text
        assert 'le="+Inf"' in text
        # bucket counts are cumulative and end at the evaluation count
        assert 'repro_backend_latency_seconds_count{' in text
        engine.close()

    def test_cli_stats_prom_format(self, tmp_path, capsys):
        from repro.db.io import dump
        from repro.workloads import fig1_instance

        path = tmp_path / "fig1.db"
        dump(fig1_instance(), path)
        code = main([
            "engine",
            "-a", "DOCS(x | t, '2016')",
            "-a", "R(x, y |)",
            "-a", "AUTHORS(y | 'Jeff', z)",
            "-k", "R[1]->DOCS",
            "-k", "R[2]->AUTHORS",
            str(path), "--stats", "--format", "prom",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "repro_backend_evaluations_total" in out
        assert 'backend="fo-rewriting"' in out

    def test_cli_classify_canonical_flag(self, capsys):
        main(["classify", "-a", "N(x | x)", "-a", "O(x |)",
              "-k", "N[2]->O", "--canonical"])
        first = capsys.readouterr().out
        main(["classify", "-a", "Edge(u | u)", "-a", "Mark(u |)",
              "-k", "Edge[2]->Mark", "--canonical"])
        second = capsys.readouterr().out

        def field(out, key):
            (line,) = [
                l for l in out.splitlines() if l.startswith(key)
            ]
            return line.split(":", 1)[1].strip()

        assert field(first, "class") == field(second, "class")
        assert field(first, "canonical") == field(second, "canonical")
        assert field(first, "spelling") != field(second, "spelling")
