"""Hypothesis property tests on the core data structures and invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.fo import evaluate, simplify
from repro.repairs import (
    canonical_repairs,
    count_subset_repairs,
    is_subset_repair,
    subset_repairs,
    verify_repair,
)

values = st.sampled_from([0, 1, 2, "a", "c"])


def facts_strategy(relation: str, arity: int, key: int, max_facts: int = 4):
    fact = st.builds(
        lambda vs: Fact(relation, tuple(vs), key),
        st.lists(values, min_size=arity, max_size=arity),
    )
    return st.lists(fact, max_size=max_facts)


@st.composite
def rs_instance(draw):
    r = draw(facts_strategy("R", 2, 1))
    s = draw(facts_strategy("S", 2, 1, max_facts=3))
    return DatabaseInstance(r + s)


class TestInstanceProperties:
    @given(rs_instance())
    def test_symmetric_difference_identity(self, db):
        assert db.symmetric_difference(db) == frozenset()

    @given(rs_instance(), rs_instance())
    def test_symmetric_difference_commutes(self, a, b):
        assert a.symmetric_difference(b) == b.symmetric_difference(a)

    @given(rs_instance(), rs_instance(), rs_instance())
    def test_closeness_is_transitive(self, db, r, s):
        if db.closer_or_equal(r, s) and db.closer_or_equal(s, db):
            assert db.closer_or_equal(r, db)

    @given(rs_instance())
    def test_blocks_partition_facts(self, db):
        blocks = db.blocks()
        union = set()
        for block in blocks:
            assert not (union & block)
            union |= block
        assert union == set(db.facts)

    @given(rs_instance())
    def test_active_domain_covers_all_values(self, db):
        adom = db.active_domain()
        for fact in db.facts:
            assert set(fact.values) <= adom


class TestSubsetRepairProperties:
    @given(rs_instance())
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_every_enumerated_repair_verifies(self, db):
        repairs = list(subset_repairs(db))
        assert len(repairs) == count_subset_repairs(db)
        for repair in repairs:
            assert is_subset_repair(repair, db)

    @given(rs_instance())
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_repairs_are_distinct(self, db):
        repairs = list(subset_repairs(db))
        assert len({r.facts for r in repairs}) == len(repairs)


class TestCanonicalRepairProperties:
    @given(rs_instance())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_canonical_repairs_verify(self, db):
        q = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q, "R[2]->S")
        for repair in canonical_repairs(db, fks):
            assert verify_repair(db, repair, fks)

    @given(rs_instance())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_kept_parts_respect_primary_keys(self, db):
        q = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q, "R[2]->S")
        for repair in canonical_repairs(db, fks):
            assert not repair.violates_primary_keys()


class TestRewritingProperties:
    @given(rs_instance())
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_pk_rewriting_matches_brute_force(self, db):
        from repro.core.rewriting_pk import rewrite_primary_keys
        from repro.repairs import certainty_primary_keys

        q = parse_query("R(x | y)", "S(y | z)")
        formula = rewrite_primary_keys(q)
        assert evaluate(formula, db) == certainty_primary_keys(q, db)

    @given(rs_instance())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_full_rewriting_matches_oracle(self, db):
        from repro.core.rewriting import consistent_rewriting
        from repro.repairs import certain_answer

        q = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q, "R[2]->S")
        result = consistent_rewriting(q, fks)
        assert evaluate(result.formula, db) == certain_answer(
            q, fks, db
        ).certain

    @given(rs_instance())
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_simplify_preserves_rewriting_semantics(self, db):
        from repro.core.rewriting_pk import rewrite_primary_keys

        q = parse_query("R(x | y)", "S(y | z)")
        raw = rewrite_primary_keys(q)
        assert evaluate(raw, db) == evaluate(simplify(raw), db)


class TestDualHornProperties:
    clause = st.builds(
        lambda pos, neg: __import__(
            "repro.solvers.sat", fromlist=["Clause"]
        ).Clause(tuple(pos), neg),
        st.lists(st.integers(0, 4), max_size=3),
        st.one_of(st.none(), st.integers(0, 4)),
    )

    @given(st.lists(clause, max_size=6))
    @settings(max_examples=120)
    def test_solver_matches_brute_force(self, clauses):
        from repro.solvers import (
            DualHornFormula,
            brute_force_satisfiable,
            solve_dual_horn,
        )

        formula = DualHornFormula(clauses)
        assert (
            solve_dual_horn(formula).satisfiable
            == brute_force_satisfiable(formula)
        )

    @given(st.lists(clause, max_size=6))
    @settings(max_examples=120)
    def test_maximal_model_dominates_all_models(self, clauses):
        """Any satisfying assignment is pointwise below the solver's."""
        import itertools

        from repro.solvers import DualHornFormula, solve_dual_horn

        formula = DualHornFormula(clauses)
        result = solve_dual_horn(formula)
        if not result.satisfiable:
            return
        variables = sorted(formula.variables, key=repr)
        for bits in itertools.product([False, True], repeat=len(variables)):
            assignment = dict(zip(variables, bits))
            if formula.evaluate(assignment):
                for variable, value in assignment.items():
                    assert (not value) or result.assignment[variable]
