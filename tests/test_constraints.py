"""Unit tests for constraint checking and the chase-based containment."""

import pytest

from repro.core.foreign_keys import fk_set, parse_foreign_key
from repro.core.query import parse_query
from repro.db.constraints import (
    dangling_facts,
    dangling_keys_of,
    is_consistent,
    is_dangling,
    orphan_constants,
    satisfies_foreign_keys,
    violation_report,
)
from repro.db.containment import (
    canonical_instance,
    chase,
    chase_entails,
    equivalent_under,
)
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.exceptions import ForeignKeyError


def F(rel, *values, key=1):
    return Fact(rel, tuple(values), key)


def _fk_context():
    q = parse_query("R(x | y)", "S(y | z)")
    return q, fk_set(q, "R[2]->S")


class TestDangling:
    def test_dangling_detection(self):
        q, fks = _fk_context()
        (fk,) = fks.foreign_keys
        db = DatabaseInstance([F("R", 1, 2)])
        assert is_dangling(F("R", 1, 2), fk, db)
        db2 = db.union([F("S", 2, 0)])
        assert not is_dangling(F("R", 1, 2), fk, db2)

    def test_dangling_facts_set(self):
        q, fks = _fk_context()
        db = DatabaseInstance([F("R", 1, 2), F("R", 3, 4), F("S", 2, 0)])
        assert dangling_facts(db, fks) == {F("R", 3, 4)}

    def test_within_scope(self):
        q, fks = _fk_context()
        db = DatabaseInstance([F("R", 1, 2)])
        wider = DatabaseInstance([F("S", 2, 0)])
        assert dangling_facts(db, fks, within=db.union(wider)) == set()

    def test_consistency(self):
        q, fks = _fk_context()
        good = DatabaseInstance([F("R", 1, 2), F("S", 2, 0)])
        assert is_consistent(good, fks)
        assert satisfies_foreign_keys(good, fks)
        bad_pk = good.union([F("S", 2, 9)])
        assert not is_consistent(bad_pk, fks)

    def test_violation_report_mentions_both_kinds(self):
        q, fks = _fk_context()
        db = DatabaseInstance([F("R", 1, 2), F("R", 1, 3), F("S", 2, 0)])
        report = violation_report(db, fks)
        assert "primary-key violation" in report
        assert "dangling" in report
        assert violation_report(
            DatabaseInstance([F("R", 1, 2), F("S", 2, 0), F("S", 3, 1)]),
            fks,
        ) == "consistent"


class TestOrphanConstants:
    def test_orphans(self):
        db = DatabaseInstance([F("R", 1, 2), F("S", 2, 3)])
        # 2 occurs twice; 3 occurs once at a non-key position; 1 is a key.
        assert orphan_constants(db) == {3}

    def test_key_occurrence_disqualifies(self):
        db = DatabaseInstance([F("R", 5, 6)])
        assert orphan_constants(db) == {6}


class TestChaseContainment:
    def test_canonical_instance_freezes_variables(self):
        q = parse_query("R(x | 'c')")
        db = canonical_instance(q)
        assert db.size == 1
        (fact,) = db.facts
        assert fact.values == (("var", "x"), "c")

    def test_chase_terminates_on_acyclic(self):
        q, fks = _fk_context()
        start = DatabaseInstance([F("R", 1, 2)])
        result, complete = chase(start, fks, max_levels=5)
        assert complete
        assert satisfies_foreign_keys(result, fks)

    def test_paper_equivalence_example(self):
        """Section 3.2: {R(x)} ≡_FK {R(x), S(x)} for FK = {R[1]→S}."""
        q_long = parse_query("R(x |)", "S(x |)")
        fks = fk_set(q_long, "R[1]->S")
        q_short = parse_query("R(x |)")
        assert equivalent_under(q_short, q_long, fks)

    def test_non_entailment(self):
        q_long = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q_long)  # no foreign keys
        q_short = parse_query("R(x | y)")
        assert not chase_entails(q_short, fks, q_long)
        assert chase_entails(q_long, fks, q_short)

    def test_chase_bound_guard(self):
        q = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q, "R[2]->S", "S[2]->R")  # cyclic dependency graph
        start = DatabaseInstance([F("R", 1, 2)])
        result, complete = chase(start, fks, max_levels=3)
        assert not complete

    def test_parse_foreign_key_errors(self):
        with pytest.raises(ForeignKeyError):
            parse_foreign_key("R[->S")
