"""Tests for the Koutris–Wijsen rewriting (primary keys only)."""

import random

import pytest

from repro.core.query import parse_query
from repro.core.rewriting_pk import rewrite_primary_keys
from repro.core.terms import Parameter
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.exceptions import NotInFOError
from repro.fo import evaluate, simplify
from repro.repairs import certainty_primary_keys
from tests.conftest import random_db

QUERIES = [
    ["R(x | y)"],
    ["R(x | 'a')"],
    ["R(x | x)"],
    ["R(x | y, y)"],
    ["R(x | y)", "S(y | z)"],
    ["R(x | y)", "S(x | y)"],
    ["R('c' | y)", "P(y |)"],
    ["R(x, y | z)", "S(z | w)"],
    ["R(x | y)", "S(y | z)", "T(z | w)"],
    ["R(x | y, z)", "S(y | u)", "T(z | v)"],
    ["R('c' | y)", "S(y | 'd')"],
    ["R(x |)", "S(x | y)"],
]


class TestAgainstBruteForce:
    @pytest.mark.parametrize("atoms", QUERIES, ids=lambda a: "+".join(a))
    def test_random_instances(self, atoms):
        q = parse_query(*atoms)
        formula = rewrite_primary_keys(q)
        rng = random.Random(hash(tuple(atoms)) & 0xFFFF)
        for _ in range(120):
            db = random_db(q, rng, domain=(0, 1, "a", "c", "d"))
            expected = certainty_primary_keys(q, db)
            assert evaluate(formula, db) == expected, db.pretty()

    def test_simplified_formula_equivalent(self):
        q = parse_query("R(x | y)", "S(y | z)")
        raw = rewrite_primary_keys(q)
        reduced = simplify(raw)
        rng = random.Random(4)
        for _ in range(60):
            db = random_db(q, rng)
            assert evaluate(raw, db) == evaluate(reduced, db)


class TestStructure:
    def test_cyclic_raises(self):
        q = parse_query("R(x | y)", "S(y | x)")
        with pytest.raises(NotInFOError):
            rewrite_primary_keys(q)

    def test_empty_query_is_true(self):
        from repro.fo import TRUE

        assert rewrite_primary_keys(parse_query()) == TRUE

    def test_consistent_db_answers_like_plain_evaluation(self):
        """On a PK-consistent instance, certainty equals plain satisfaction."""
        from repro.db.matching import satisfies

        q = parse_query("R(x | y)", "S(y | z)")
        formula = rewrite_primary_keys(q)
        rng = random.Random(9)
        for _ in range(80):
            db = random_db(q, rng)
            consistent = DatabaseInstance(
                next(iter(sorted(block, key=repr)))
                for block in db.blocks()
            )
            assert evaluate(formula, consistent) == satisfies(q, consistent)

    def test_parameters_stay_free(self):
        q = parse_query("R($p | y)", "S(y | z)")
        formula = rewrite_primary_keys(q)
        assert Parameter("p") in formula.free_terms()

    def test_parameterized_evaluation(self):
        q = parse_query("R($p | y)", "S(y |)")
        formula = rewrite_primary_keys(q)
        db = DatabaseInstance(
            [Fact("R", (1, 2), 1), Fact("R", (3, 9), 1), Fact("S", (2,), 1)]
        )
        assert evaluate(formula, db, {Parameter("p"): 1})
        assert not evaluate(formula, db, {Parameter("p"): 3})

    def test_all_key_atom(self):
        q = parse_query("R(x, y |)")
        formula = rewrite_primary_keys(q)
        db = DatabaseInstance([Fact("R", (1, 2), 2)])
        assert evaluate(formula, db)
        assert not evaluate(formula, DatabaseInstance())


class TestSection8NoFkExample:
    """q = {R(c,y), P(y)}: the classical asymmetric ∃/∀ rewriting."""

    def test_yes_instance_sensitivity(self):
        q = parse_query("R('c' | y)", "P(y |)")
        formula = rewrite_primary_keys(q)
        db = DatabaseInstance(
            [
                Fact("R", ("c", "a"), 1),
                Fact("R", ("c", "b"), 1),
                Fact("P", ("a",), 1),
                Fact("P", ("b",), 1),
            ]
        )
        assert evaluate(formula, db)
        for dropped in ("a", "b"):
            smaller = db.difference([Fact("P", (dropped,), 1)])
            assert not evaluate(formula, smaller)
