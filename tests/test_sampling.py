"""Tests for randomized repair sampling."""

import random

from repro.core.query import parse_query
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.repairs import frequency_of_satisfaction, is_subset_repair
from repro.repairs.sampling import (
    FrequencyEstimate,
    estimate_satisfaction_frequency,
    sample_subset_repair,
)


def F(rel, *values, key=1):
    return Fact(rel, tuple(values), key)


class TestSampling:
    def test_samples_are_repairs(self):
        db = DatabaseInstance(
            [F("R", 1, 2), F("R", 1, 3), F("R", 2, 1), F("S", 1, 1)]
        )
        rng = random.Random(1)
        for _ in range(30):
            repair = sample_subset_repair(db, rng)
            assert is_subset_repair(repair, db)

    def test_uniformity_on_one_block(self):
        db = DatabaseInstance([F("R", 1, 2), F("R", 1, 3)])
        rng = random.Random(2)
        counts = {2: 0, 3: 0}
        for _ in range(600):
            repair = sample_subset_repair(db, rng)
            (fact,) = repair.facts
            counts[fact.value_at(2)] += 1
        assert abs(counts[2] - counts[3]) < 120  # ~±5 sigma

    def test_estimate_matches_exact_frequency(self):
        q = parse_query("R(x | 'a')")
        db = DatabaseInstance(
            [F("R", 1, "a"), F("R", 1, "b"), F("R", 2, "a")]
        )
        satisfying, total = frequency_of_satisfaction(q, db)
        exact = satisfying / total
        estimate = estimate_satisfaction_frequency(q, db, samples=800, seed=3)
        assert abs(estimate.estimate - exact) <= estimate.half_width

    def test_interval_bounds(self):
        q = parse_query("R(x | 'a')")
        db = DatabaseInstance([F("R", 1, "a")])
        estimate = estimate_satisfaction_frequency(q, db, samples=50)
        assert estimate.estimate == 1.0
        assert 0.0 <= estimate.lower <= estimate.upper <= 1.0

    def test_zero_samples(self):
        estimate = FrequencyEstimate(0.0, 0, 0.95)
        assert estimate.half_width == 1.0

    def test_certain_query_has_frequency_one(self):
        q = parse_query("R(x | y)")
        db = DatabaseInstance([F("R", 1, 2), F("R", 1, 3)])
        estimate = estimate_satisfaction_frequency(q, db, samples=100)
        assert estimate.estimate == 1.0
