"""Tests for the certainty engine: fingerprints, routing, the plan cache,
batch execution, and agreement with the exhaustive oracle on a random
mixed-class corpus."""

import pytest

from repro.cli import main
from repro.core.classify import ComplexityVerdict
from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query
from repro.db.io import dump
from repro.engine import (
    Backend,
    CertaintyEngine,
    EngineConfig,
    ExecutorConfig,
    PlanCache,
    compile_plan,
    matches_proposition16,
    matches_proposition17,
    problem_fingerprint,
)
from repro.repairs import certain_answer
from repro.solvers import (
    EngineSolver,
    proposition16_query,
    proposition17_query,
)
from repro.workloads import (
    StreamParams,
    fig1_instance,
    intro_query_q0,
    mixed_problem_stream,
    random_instances_for_query,
)


def _problem(atoms, fks=()):
    query = parse_query(*atoms)
    return query, fk_set(query, *fks)


class TestFingerprint:
    def test_alpha_renaming_and_atom_order_invariance(self):
        qa, ka = _problem(["R(x | y)", "S(y | z)"], ["R[2]->S"])
        qb, kb = _problem(["S(b | c)", "R(a | b)"], ["R[2]->S"])
        assert problem_fingerprint(qa, ka) == problem_fingerprint(qb, kb)

    def test_constants_are_semantic(self):
        qa, ka = _problem(["N(x | 'c', y)", "O(y |)"], ["N[3]->O"])
        qb, kb = _problem(["N(x | 'd', y)", "O(y |)"], ["N[3]->O"])
        assert problem_fingerprint(qa, ka) != problem_fingerprint(qb, kb)

    def test_foreign_keys_are_semantic(self):
        qa, ka = _problem(["R(x | y)", "S(y | z)"], ["R[2]->S"])
        qb, kb = _problem(["R(x | y)", "S(y | z)"])
        assert problem_fingerprint(qa, ka) != problem_fingerprint(qb, kb)

    def test_key_size_is_semantic(self):
        qa, _ = _problem(["R(x | y, z)"])
        qb, _ = _problem(["R(x, y | z)"])
        assert (
            problem_fingerprint(qa, fk_set(qa)).text
            != problem_fingerprint(qb, fk_set(qb)).text
        )

    def test_distinct_variable_identification_differs(self):
        qa, _ = _problem(["N(x | x)"])
        qb, _ = _problem(["N(x | y)"])
        assert (
            problem_fingerprint(qa, fk_set(qa)).text
            != problem_fingerprint(qb, fk_set(qb)).text
        )


class TestRouter:
    def test_fo_problem_gets_rewriting_backend(self):
        query, fks = intro_query_q0()
        plan = compile_plan(query, fks)
        assert plan.backend == Backend.FO_REWRITING.value
        assert plan.rewriting is not None

    def test_fo_problem_gets_sql_backend_on_request(self):
        query, fks = intro_query_q0()
        plan = compile_plan(query, fks, fo_backend="sql")
        assert plan.backend == Backend.FO_SQL.value
        assert plan.sql is not None and "SELECT" in plan.sql

    def test_proposition16_gets_reachability(self):
        query, fks = proposition16_query()
        plan = compile_plan(query, fks)
        assert plan.backend == Backend.REACHABILITY.value
        # matching is up to variable renaming
        renamed, rk = _problem(["N(u | u)", "O(u |)"], ["N[2]->O"])
        assert matches_proposition16(renamed, rk)

    def test_proposition17_gets_dual_horn_any_constant(self):
        query, fks = _problem(["N(a | 'k', b)", "O(b |)"], ["N[3]->O"])
        plan = compile_plan(query, fks)
        assert plan.backend == Backend.DUAL_HORN.value
        assert matches_proposition17(query, fks) == "k"

    def test_proposition_matchers_reject_near_misses(self):
        # same shape, but the N-atom is not diagonal
        query, fks = _problem(["N(x | y)", "O(y |)"], ["N[2]->O"])
        assert not matches_proposition16(query, fks)
        # prop17 shape with a variable instead of the constant
        query, fks = _problem(["N(x | z, y)", "O(y |)"], ["N[3]->O"])
        assert matches_proposition17(query, fks) is None

    def test_conp_hard_without_fks_gets_subset_repairs(self):
        query, fks = _problem(["R(x | z)", "S(y | z)"])
        plan = compile_plan(query, fks)
        assert not plan.classification.in_fo
        assert plan.backend == Backend.SUBSET_REPAIRS.value

    def test_hard_with_fks_gets_oplus_oracle(self):
        query, fks = _problem(
            ["R(x | y)", "S(y | x)"], ["R[2]->S", "S[2]->R"]
        )
        plan = compile_plan(query, fks)
        assert plan.classification.verdict is ComplexityVerdict.L_HARD
        assert plan.backend == Backend.OPLUS_ORACLE.value


class TestPlanCache:
    def test_second_lookup_hits(self):
        engine = CertaintyEngine()
        query, fks = intro_query_q0()
        first = engine.plan_for(query, fks)
        # an alpha-variant is the same problem
        renamed = query.substitute(
            {v: type(v)(v.name + "_r") for v in query.variables}
        )
        second = engine.plan_for(renamed, fks)
        assert first is second
        stats = engine.cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_renamed_relations_share_one_entry(self):
        # R0/R1/R2(x|y) are renaming-isomorphic: one class, one plan
        cache = PlanCache(capacity=2)
        plans = [
            cache.get_or_build(
                problem_fingerprint(q, k), lambda q=q, k=k: compile_plan(q, k)
            )
            for q, k in (_problem([f"R{i}(x | y)"]) for i in range(3))
        ]
        assert plans[0] is plans[1] is plans[2]
        assert len(cache) == 1
        assert cache.stats().hits == 2

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        problems = [
            # distinct constants keep the three problems in distinct
            # canonical classes (constants are semantic)
            _problem([f"R{i}(x | 'c{i}')"]) for i in range(3)
        ]
        plans = [
            cache.get_or_build(
                problem_fingerprint(q, k), lambda q=q, k=k: compile_plan(q, k)
            )
            for q, k in problems
        ]
        assert len(cache) == 2
        assert plans[0].fingerprint not in cache
        assert plans[2].fingerprint in cache
        assert cache.stats().evictions == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestAgreementWithBruteForce:
    """Engine answers must agree with the exact ⊕-repair oracle on a
    random mixed-class corpus (the ISSUE acceptance criterion)."""

    CORPUS = StreamParams(
        n_problems=10, instances_per_problem=3, seed=3, repeat_rate=0.2
    )

    def test_engine_agrees_on_mixed_stream(self):
        engine = CertaintyEngine()
        verdicts = set()
        checked = 0
        for item in mixed_problem_stream(self.CORPUS):
            verdicts.add(item.verdict)
            for db in item.instances:
                expected = certain_answer(item.query, item.fks, db).certain
                assert engine.decide(item.query, item.fks, db) == expected, (
                    f"{item.label}: engine disagrees with the oracle on "
                    f"{db.pretty()}"
                )
                checked += 1
        assert checked == self.CORPUS.n_problems * 3
        # the corpus must actually exercise more than one trichotomy class
        assert len(verdicts) >= 2

    def test_sql_backend_agrees_with_memory(self):
        memory = CertaintyEngine(EngineConfig(fo_backend="memory"))
        sql = CertaintyEngine(EngineConfig(fo_backend="sql"))
        query, fks = _problem(
            ["R(x | y)", "S(y | z)", "T(z |)"], ["R[2]->S", "S[2]->T"]
        )
        for db in random_instances_for_query(query, fks, 6, seed=5):
            assert memory.decide(query, fks, db) == sql.decide(query, fks, db)


class TestBatchExecutor:
    def _workload(self):
        query, fks = intro_query_q0()
        dbs = [fig1_instance()] + list(
            random_instances_for_query(query, fks, 7, seed=1)
        )
        return query, fks, dbs

    def test_serial_thread_process_agree(self):
        query, fks, dbs = self._workload()
        engine = CertaintyEngine()
        serial = engine.decide_batch(query, fks, dbs)
        thread = engine.decide_batch(
            query, fks, dbs, executor=ExecutorConfig(mode="thread", max_workers=4)
        )
        process = engine.decide_batch(
            query, fks, dbs,
            executor=ExecutorConfig(mode="process", max_workers=2, chunksize=4),
        )
        assert serial.answers == thread.answers == process.answers
        assert serial.size == len(dbs)

    def test_batch_records_metrics_once_per_plan(self):
        query, fks, dbs = self._workload()
        engine = CertaintyEngine()
        # serial batches record per call; pooled batches one aggregate sample
        engine.decide_batch(query, fks, dbs)
        engine.decide_batch(
            query, fks, dbs, executor=ExecutorConfig(mode="thread")
        )
        stats = engine.stats()
        assert len(stats.plans) == 1
        snapshot = stats.plans[0].metrics
        assert snapshot.evaluations == 2 * len(dbs)
        assert snapshot.batches == 1
        assert snapshot.min_seconds is not None
        assert stats.cache.hits == 1

    def test_single_instance_batch_reports_serial_mode(self):
        query, fks, dbs = self._workload()
        engine = CertaintyEngine()
        result = engine.decide_batch(
            query, fks, dbs[:1], executor=ExecutorConfig(mode="process")
        )
        assert result.mode == "serial"  # the <=1 shortcut actually ran

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(mode="fibers")


class TestEngineSolverAdapter:
    def test_engine_behind_solver_protocol(self):
        query, fks = proposition16_query()
        solver = EngineSolver(query, fks)
        from repro.workloads import proposition16_instance
        import random

        db = proposition16_instance(6, random.Random(2), marked_fraction=0.5)
        assert solver.decide(db) == certain_answer(query, fks, db).certain
        plan = solver.engine.plan_for(query, fks)
        assert plan.backend == Backend.REACHABILITY.value


class TestStreamWorkload:
    def test_stream_is_deterministic_and_mixed(self):
        params = StreamParams(n_problems=8, instances_per_problem=2, seed=4)
        first = list(mixed_problem_stream(params))
        second = list(mixed_problem_stream(params))
        assert [i.label for i in first] == [i.label for i in second]
        assert [i.instances for i in first] == [i.instances for i in second]
        labels = {item.label for item in first}
        assert "prop16" in labels and "prop17" in labels
        for item in first:
            assert len(item.instances) == 2
            assert item.fks.is_about(item.query)


class TestCliSubcommands:
    @pytest.fixture
    def fig1_file(self, tmp_path):
        path = tmp_path / "fig1.db"
        dump(fig1_instance(), path)
        return str(path)

    ARGS = [
        "-a", "DOCS(x | t, '2016')",
        "-a", "R(x, y |)",
        "-a", "AUTHORS(y | 'Jeff', z)",
        "-k", "R[1]->DOCS",
        "-k", "R[2]->AUTHORS",
    ]

    def test_engine_subcommand(self, fig1_file, capsys):
        code = main(["engine", *self.ARGS, fig1_file, "--explain"])
        out = capsys.readouterr().out
        assert code == 1  # Fig. 1's q0 is not certain
        assert "certain=False" in out
        assert "backend:  fo-rewriting" in out

    def test_batch_subcommand_with_sql_backend(self, fig1_file, capsys):
        code = main(
            ["batch", *self.ARGS, fig1_file, fig1_file, "--repeat", "3",
             "--sql"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "backend:    fo-sql" in out
        assert "instances:  6" in out
        # the workload compiled one plan and never re-fetched it; the CLI's
        # own introspection must not inflate the printed counters
        assert "plan cache: 0 hits, 1 misses" in out


class TestExecutorConfigValidation:
    def test_rejects_nonpositive_max_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            ExecutorConfig(mode="thread", max_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            ExecutorConfig(mode="process", max_workers=-2)

    def test_accepts_auto_and_positive(self):
        assert ExecutorConfig(mode="thread").max_workers is None
        assert ExecutorConfig(mode="thread", max_workers=3).max_workers == 3


class TestMetricsExport:
    def test_histogram_counts_sum_to_evaluations(self):
        from repro.engine import LATENCY_BUCKET_BOUNDS, PlanMetrics

        metrics = PlanMetrics()
        metrics.record(5e-6)            # first bucket
        metrics.record(5e-4)            # ≤1ms bucket
        metrics.record(10.0)            # overflow bucket
        metrics.record(0.004, evaluations=4)  # batch: mean 1ms, counted 4x
        snap = metrics.snapshot()
        assert snap.evaluations == 7
        assert sum(snap.histogram) == 7
        assert len(snap.histogram) == len(LATENCY_BUCKET_BOUNDS) + 1
        assert snap.histogram[0] == 1
        assert snap.histogram[-1] == 1

    def test_snapshot_to_dict_labels_buckets(self):
        from repro.engine import PlanMetrics, bucket_labels

        metrics = PlanMetrics()
        metrics.record(5e-6)
        data = metrics.snapshot().to_dict()
        assert set(data["histogram"]) == set(bucket_labels())
        assert sum(data["histogram"].values()) == 1
        assert data["mean_seconds"] == pytest.approx(5e-6)

    def test_engine_stats_aggregate_per_backend(self):
        query, fks = intro_query_q0()
        with CertaintyEngine() as engine:
            db = fig1_instance()
            for _ in range(3):
                engine.decide(query, fks, db)
            q16, k16 = proposition16_query()
            from repro.workloads import proposition16_instance
            import random as _random

            engine.decide(q16, k16,
                          proposition16_instance(4, _random.Random(0)))
            stats = engine.stats()
        backends = {agg.backend: agg for agg in stats.backends}
        assert set(backends) == {"fo-rewriting", "nl-reachability"}
        assert backends["fo-rewriting"].plans == 1
        assert backends["fo-rewriting"].metrics.evaluations == 3
        assert sum(backends["fo-rewriting"].metrics.histogram) == 3
        # the wire form carries plans and backends alike
        data = stats.to_dict()
        assert {entry["backend"] for entry in data["backends"]} == \
            {"fo-rewriting", "nl-reachability"}
        assert data["cache"]["misses"] == 2

    def test_engine_cli_stats_flag(self, tmp_path, capsys):
        path = tmp_path / "fig1.db"
        dump(fig1_instance(), path)
        code = main(
            ["engine",
             "-a", "DOCS(x | t, '2016')",
             "-a", "R(x, y |)",
             "-a", "AUTHORS(y | 'Jeff', z)",
             "-k", "R[1]->DOCS",
             "-k", "R[2]->AUTHORS",
             str(path), "--stats"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "per-backend aggregates:" in out
        assert "fo-rewriting" in out
        assert "latency histogram:" in out


class TestConcurrentEngineUse:
    """Hammer one engine from many threads while forcing plan-cache
    evictions: prepared solvers must be closed exactly once and every
    answer must match the serial oracle (guards the eviction-close path
    the sharded server leans on)."""

    N_PROBLEMS = 6
    CACHE_SIZE = 2  # working set of 6 >> capacity of 2: constant eviction
    N_THREADS = 8
    DECIDES_PER_THREAD = 40

    def _corpus(self):
        problems = []
        for i in range(self.N_PROBLEMS):
            query, fks = _problem(
                [f"R{i}(x | 'c{i}', y)", f"S{i}(y | z)"], [f"R{i}[3]->S{i}"]
            )
            dbs = list(random_instances_for_query(query, fks, 3, seed=i))
            problems.append((query, fks, dbs))
        return problems

    def test_threaded_hammer_with_evictions(self):
        import threading
        from repro.api import Problem
        from repro.engine import EngineConfig
        from repro.engine.registry import (
            BackendRegistry,
            BackendSpec,
            default_registry,
        )
        from repro.solvers.base import close_solver

        created = []
        created_lock = threading.Lock()

        class CountingSolver:
            def __init__(self, inner):
                self._inner = inner
                self.name = inner.name
                self.closes = 0
                self._lock = threading.Lock()

            def decide(self, db):
                # the prepared-solver contract allows decides after close
                # (resources re-acquire); answers must stay correct
                return self._inner.decide(db)

            def close(self):
                with self._lock:
                    self.closes += 1
                close_solver(self._inner)

        from dataclasses import replace as replace_dc

        registry = BackendRegistry()
        for spec in default_registry().specs():

            def recognize(form, options, _spec=spec):
                recognition = _spec.recognition(form, options)
                if recognition is None:
                    return None
                inner_factory = recognition.factory

                def factory():
                    solver = CountingSolver(inner_factory())
                    with created_lock:
                        created.append(solver)
                    return solver

                return replace_dc(recognition, factory=factory)

            registry.register(
                BackendSpec(
                    name=spec.name,
                    recognize=recognize,
                    priority=spec.priority,
                    polynomial=spec.polynomial,
                    description=spec.description,
                )
            )

        corpus = self._corpus()
        oracle = {}
        for index, (query, fks, dbs) in enumerate(corpus):
            for j, db in enumerate(dbs):
                oracle[(index, j)] = certain_answer(query, fks, db).certain

        engine = CertaintyEngine(
            EngineConfig(plan_cache_size=self.CACHE_SIZE, registry=registry)
        )
        mismatches = []
        errors = []

        def hammer(seed):
            import random as _random

            rng = _random.Random(seed)
            try:
                for _ in range(self.DECIDES_PER_THREAD):
                    index = rng.randrange(len(corpus))
                    query, fks, dbs = corpus[index]
                    j = rng.randrange(len(dbs))
                    answer = engine.decide(
                        Problem(query, fks), dbs[j]
                    )
                    if answer != oracle[(index, j)]:
                        mismatches.append((index, j, answer))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = engine.stats()
        engine.close()

        assert not errors
        assert not mismatches
        # the small cache really did thrash
        assert stats.cache.evictions > 0
        # many more solvers were built than fit the cache at once
        assert len(created) > self.CACHE_SIZE
        # after close(): every prepared solver closed exactly once —
        # eviction, the losing side of a build race, and final clear() are
        # mutually exclusive owners of each solver
        assert [s.closes for s in created] == [1] * len(created)
