"""Unit tests for repro.core.foreign_keys (incl. implication closure)."""

import random

import pytest

from repro.core.foreign_keys import ForeignKey, ForeignKeySet, fk_set
from repro.core.query import parse_query
from repro.core.schema import Schema
from repro.db.constraints import satisfies_foreign_keys
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.exceptions import ForeignKeyError


class TestValidation:
    def test_target_must_have_unary_key(self):
        schema = Schema.of(R=(2, 1), S=(2, 2))
        with pytest.raises(ForeignKeyError):
            ForeignKeySet([ForeignKey("R", 2, "S")], schema)

    def test_position_bounds(self):
        schema = Schema.of(R=(2, 1), S=(2, 1))
        with pytest.raises(ForeignKeyError):
            ForeignKeySet([ForeignKey("R", 3, "S")], schema)

    def test_unknown_relations(self):
        schema = Schema.of(R=(2, 1))
        with pytest.raises(ForeignKeyError):
            ForeignKeySet([ForeignKey("R", 1, "T")], schema)


class TestWeakStrongTrivial:
    def test_weak_vs_strong(self):
        q = parse_query("R(x, y | z)", "S(x |)", "T(z |)")
        fks = fk_set(q, "R[1]->S", "R[3]->T")
        weak = next(fk for fk in fks if fk.position == 1)
        strong = next(fk for fk in fks if fk.position == 3)
        assert fks.is_weak(weak) and not fks.is_strong(weak)
        assert fks.is_strong(strong)

    def test_trivial(self):
        q = parse_query("R(x | y)")
        fks = ForeignKeySet([ForeignKey("R", 1, "R")], q.schema())
        (fk,) = fks.foreign_keys
        assert fks.is_trivial(fk)

    def test_nontrivial_self_reference(self):
        q = parse_query("R(x | x)")
        fks = fk_set(q, "R[2]->R")
        (fk,) = fks.foreign_keys
        assert not fks.is_trivial(fk)


class TestDependencyGraph:
    """Example 3: R[1]→S weak, R[3]→T strong; special edges into j ≠ 1."""

    def setup_method(self):
        self.q = parse_query("R(x, y | z)", "S(x | u)", "T(z | v)")
        self.fks = fk_set(self.q, "R[1]->S", "R[3]->T")

    def test_edges(self):
        edges = self.fks.dependency_edges()
        assert edges[("R", 1)] == {("S", 1), ("S", 2)}
        assert edges[("R", 3)] == {("T", 1), ("T", 2)}

    def test_closure(self):
        assert self.fks.closure([("R", 3)]) == {("R", 3), ("T", 1), ("T", 2)}

    def test_closure_includes_length_zero_paths(self):
        assert ("R", 2) in self.fks.closure([("R", 2)])

    def test_complement_covers_non_fk_relations(self):
        q = parse_query("R(x | y)", "S(y |)", "P(y |)")
        fks = fk_set(q, "R[2]->S")
        complement = fks.complement([("R", 2)])
        assert ("P", 1) in complement

    def test_cycle_detection(self):
        q = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q, "R[2]->S", "S[2]->R")
        assert fks.position_on_cycle(("R", 2))
        assert fks.position_on_cycle(("S", 2))
        acyclic = fk_set(q, "R[2]->S")
        assert not acyclic.position_on_cycle(("R", 2))

    def test_self_loop_cycle(self):
        q = parse_query("N(x | x)")
        fks = fk_set(q, "N[2]->N")
        assert fks.position_on_cycle(("N", 2))


class TestAboutness:
    def test_satisfied_by_query(self):
        q = parse_query("R(x | y)", "S(y | z)")
        assert fk_set(q, "R[2]->S").is_about(q)

    def test_term_mismatch(self):
        q = parse_query("R(x | y)", "S(z | w)")
        fks = ForeignKeySet([ForeignKey("R", 2, "S")], q.schema())
        assert not fks.is_about(q)

    def test_missing_relation(self):
        q = parse_query("R(x | y)", "S(y | z)")
        schema = q.schema().add("T", 1, 1)
        fks = ForeignKeySet([ForeignKey("R", 2, "T")], schema)
        assert not fks.is_about(q)

    def test_proposition19_shape_rejected(self):
        """q = {E(x,y)} with E[2]→E is not about q (Proposition 19)."""
        q = parse_query("E(x | y)")
        fks = ForeignKeySet([ForeignKey("E", 2, "E")], q.schema())
        assert not fks.is_about(q)
        with pytest.raises(ForeignKeyError):
            fks.require_about(q)


class TestImplicationClosure:
    def test_reflexive_trivial_keys(self):
        q = parse_query("R(x | y)")
        closure = fk_set(q).implication_closure()
        assert ForeignKey("R", 1, "R") in closure

    def test_transitive_through_position_one(self):
        q = parse_query("R(x | y)", "S(y | z)", "T(z |)")
        # R[2]->S and S[1]->... no: transitivity needs S[1]->T, build it.
        q2 = parse_query("R(x | y)", "S(y | z)", "T(y |)")
        fks = fk_set(q2, "R[2]->S", "S[1]->T")
        closure = fks.implication_closure()
        assert ForeignKey("R", 2, "T") in closure

    def test_no_transitivity_through_nonkey(self):
        q = parse_query("R(x | y)", "S(y | z)", "T(z |)")
        fks = fk_set(q, "R[2]->S", "S[2]->T")
        closure = fks.implication_closure()
        assert ForeignKey("R", 2, "T") not in closure

    def test_closure_is_idempotent(self):
        q = parse_query("R(x | y)", "S(y | y2)", "T(y |)")
        fks = fk_set(q, "R[2]->S", "S[1]->T")
        once = fks.implication_closure()
        twice = once.implication_closure()
        assert once.foreign_keys == twice.foreign_keys

    def test_closure_semantically_sound(self, rng):
        """Every implied key holds on random instances satisfying FK."""
        q = parse_query("R(x | y)", "S(y | z)", "T(y |)")
        fks = fk_set(q, "R[2]->S", "S[1]->T")
        closure = fks.implication_closure()
        schema = q.schema()
        for _ in range(200):
            facts = []
            for rel in sorted(schema):
                sig = schema[rel]
                for _ in range(rng.randint(0, 3)):
                    facts.append(
                        Fact(
                            rel,
                            tuple(
                                rng.choice([0, 1, 2])
                                for _ in range(sig.arity)
                            ),
                            sig.key_size,
                        )
                    )
            db = DatabaseInstance(facts)
            if satisfies_foreign_keys(db, fks):
                assert satisfies_foreign_keys(db, closure)


class TestSetOperations:
    def test_restrict_to_query(self):
        q = parse_query("R(x | y)", "S(y | z)", "T(z |)")
        fks = fk_set(q, "R[2]->S", "S[2]->T")
        restricted = fks.restrict_to_query(q.without("T"))
        assert len(restricted) == 1

    def test_outgoing_referencing(self):
        q = parse_query("R(x | y)", "S(y | z)", "T(z |)")
        fks = fk_set(q, "R[2]->S", "S[2]->T")
        assert len(fks.outgoing("S")) == 1
        assert len(fks.referencing("S")) == 1
        assert not fks.outgoing("T")
