"""Tests for the `repro.api` facade: Problem serialization round-trips,
the backend registry (priority, override, custom backends), the
prepared-solver lifecycle (warm SQL connection reuse, close propagation),
and structured Decision provenance."""

import json

import pytest

from repro.api import (
    BackendRegistryError,
    BackendSpec,
    BatchDecision,
    Decision,
    Problem,
    ProblemFormatError,
    Session,
    SessionConfig,
    connect,
    default_registry,
    prepare,
)
from repro.cli import main
from repro.core.schema import Schema
from repro.core.terms import Constant, Parameter, Variable
from repro.engine import (
    BackendRegistry,
    CertaintyEngine,
    EngineConfig,
    ExecutorConfig,
    register_builtin_backends,
)
from repro.exceptions import ForeignKeyError, QueryError
from repro.workloads import (
    fig1_instance,
    intro_query_q0,
    random_instances_for_query,
)


def _sql_problem():
    return Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])


class TestProblemValue:
    def test_validates_aboutness(self):
        with pytest.raises(ForeignKeyError):
            Problem.of("E(x | y)", fks=["E[2]->E"])

    def test_equality_and_hash(self):
        a = _sql_problem()
        b = _sql_problem()
        assert a == b and hash(a) == hash(b)
        assert a != Problem.of("R(x | y)", "S(y | z)")  # fks differ
        assert a != Problem.of(
            "R(x | y)", "S(y | z)", fks=["R[2]->S"], name="other"
        )

    def test_alpha_variants_differ_but_share_fingerprint(self):
        a = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
        b = Problem.of("S(b | c)", "R(a | b)", fks=["R[2]->S"])
        assert a != b
        assert a.fingerprint == b.fingerprint

    def test_label_compat_alias(self):
        assert _sql_problem().label == repr(_sql_problem().query)
        assert Problem.of("R(x | y)", name="n").label == "n"

    def test_old_solvers_import_path_still_works(self):
        from repro.solvers import Problem as OldProblem

        assert OldProblem is Problem

    def test_top_level_shims(self):
        import repro

        assert repro.Problem is Problem
        assert repro.Session is Session
        assert repro.connect is connect


class TestProblemSerialization:
    ROUND_TRIP_CASES = [
        # variables only
        (("R(x | y)", "S(y | z)"), ["R[2]->S"]),
        # string and integer constants, mixed with variables
        (("N(x | 'c', y)", "O(y |)"), ["N[3]->O"]),
        (("T(x | 1, -7, 'v')",), []),
        # parameters (frozen variables)
        (("P(x | $p, y)",), []),
        # all-key atom and wide keys
        (("K(x, y |)", "M(x | y)"), []),
        # fk edge cases: trivial self-reference, multiple keys, weak key
        (("E(x | x)",), ["E[1]->E"]),
        (("A(x | y)", "B(y | z)", "C(z | x)"), ["A[2]->B", "B[2]->C"]),
        (("W(x | y)", "V(x |)"), ["W[1]->V"]),
    ]

    @pytest.mark.parametrize("atoms,fks", ROUND_TRIP_CASES)
    def test_round_trip_equality_and_fingerprint(self, atoms, fks):
        problem = Problem.of(*atoms, fks=list(fks), name="case")
        back = Problem.from_json(problem.to_json())
        assert back == problem
        assert back.fingerprint == problem.fingerprint

    def test_round_trip_preserves_extra_schema(self):
        extra = Schema.of(X=(3, 1))
        problem = Problem.of("R(x | y)", extra_schema=extra, name="x")
        back = Problem.from_json(problem.to_json())
        assert back == problem
        assert "X" in back.fks.schema

    def test_round_trip_distinguishes_int_and_string_constants(self):
        ints = Problem.of("R(x | 1)")
        strings = Problem.of("R(x | '1')")
        assert Problem.from_json(ints.to_json()).query.atoms[0].terms[1] \
            == Constant(1)
        assert Problem.from_json(strings.to_json()).query.atoms[0].terms[1] \
            == Constant("1")
        assert ints.fingerprint != strings.fingerprint

    def test_term_kinds_survive(self):
        problem = Problem.of("R(x | 'c', $p)")
        back = Problem.from_json(problem.to_json())
        terms = back.query.atoms[0].terms
        assert terms == (Variable("x"), Constant("c"), Parameter("p"))

    def test_unserializable_constant_rejected(self):
        # floats are outside the wire value domain (strings and ints only)
        from repro.core.atoms import Atom
        from repro.core.foreign_keys import ForeignKeySet
        from repro.core.query import ConjunctiveQuery

        query = ConjunctiveQuery([Atom("R", (Constant(1.5),), 1)])
        bad = Problem(query, ForeignKeySet([], query.schema()))
        with pytest.raises(ProblemFormatError):
            bad.to_dict()
        Problem(*intro_query_q0()).to_dict()  # the sane one serializes

    @pytest.mark.parametrize("text", [
        "not json{",
        '"a bare string"',
        '{"format": "other/thing", "version": 1}',
        '{"format": "repro/problem", "version": 99}',
        '{"format": "repro/problem", "version": 1, "atoms": "nope", '
        '"foreign_keys": []}',
        '{"format": "repro/problem", "version": 1, "foreign_keys": [], '
        '"atoms": [{"relation": "R", "key_size": 1, '
        '"terms": [["alien", "x"]]}]}',
        '{"format": "repro/problem", "version": 1, "atoms": [], '
        '"foreign_keys": [{"source": "R"}]}',
    ])
    def test_malformed_documents_raise_problem_format_error(self, text):
        with pytest.raises(ProblemFormatError):
            Problem.from_json(text)

    def test_self_join_still_rejected_on_import(self):
        doc = {
            "format": "repro/problem", "version": 1, "foreign_keys": [],
            "atoms": [
                {"relation": "R", "key_size": 1, "terms": [["var", "x"]]},
                {"relation": "R", "key_size": 1, "terms": [["var", "y"]]},
            ],
        }
        with pytest.raises(QueryError):
            Problem.from_dict(doc)


class TestBackendRegistry:
    def _fresh(self):
        return register_builtin_backends(BackendRegistry())

    def test_duplicate_registration_requires_override(self):
        registry = self._fresh()
        spec = registry.get("fo-rewriting")
        with pytest.raises(BackendRegistryError):
            registry.register(spec)
        registry.register(spec, override=True)  # explicit override is fine

    def test_unregister_unknown_name(self):
        with pytest.raises(BackendRegistryError):
            self._fresh().unregister("no-such-backend")

    def test_priority_order_and_selection(self):
        registry = self._fresh()
        names = registry.names()
        # FO backends outrank islands outrank exhaustive fallbacks
        assert names.index("fo-rewriting") < names.index("nl-reachability")
        assert names.index("nl-reachability") < names.index("subset-repairs")
        assert names[-1] == "oplus-oracle"

    def test_custom_backend_wins_on_priority(self):
        class StubSolver:
            name = "stub"

            def __init__(self):
                self.closed = False

            def decide(self, db):
                return True

            def close(self):
                self.closed = True

        registry = default_registry().copy()
        built = []

        def factory(classification, options):
            solver = StubSolver()
            built.append(solver)
            return solver

        registry.register(BackendSpec(
            name="always-yes",
            priority=1000,
            supports=lambda c, o: True,
            factory=factory,
        ))
        problem = _sql_problem()
        with Session(SessionConfig(registry=registry)) as session:
            decision = session.decide(problem, fig1_instance())
            assert decision.backend == "always-yes"
            assert decision.certain is True
        assert built and built[0].closed  # session close reached the stub

    def test_override_replaces_dispatch(self):
        registry = default_registry().copy()
        original = registry.get("fo-rewriting")
        registry.register(
            BackendSpec(
                name="fo-rewriting",
                priority=original.priority,
                recognize=original.recognize,
                description="replacement",
            ),
            override=True,
        )
        assert registry.get("fo-rewriting").description == "replacement"
        # default registry is unaffected by the copy's override
        assert default_registry().get("fo-rewriting").description \
            != "replacement"

    def test_default_registry_routes_all_builtins(self):
        assert len(default_registry()) >= 6


class TestPreparedSolverLifecycle:
    def _instances(self, problem, n):
        return list(
            random_instances_for_query(problem.query, problem.fks, n, seed=9)
        )

    def test_batch_opens_exactly_one_connection(self):
        problem = _sql_problem()
        dbs = self._instances(problem, 8)
        with connect(fo_backend="sql") as session:
            batch = session.decide_batch(problem, dbs)
            assert batch.backend == "fo-sql"
            solver = session.prepare(problem).solver
            assert solver.connections_opened == 1
            # a second batch through the same plan reuses the connection
            session.decide_batch(problem, dbs)
            assert solver.connections_opened == 1
            assert solver.connection_is_open
        assert not solver.connection_is_open  # close() propagated

    def test_close_rewarm_reopens_once(self):
        problem = _sql_problem()
        (db,) = self._instances(problem, 1)
        solver = prepare(problem, fo_backend="sql")
        first = solver.decide(db)
        assert solver.connections_opened == 1
        solver.close()
        assert solver.decide(db) == first  # transparently re-warms
        assert solver.connections_opened == 2
        solver.close()

    def test_warm_and_cold_sql_agree(self):
        problem = _sql_problem()
        dbs = self._instances(problem, 6)
        from repro.solvers import SqlRewritingSolver

        warm = SqlRewritingSolver(problem.query, problem.fks)
        cold = SqlRewritingSolver(problem.query, problem.fks, warm=False)
        with warm, cold:
            assert [warm.decide(db) for db in dbs] \
                == [cold.decide(db) for db in dbs]
        assert warm.connections_opened == 1
        assert cold.connections_opened == len(dbs)

    def test_warm_solver_survives_thread_pool(self):
        problem = _sql_problem()
        dbs = self._instances(problem, 10)
        with connect(fo_backend="sql") as session:
            serial = session.decide_batch(problem, dbs)
            threaded = session.decide_batch(
                problem, dbs, executor=ExecutorConfig(mode="thread",
                                                      max_workers=4)
            )
            assert serial.answers == threaded.answers
            solver = session.prepare(problem).solver
            # one connection per *thread*, not per instance: the serial
            # batch used 1, the pool adds at most one per worker
            assert 1 <= solver.connections_opened <= 1 + 4
            assert solver.connection_is_open
        assert not solver.connection_is_open  # close() reaped every thread's

    def test_warm_solver_pickles_for_process_pool(self):
        problem = _sql_problem()
        dbs = self._instances(problem, 6)
        with connect(fo_backend="sql") as session:
            serial = session.decide_batch(problem, dbs)
            pooled = session.decide_batch(
                problem, dbs, executor=ExecutorConfig(mode="process",
                                                      max_workers=2)
            )
            assert serial.answers == pooled.answers

    def test_engine_clear_closes_solvers(self):
        engine = CertaintyEngine(EngineConfig(fo_backend="sql"))
        problem = _sql_problem()
        (db,) = self._instances(problem, 1)
        engine.decide(problem, db)
        solver = engine.plan_for(problem).solver
        assert solver.connection_is_open
        engine.clear()
        assert not solver.connection_is_open

    def test_engine_solver_close_propagates(self):
        from repro.solvers import EngineSolver

        problem = _sql_problem()
        (db,) = self._instances(problem, 1)
        solver = EngineSolver(
            problem.query, problem.fks,
            engine=CertaintyEngine(EngineConfig(fo_backend="sql")),
        )
        solver.decide(db)
        inner = solver.engine.plan_for(problem.query, problem.fks).solver
        assert inner.connection_is_open
        solver.close()
        assert not inner.connection_is_open

    def test_cache_eviction_closes_solver(self):
        engine = CertaintyEngine(
            EngineConfig(plan_cache_size=1, fo_backend="sql")
        )
        first = _sql_problem()
        (db,) = self._instances(first, 1)
        engine.decide(first, db)
        solver = engine.plan_for(first).solver
        assert solver.connection_is_open
        # a second distinct problem evicts the first plan
        engine.plan_for(Problem.of("T(x | y)"))
        assert not solver.connection_is_open


class TestSessionDecisions:
    def test_decision_provenance_and_truthiness(self):
        problem = _sql_problem()
        db = next(iter(
            random_instances_for_query(problem.query, problem.fks, 1, seed=2)
        ))
        with connect() as session:
            first = session.decide(problem, db)
            second = session.decide(problem, db)
        assert first.fingerprint == problem.fingerprint.digest
        assert first.verdict == "FO"
        assert first.backend == "fo-rewriting"
        assert (first.cache_hit, second.cache_hit) == (False, True)
        assert bool(first) == first.certain
        assert first.wall_seconds > 0

    def test_decision_json_round_trip(self):
        decision = Decision(
            certain=True, fingerprint="abc", verdict="FO",
            backend="fo-sql", cache_hit=True, wall_seconds=0.25,
        )
        assert Decision.from_json(decision.to_json()) == decision
        with pytest.raises(ProblemFormatError):
            Decision.from_json("{]")
        with pytest.raises(ProblemFormatError):
            Decision.from_json('{"certain": true}')

    def test_batch_decision_shape(self):
        problem = _sql_problem()
        dbs = list(
            random_instances_for_query(problem.query, problem.fks, 4, seed=3)
        )
        with connect() as session:
            batch = session.decide_batch(problem, dbs)
        assert len(batch) == 4 and list(batch) == list(batch.answers)
        data = json.loads(batch.to_json())
        assert data["answers"] == list(batch.answers)
        assert data["backend"] == "fo-rewriting"
        assert isinstance(batch, BatchDecision)

    def test_engine_accepts_problem_by_keyword(self):
        problem = _sql_problem()
        db = fig1_instance()
        engine = CertaintyEngine()
        # all documented call shapes: positional and keyword, old and new
        assert engine.decide(problem, db) \
            == engine.decide(problem, db=db) \
            == engine.decide(problem.query, problem.fks, db)
        batch = engine.decide_batch(problem, dbs=[db, db])
        assert batch.answers == engine.decide_batch(problem, [db, db]).answers
        with pytest.raises(TypeError):
            engine.decide(problem, problem.fks, db)  # problem plus fks
        engine.close()

    def test_closed_session_rejects_work(self):
        session = connect()
        session.close()
        assert session.closed
        with pytest.raises(RuntimeError):
            session.decide(_sql_problem(), fig1_instance())

    def test_session_classify_and_rewrite(self):
        problem = Problem.of("N(x | 'c', y)", "O(y |)", fks=["N[3]->O"])
        with connect() as session:
            assert not session.classify(problem).in_fo
            from repro.exceptions import NotInFOError

            with pytest.raises(NotInFOError):
                session.rewrite(problem)
            assert "p-dual-horn" in session.explain(problem)


class TestCliProblemJson:
    def _export(self, tmp_path):
        path = tmp_path / "problem.json"
        code = main([
            "problem", "export", "-a", "R(x | y)", "-a", "S(y | z)",
            "-k", "R[2]->S", "--name", "cli-demo", "-o", str(path),
        ])
        assert code == 0
        return path

    def test_export_import_round_trip(self, tmp_path, capsys):
        path = self._export(tmp_path)
        original = Problem.of(
            "R(x | y)", "S(y | z)", fks=["R[2]->S"], name="cli-demo"
        )
        assert Problem.from_json(path.read_text()) == original
        code = main(["problem", "import", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert original.fingerprint.digest in out
        assert "in FO" in out

    def test_export_to_stdout(self, capsys):
        code = main(["problem", "export", "-a", "R(x | y)"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["format"] == "repro/problem"

    def test_engine_accepts_problem_file(self, tmp_path, capsys):
        from repro.db.io import dump

        path = self._export(tmp_path)
        problem = _sql_problem()
        db_path = tmp_path / "db.txt"
        dump(next(iter(random_instances_for_query(
            problem.query, problem.fks, 1, seed=4
        ))), db_path)
        code = main(["engine", "-p", str(path), str(db_path)])
        out = capsys.readouterr().out
        assert "backend: fo-rewriting" in out
        assert code in (0, 1)

    def test_batch_accepts_problem_file(self, tmp_path, capsys):
        from repro.db.io import dump

        path = self._export(tmp_path)
        problem = _sql_problem()
        db_path = tmp_path / "db.txt"
        dump(next(iter(random_instances_for_query(
            problem.query, problem.fks, 1, seed=4
        ))), db_path)
        code = main([
            "batch", "-p", str(path), str(db_path), "--repeat", "2", "--sql"
        ])
        out = capsys.readouterr().out
        assert "backend:    fo-sql" in out
        assert "plan cache: 0 hits, 1 misses" in out
        assert code in (0, 1)

    def test_malformed_problem_file_friendly_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("this is not json")
        code = main(["problem", "import", str(bad)])
        assert code == 2
        assert "error: invalid JSON" in capsys.readouterr().err

    def test_missing_problem_file_friendly_error(self, tmp_path, capsys):
        code = main(["classify", "-p", str(tmp_path / "absent.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_atoms_and_problem_file_are_exclusive(self, tmp_path, capsys):
        path = self._export(tmp_path)
        code = main(["classify", "-p", str(path), "-a", "R(x | y)"])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_no_problem_given_friendly_error(self, capsys):
        code = main(["classify"])
        assert code == 2
        assert "no problem given" in capsys.readouterr().err
