"""Tests for the FK = ∅ trichotomy (Koutris–Wijsen, paper Section 2)."""

import pytest

from repro.core.attack_graph import AttackGraph
from repro.core.classify import PkTrichotomy, pk_trichotomy
from repro.core.query import parse_query


class TestAttackStrength:
    def test_weak_attack_in_key_cycle(self):
        q = parse_query("R(x | y)", "S(y | x)")
        graph = AttackGraph(q)
        assert graph.is_weak_attack("R", "S")
        assert graph.is_weak_attack("S", "R")
        assert graph.strong_two_cycle() is None

    def test_strong_attack_in_nonkey_join(self):
        q = parse_query("R(x | z)", "S(y | z)")
        graph = AttackGraph(q)
        assert not graph.is_weak_attack("R", "S")
        assert not graph.is_weak_attack("S", "R")
        assert graph.strong_two_cycle() is not None

    def test_non_attack_raises(self):
        q = parse_query("R(x | y)", "S(y | z)")
        graph = AttackGraph(q)
        with pytest.raises(ValueError):
            graph.is_weak_attack("S", "R")


class TestTrichotomy:
    CASES = [
        (["R(x | y)", "S(y | z)"], PkTrichotomy.FO),
        (["R(x | y)"], PkTrichotomy.FO),
        (["R(x | y)", "S(y | x)"], PkTrichotomy.L_COMPLETE),
        (["R(x | z)", "S(y | z)"], PkTrichotomy.CONP_COMPLETE),
        # a longer cycle through keys stays L-complete
        (["R(x | y)", "S(y | z)", "T(z | x)"], PkTrichotomy.L_COMPLETE),
        # mixed: the strong 2-cycle dominates
        (["R(x | z)", "S(y | z)", "T(x | w)"], PkTrichotomy.CONP_COMPLETE),
    ]

    @pytest.mark.parametrize("atoms,expected", CASES,
                             ids=["+".join(c[0]) for c in CASES])
    def test_cases(self, atoms, expected):
        assert pk_trichotomy(parse_query(*atoms)) == expected

    def test_fo_iff_rewriting_exists(self):
        from repro.core.rewriting_pk import rewrite_primary_keys
        from repro.exceptions import NotInFOError

        for atoms, expected in self.CASES:
            q = parse_query(*atoms)
            if expected is PkTrichotomy.FO:
                rewrite_primary_keys(q)  # must not raise
            else:
                with pytest.raises(NotInFOError):
                    rewrite_primary_keys(q)

    def test_consistent_with_theorem12_lower_bound(self):
        """Cyclic attack graph ⇒ CERTAINTY(q, ∅) not FO (Theorem 12 item 2)."""
        from repro.core.classify import classify
        from repro.core.foreign_keys import fk_set

        for atoms, expected in self.CASES:
            q = parse_query(*atoms)
            in_fo = classify(q, fk_set(q)).in_fo
            assert in_fo == (expected is PkTrichotomy.FO)
