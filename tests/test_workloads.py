"""Tests for the workload generators."""

import random

from repro.core.classify import classify
from repro.core.foreign_keys import fk_set
from repro.db.constraints import dangling_facts, satisfies_foreign_keys
from repro.db.facts import Fact
from repro.solvers import certain_by_dual_horn
from repro.workloads import (
    BibliographyParams,
    ChainParams,
    RandomInstanceParams,
    branching_chain_instance,
    chain_instance,
    chain_problem,
    example13_problems,
    expected_certainty,
    fig1_instance,
    fo_catalog,
    hard_catalog,
    intro_query_q0,
    layered_dag,
    paper_catalog,
    proposition16_instance,
    q1_distinguishing_instance,
    random_instance,
    random_instances_for_query,
    synthetic_bibliography,
)


class TestFig1:
    def test_shape(self):
        db = fig1_instance()
        assert db.size == 7
        assert len(db.key_violations()) == 1

    def test_violations_match_paper(self):
        db = fig1_instance()
        q, fks = intro_query_q0()
        dangling = dangling_facts(db, fks)
        assert dangling == {Fact("R", ("d1", "o3"), 2)}


class TestSyntheticBibliography:
    def test_deterministic_for_seed(self):
        params = BibliographyParams(n_docs=5, n_authors=5, n_authorships=8)
        assert synthetic_bibliography(params, 1) == synthetic_bibliography(
            params, 1
        )
        assert synthetic_bibliography(params, 1) != synthetic_bibliography(
            params, 2
        )

    def test_rates_drive_violations(self):
        clean = synthetic_bibliography(
            BibliographyParams(duplicate_author_rate=0.0, dangling_rate=0.0),
            seed=3,
        )
        q, fks = intro_query_q0()
        assert not clean.violates_primary_keys()
        assert satisfies_foreign_keys(clean, fks)
        dirty = synthetic_bibliography(
            BibliographyParams(duplicate_author_rate=1.0, dangling_rate=1.0),
            seed=3,
        )
        assert dirty.violates_primary_keys()
        assert not satisfies_foreign_keys(dirty, fks)


class TestChains:
    def test_sizes(self):
        db = chain_instance(ChainParams(4))
        assert db.relation_facts("N") and db.size == 2 * 4 + 2

    def test_closed_form_matches_solver(self):
        for n in (1, 3, 8, 20):
            for marker in ("c", "z"):
                for seed in (True, False):
                    params = ChainParams(n, marker, seed)
                    db = chain_instance(params)
                    assert certain_by_dual_horn(db, "c") == expected_certainty(
                        params
                    ), params

    def test_branching_chain_answer(self):
        for marker, expected in (("c", True), ("z", False)):
            db = branching_chain_instance(4, 3, marker)
            assert certain_by_dual_horn(db, "c") == expected

    def test_problem_is_nl_hard(self):
        q, fks = chain_problem()
        assert not classify(q, fks).in_fo


class TestCatalog:
    def test_partition(self):
        assert len(fo_catalog()) + len(hard_catalog()) == len(paper_catalog())
        assert {e.label for e in fo_catalog()}.isdisjoint(
            {e.label for e in hard_catalog()}
        )

    def test_labels_unique(self):
        labels = [e.label for e in paper_catalog()]
        assert len(labels) == len(set(labels))

    def test_aboutness_everywhere(self):
        for entry in paper_catalog():
            assert entry.fks.is_about(entry.query), entry.label


class TestExample13Workload:
    def test_problems(self):
        problems = example13_problems()
        assert [p[0] for p in problems] == ["q1", "q2", "q3"]
        for _, query, fks, expected in problems:
            assert classify(query, fks).verdict == expected

    def test_distinguishing_instance(self):
        db = q1_distinguishing_instance()
        assert db.size == 3


class TestGraphWorkloads:
    def test_layered_dag_guarantees(self):
        rng = random.Random(1)
        g, s, t = layered_dag(4, 3, rng, guarantee_path=True)
        assert g.reaches(s, t)
        g, s, t = layered_dag(4, 3, rng, guarantee_path=False)
        assert not g.reaches(s, t)

    def test_proposition16_instance_schema(self):
        rng = random.Random(2)
        db = proposition16_instance(5, rng)
        assert db.relations <= {"N", "O"}
        assert any(
            f.value_at(1) == f.value_at(2) for f in db.relation_facts("N")
        )


class TestRandomInstances:
    def test_constant_pool_included(self):
        from repro.core.query import parse_query

        q = parse_query("N(x | 'c', y)", "O(y |)")
        instances = list(random_instances_for_query(q, None, 20, seed=5))
        assert any(
            "c" in {f.value_at(2) for f in db.relation_facts("N")}
            for db in instances
            if db.relation_facts("N")
        )

    def test_dangling_rate_zero_mostly_consistent_fk(self):
        from repro.core.query import parse_query

        q = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q, "R[2]->S")
        rng = random.Random(8)
        params = RandomInstanceParams(dangling_rate=0.0)
        hits = violations = 0
        for _ in range(50):
            db = random_instance(q.schema(), params, rng, fks)
            if db.relation_facts("R") and db.relation_facts("S"):
                hits += 1
                if not satisfies_foreign_keys(db, fks):
                    violations += 1
        assert hits > 0
        assert violations < hits  # referencing mostly lands on real keys

    def test_reproducible(self):
        from repro.core.query import parse_query

        q = parse_query("R(x | y)")
        a = list(random_instances_for_query(q, None, 5, seed=9))
        b = list(random_instances_for_query(q, None, 5, seed=9))
        assert a == b
