"""Unit tests for FD closures and the attack graph."""

import random

from repro.core.attack_graph import AttackGraph
from repro.core.fds import FDSet, FunctionalDependency, free_variables
from repro.core.query import parse_query
from repro.core.terms import Variable


class TestFDSet:
    def test_of_query(self):
        q = parse_query("R(x | y)", "S(y | z)")
        fds = FDSet.of_query(q)
        assert fds.implies([Variable("x")], [Variable("y")])
        assert fds.implies([Variable("x")], [Variable("z")])
        assert not fds.implies([Variable("z")], [Variable("x")])

    def test_constant_key_gives_empty_lhs(self):
        q = parse_query("R('c' | y)")
        fds = FDSet.of_query(q)
        assert fds.determines(Variable("y"))

    def test_constant_variables_propagate(self):
        q = parse_query("R('c' | y)", "S(y | z)")
        fds = FDSet.of_query(q)
        assert fds.constant_variables() == {Variable("y"), Variable("z")}

    def test_free_variables(self):
        q = parse_query("R('c' | y)", "S(u | v)")
        assert free_variables(q) == {Variable("u"), Variable("v")}

    def test_closure_monotone(self):
        fds = FDSet(
            [
                FunctionalDependency(
                    frozenset({Variable("a")}), frozenset({Variable("b")})
                )
            ]
        )
        assert fds.closure([Variable("a")]) >= fds.closure([])


class TestAttackGraphPaperExamples:
    def test_two_atom_cycle(self):
        """{R(x,y), S(y,x)} has a cyclic attack graph (Section 6)."""
        q = parse_query("R(x | y)", "S(y | x)")
        graph = AttackGraph(q)
        assert not graph.is_acyclic()
        assert graph.two_cycle() is not None

    def test_path_query_acyclic(self):
        q = parse_query("R(x | y)", "S(y | z)")
        graph = AttackGraph(q)
        assert graph.is_acyclic()
        assert graph.attacks("R", "S")
        assert not graph.attacks("S", "R")

    def test_plus_set(self):
        q = parse_query("R(x | y)", "S(y | z)")
        graph = AttackGraph(q)
        # key(S) = {y}; K(q \ S) = {x→y} so S⁺ = {y}.
        assert graph.plus("S") == {Variable("y")}
        # key(R) = {x}; K(q \ R) = {y→z} so R⁺ = {x}.
        assert graph.plus("R") == {Variable("x")}

    def test_unattacked_atoms(self):
        q = parse_query("R(x | y)", "S(y | z)")
        graph = AttackGraph(q)
        assert [a.relation for a in graph.unattacked_atoms()] == ["R"]

    def test_topological_order(self):
        q = parse_query("R(x | y)", "S(y | z)", "T(z | w)")
        graph = AttackGraph(q)
        order = graph.topological_order()
        assert order is not None
        names = [a.relation for a in order]
        assert names.index("R") < names.index("S") < names.index("T")

    def test_topological_order_none_when_cyclic(self):
        q = parse_query("R(x | y)", "S(y | x)")
        assert AttackGraph(q).topological_order() is None

    def test_attacks_variable(self):
        q = parse_query("R(x | y)", "S(y | z)")
        graph = AttackGraph(q)
        assert graph.attacks_variable("R", Variable("y"))
        assert graph.attacks_variable("R", Variable("z"))
        assert not graph.attacks_variable("R", Variable("x"))

    def test_constants_weaken_attacks(self):
        """Grounding the join variable removes the attack."""
        q = parse_query("R(x | 'c')", "S('c' | z)")
        graph = AttackGraph(q)
        assert not graph.attacks("R", "S")


class TestTwoCycleTheorem:
    """Koutris–Wijsen: cyclic attack graph ⟺ some 2-cycle exists."""

    def test_on_random_queries(self):
        rng = random.Random(99)
        pool = ["x", "y", "z", "u", "v"]
        for _ in range(300):
            atoms = []
            for index in range(rng.randint(2, 4)):
                arity = rng.randint(1, 3)
                key = rng.randint(1, arity)
                terms = ", ".join(rng.choice(pool) for _ in range(arity))
                parts = terms.split(", ")
                text = (
                    f"R{index}({', '.join(parts[:key])} | "
                    f"{', '.join(parts[key:])})"
                )
                atoms.append(text)
            q = parse_query(*atoms)
            graph = AttackGraph(q)
            assert graph.is_acyclic() == (graph.two_cycle() is None)
