"""Tests for the pre-repair machinery (Definitions 29–30, Theorem 32)."""

import pytest

from repro.core.foreign_keys import fk_set
from repro.core.query import parse_query
from repro.db import DatabaseInstance, Fact
from repro.repairs import canonical_repairs
from repro.repairs.prerepair import (
    is_irrelevantly_dangling,
    is_pre_repair,
    orphan_positions,
)


def F(rel, *values, key=1):
    return Fact(rel, tuple(values), key)


class TestOrphanPositions:
    def test_orphan_fresh_values(self):
        q = parse_query("N(x | x)", "O(x | y)")
        db = DatabaseInstance([F("N", "b", "c"), F("O", "b", "e")])
        positions = orphan_positions(F("N", "b", "c"), db, q)
        assert positions == {("N", 2)}  # c occurs once, at a non-key slot

    def test_query_constants_excluded(self):
        q = parse_query("N(x | 'c')")
        db = DatabaseInstance([F("N", 1, "c")])
        assert orphan_positions(F("N", 1, "c"), db, q) == frozenset()

    def test_repeated_values_excluded(self):
        q = parse_query("N(x | y)")
        db = DatabaseInstance([F("N", 1, 5), F("N", 2, 5)])
        assert orphan_positions(F("N", 1, 5), db, q) == frozenset()


class TestIrrelevantlyDangling:
    """Example 27's setting: q = {N(x,x), O(x,y)}, FK = {N[2]→N, N[2]→O}."""

    def setup_method(self):
        self.q = parse_query("N(x | x)", "O(x | y)")
        self.fks = fk_set(self.q, "N[2]->N", "N[2]->O")

    def test_consistent_instance_vacuously_qualifies(self):
        r = DatabaseInstance([F("N", "a", "a"), F("O", "a", "b")])
        db = r
        assert is_irrelevantly_dangling(r, db, self.fks, self.q)

    def test_orphan_dangling_at_disobedient_position_qualifies(self):
        # N(b,c): dangling at (N,2); c is orphan; {(N,2)} lies on a
        # dependency-graph cycle -> disobedient -> irrelevantly dangling.
        db = DatabaseInstance([F("N", "b", "c"), F("O", "b", "e")])
        r = db
        assert is_irrelevantly_dangling(r, db, self.fks, self.q)

    def test_non_orphan_dangling_disqualifies(self):
        # the dangling value also appears elsewhere -> not orphan.
        db = DatabaseInstance(
            [F("N", "b", "c"), F("O", "b", "c")]
        )
        assert not is_irrelevantly_dangling(db, db, self.fks, self.q)

    def test_obedient_position_disqualifies(self):
        # q' with an acyclic FK: {(N,2)} is obedient, so a dangling fact
        # there is NOT irrelevantly dangling.
        q = parse_query("N(x | y)", "O(y | w)")
        fks = fk_set(q, "N[2]->O")
        db = DatabaseInstance([F("N", 1, 9)])
        assert not is_irrelevantly_dangling(db, db, fks, q)


class TestPreRepair:
    def test_repairs_are_pre_repairs(self):
        """Every ⊕-repair satisfies PK and has no dangling facts, hence is a
        candidate pre-repair; minimality must hold too on this example."""
        q = parse_query("R(x | y)", "S(y | z)", "T(z |)")
        fks = fk_set(q, "R[2]->S", "S[2]->T")
        db = DatabaseInstance([F("R", "a", "b"), F("S", "b", "c")])
        for repair in canonical_repairs(db, fks):
            if repair.size == 0:
                # {} is ⊕-minimal but not ≺∩-minimal: keeping facts with
                # irrelevant completions dominates it in the pre-repair
                # order. Theorem 32 compares certainty, not the repair sets.
                continue
            assert is_pre_repair(repair, db, fks, q)

    def test_pre_repair_rejects_dominated_instance(self):
        q = parse_query("R(x | y)", "S(y |)")
        fks = fk_set(q, "R[2]->S")
        db = DatabaseInstance([F("R", 1, 2), F("S", 2)])
        # dropping everything is dominated by keeping both facts
        assert not is_pre_repair(DatabaseInstance(), db, fks, q)
        assert is_pre_repair(db, db, fks, q)

    def test_pk_violation_rejected(self):
        q = parse_query("R(x | y)")
        fks = fk_set(q)
        db = DatabaseInstance([F("R", 1, 2), F("R", 1, 3)])
        assert not is_pre_repair(db, db, fks, q)
