"""Chaos tests: the cluster under injected faults (see `tests/chaos.py`).

Everything here runs real ``python -m repro serve`` subprocesses over
127.0.0.1 TCP and hurts them on purpose: SIGKILL without a goodbye,
SIGSTOP freezes, dropped heartbeat frames, and a controller cold
restart.  The assertions are the PR's hardening contract — a single
worker failure no longer loses refs (replicas promote, versions
preserved), a rolling restart drills through the fleet with zero failed
decides, and a restarted controller rebuilds its picture from agent
re-registration alone.
"""

import threading
import time

import pytest

from repro.exceptions import RemoteError
from repro.serve import HashRing, ServeClient
from repro.serve.shard import ref_digest

from tests.chaos import (
    SECRET,
    VerbProxy,
    free_port,
    spawn_controller,
    spawn_worker,
)
from tests.test_cluster import _class_instance, _class_problem


def _client(host: str, port: int, timeout: float = 30.0) -> ServeClient:
    return ServeClient(host, port, auth_secret=SECRET, timeout=timeout)


def _await(predicate, timeout: float = 30.0, interval: float = 0.2):
    """Poll *predicate* (returning a truthy value or raising) until it
    delivers; transport errors count as 'not yet' — this is the retrying
    client the acceptance scenarios are specified against."""
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        try:
            value = predicate()
            if value:
                return value
            last = value
        except (RemoteError, OSError) as error:
            last = error
        time.sleep(interval)
    raise AssertionError(f"condition never held; last: {last!r}")


def _cluster_status(client: ServeClient) -> dict:
    return client.stats()["server"]["cluster"]


def _workers(client: ServeClient, n: int, timeout: float = 30.0) -> dict:
    return _await(
        lambda: (lambda s: s if s["workers"] == n else None)(
            _cluster_status(client)
        ),
        timeout=timeout,
    )


def _drained(client: ServeClient, timeout: float = 30.0) -> dict:
    """Wait until the mirror backlog is empty (replicas caught up)."""
    return _await(
        lambda: (lambda s: s if s["replication"]["pending"] == 0 else None)(
            _cluster_status(client)
        ),
        timeout=timeout,
    )


def _workers_fresh(host: str, port: int, n: int,
                   timeout: float = 30.0) -> dict:
    """Like :func:`_workers`, but with a fresh short-timeout client per
    attempt — for windows where a stats fan-out can hang on a frozen
    worker and poison the polling connection."""
    def probe():
        with _client(host, port, timeout=3.0) as client:
            status = _cluster_status(client)
            return status if status["workers"] == n else None

    return _await(probe, timeout=timeout)


def _member_ring(status: dict) -> HashRing:
    """The controller's routing ring, rebuilt client-side from the
    membership block — lets a test pick a ref's owning *process*."""
    members = sorted(status["members"], key=lambda m: m["shard"])
    names = tuple(m["name"] for m in members)
    return HashRing(len(names), names=names)


class TestChaosPromotion:
    def test_sigkill_owner_serves_from_promoted_replica(self):
        """The acceptance scenario over real processes: put refs, SIGKILL
        the owning worker, heartbeat eviction — decides on its refs
        answer from the promoted replicas with versions preserved."""
        procs = []
        try:
            controller, host, port = spawn_controller(
                heartbeat_timeout=2.0
            )
            procs.append(controller)
            workers = {}
            for name in ("chaos-a", "chaos-b", "chaos-c"):
                workers[name] = spawn_worker(host, port, name)
                procs.append(workers[name])
            with _client(host, port) as client:
                status = _workers(client, 3)
                for i in range(8):
                    client.put_instance(
                        f"ref-{i}", _class_instance(i), version=5
                    )
                _drained(client)

                ring = _member_ring(status)
                victim = ring.names[ring.shard_for(ref_digest("ref-0"))]
                orphans = [
                    f"ref-{i}" for i in range(8)
                    if ring.names[ring.shard_for(ref_digest(f"ref-{i}"))]
                    == victim
                ]
                workers[victim].kill()
                status = _workers(client, 2)
                assert status["evictions"] >= 1
                # the repair pass runs inside the eviction sweep, but a
                # stats read can land between the membership shrink and
                # the promotions — poll the counter instead of snapshotting
                status = _await(lambda: (
                    lambda s: s
                    if s["replication"]["promotions"] >= len(orphans)
                    else None
                )(_cluster_status(client)))

                for i in range(8):
                    result = _await(lambda i=i: client.request(
                        "decide", problem=_class_problem(i),
                        instance_ref=f"ref-{i}",
                    ))
                    assert result["decision"]["certain"] is True
                    assert result["instance"]["version"] == 5

                page = client.metrics()
                assert "repro_cluster_workers 2" in page
                assert "repro_cluster_promotions_total" in page
        finally:
            for proc in procs:
                proc.terminate()

    def test_paused_worker_is_evicted_and_rejoins_on_thaw(self):
        """SIGSTOP is a crash the process survives: frozen past the
        heartbeat timeout it gets evicted; thawed, its next heartbeat
        discovers the eviction and it rejoins under the same name."""
        procs = []
        try:
            controller, host, port = spawn_controller(
                heartbeat_timeout=2.0
            )
            procs.append(controller)
            frozen = spawn_worker(host, port, "freeze-a")
            other = spawn_worker(host, port, "freeze-b")
            procs += [frozen, other]
            # fresh clients per poll: a stats fan-out that reaches the
            # frozen worker hangs instead of erroring, so an attempt
            # must be abandoned connection and all
            _workers_fresh(host, port, 2)
            frozen.pause()
            status = _workers_fresh(host, port, 1)
            assert status["evictions"] >= 1
            assert [m["name"] for m in status["members"]] == [
                "freeze-b"
            ]
            frozen.resume()
            status = _workers_fresh(host, port, 2, timeout=60.0)
            thawed = next(
                m for m in status["members"]
                if m["name"] == "freeze-a"
            )
            # the agent's own restart counter proves a real rejoin
            assert thawed["agent_generation"] >= 2
        finally:
            for proc in procs:
                proc.terminate()


class TestVerbProxy:
    def test_dropped_heartbeats_evict_then_heal_rejoins(self):
        """Selective frame loss: only ``heartbeat`` frames are dropped —
        the TCP link stays up, yet the controller hears silence and
        evicts.  Healing the link lets the very same agent rejoin."""
        procs = []
        try:
            controller, host, port = spawn_controller(
                heartbeat_timeout=2.0
            )
            procs.append(controller)
            with VerbProxy(host, port) as proxy:
                proxy_host, proxy_port = proxy.address
                worker = spawn_worker(proxy_host, proxy_port, "lossy-a")
                procs.append(worker)
                with _client(host, port) as client:
                    _workers(client, 1)
                    proxy.drop("heartbeat")
                    status = _workers(client, 0)
                    assert status["evictions"] >= 1
                    assert proxy.dropped.get("heartbeat", 0) >= 1
                    proxy.heal()
                    # the agent's hung heartbeat must first time out
                    # (its frame was dropped, so no answer ever comes),
                    # then the retry passes and `known: false` triggers
                    # the re-register
                    status = _workers(client, 1, timeout=60.0)
                    member = status["members"][0]
                    assert member["name"] == "lossy-a"
                    assert member["agent_generation"] >= 2
        finally:
            for proc in procs:
                proc.terminate()


class TestControllerColdRestart:
    def test_controller_restart_recovers_from_reregistration(self):
        """SIGKILL the controller, restart it cold on the same address:
        the new process knows nobody, the agents' heartbeat loops fail
        over and re-register, the repair pass rebuilds replicas — and a
        retrying client sees zero failed requests end to end."""
        procs = []
        fixed_port = free_port()
        try:
            controller, host, port = spawn_controller(
                port=fixed_port, heartbeat_timeout=2.0
            )
            procs.append(controller)
            for name in ("cold-a", "cold-b", "cold-c"):
                procs.append(spawn_worker(host, port, name))
            with _client(host, port) as client:
                _workers(client, 3)
                for i in range(6):
                    client.put_instance(
                        f"ref-{i}", _class_instance(i), version=4
                    )
                _drained(client)

            controller.kill()
            replacement, host, port = spawn_controller(
                port=fixed_port, heartbeat_timeout=2.0
            )
            procs.append(replacement)

            # a fresh client per attempt: the old connection died with
            # the old process, and that must not count as a failure
            def _recovered():
                with _client(host, port, timeout=10.0) as probe:
                    status = _cluster_status(probe)
                    return status if status["workers"] == 3 else None

            status = _await(_recovered, timeout=60.0)
            assert sorted(m["name"] for m in status["members"]) == [
                "cold-a", "cold-b", "cold-c"
            ]

            with _client(host, port) as client:
                failures = []
                for i in range(6):
                    try:
                        result = _await(lambda i=i: client.request(
                            "decide", problem=_class_problem(i),
                            instance_ref=f"ref-{i}",
                        ))
                    except AssertionError:
                        failures.append(f"ref-{i}")
                        continue
                    assert result["instance"]["version"] == 4
                assert failures == [], (
                    f"refs lost across controller restart: {failures}"
                )
                _drained(client)  # replicas rebuilt on the new watch
        finally:
            for proc in procs:
                proc.terminate()


class TestRollingRestart:
    def test_drill_completes_with_zero_failed_decides(self):
        """`repro fleet rolling-restart` drains and rejoins each worker
        in turn while a client hammers ref decides — every decide must
        eventually answer (retries allowed, definitive failures not)."""
        import subprocess
        import sys

        from tests.chaos import PYTHON, REPO_ROOT, chaos_env

        procs = []
        try:
            controller, host, port = spawn_controller(
                heartbeat_timeout=5.0
            )
            procs.append(controller)
            for name in ("roll-a", "roll-b", "roll-c"):
                procs.append(spawn_worker(host, port, name))
            with _client(host, port) as client:
                _workers(client, 3)
                for i in range(6):
                    client.put_instance(f"ref-{i}", _class_instance(i))
                _drained(client)

                stop = threading.Event()
                failures: list[str] = []
                decided = [0]

                def _hammer():
                    with _client(host, port, timeout=10.0) as hammer:
                        i = 0
                        while not stop.is_set():
                            ref = f"ref-{i % 6}"
                            try:
                                _await(lambda: hammer.request(
                                    "decide",
                                    problem=_class_problem(i % 6),
                                    instance_ref=ref,
                                ), timeout=20.0, interval=0.05)
                                decided[0] += 1
                            except AssertionError:
                                failures.append(ref)
                            i += 1

                thread = threading.Thread(target=_hammer, daemon=True)
                thread.start()
                drill = subprocess.run(
                    [
                        PYTHON, "-m", "repro", "fleet", "rolling-restart",
                        "--connect", f"{host}:{port}",
                        "--step-timeout", "60",
                    ],
                    cwd=REPO_ROOT, env=chaos_env(),
                    capture_output=True, text=True, timeout=240,
                )
                stop.set()
                thread.join(timeout=30)
                assert drill.returncode == 0, (
                    f"drill failed:\n{drill.stdout}\n{drill.stderr}"
                )
                assert failures == [], (
                    f"decides failed during the drill: {failures}"
                )
                assert decided[0] > 0

                status = _workers(client, 3)
                # every worker rejoined: its agent bumped its own counter
                for member in status["members"]:
                    assert member["agent_generation"] >= 2, member
                for i in range(6):
                    _, version = client.get_instance(f"ref-{i}")
                    assert version == 1
        finally:
            for proc in procs:
                proc.terminate()
