"""Tests for ref replication (`repro.cluster.replication` + the wire).

Four layers, bottom up: the ring successor property that makes
promotion a local move; the replica maintenance verbs on a single
server; the pure repair planner driven through random join/leave/evict
histories (the owner+successor invariant as a property test); and the
live cluster paths — asynchronous mirroring, eviction → promotion with
versions preserved, and the graceful-leave mutation gate that closes
the silent-loss window.
"""

import random
import threading
import time

import pytest

from repro.cluster import ClusterMembership, plan_replica_repairs
from repro.cluster.controller import ClusterEngine, ClusterServer
from repro.db.facts import Fact
from repro.exceptions import RemoteError
from repro.serve import BackgroundServer, HashRing, ServeClient, ServerConfig
from repro.serve.shard import ref_digest
from repro.store.delta import Delta

from tests.test_cluster import (
    SECRET,
    _agent,
    _class_instance,
    _class_problem,
    _wait_for_workers,
)


def _controller_factory(heartbeat_timeout: float = 1.0, **kwargs):
    def factory(config: ServerConfig) -> ClusterServer:
        return ClusterServer(
            config,
            membership=ClusterMembership(
                heartbeat_timeout=heartbeat_timeout
            ),
            **kwargs,
        )

    return factory


class TestSuccessor:
    def test_single_member_ring_has_no_successor(self):
        assert HashRing(1, names=("solo",)).successor_for("d" * 16) is None

    def test_successor_is_distinct_from_owner(self):
        ring = HashRing(4, names=("a", "b", "c", "d"))
        for i in range(500):
            digest = ref_digest(f"key-{i}")
            owner = ring.shard_for(digest)
            succ = ring.successor_for(digest)
            assert succ is not None and succ != owner

    def test_successor_becomes_owner_when_owner_leaves(self):
        # THE property replication rests on: remove the owner's name and
        # the old successor is the new owner — so an eviction's orphaned
        # refs already live (as replicas) on the worker that now owns them
        names = ("a", "b", "c", "d")
        ring = HashRing(4, names=names)
        for i in range(500):
            digest = ref_digest(f"key-{i}")
            owner = ring.names[ring.shard_for(digest)]
            succ = ring.names[ring.successor_for(digest)]
            survivors = tuple(n for n in names if n != owner)
            shrunk = HashRing(3, names=survivors)
            assert shrunk.names[shrunk.shard_for(digest)] == succ


class TestReplicaVerbs:
    """The wire surface on one thread-mode server (store + side-store)."""

    def test_snapshot_delta_and_drop(self):
        with BackgroundServer(ServerConfig(shards=1)) as server:
            with ServeClient(*server.address) as client:
                r = client.request(
                    "replicate", instance_ref="r1",
                    instance=_class_instance(1), version=5,
                )
                assert r["replica"] is True and r["version"] == 5
                got = client.request("replica_get", instance_ref="r1")
                assert got["version"] == 5
                # the delta that produces version 6 applies on a 5-replica
                delta = Delta.of(adds=[Fact("R", ("x", "y"), 1)])
                r = client.request(
                    "replicate", instance_ref="r1", delta=delta, version=6
                )
                assert r["version"] == 6
                # a replayed (or stale) delta conflicts instead of forking
                with pytest.raises(RemoteError) as excinfo:
                    client.request(
                        "replicate", instance_ref="r1", delta=delta,
                        version=6,
                    )
                assert excinfo.value.code == "conflict"
                inventory = client.request("replica_inventory")
                assert [e["ref"] for e in inventory["replicas"]] == ["r1"]
                # replicas never shadow the primary surface
                assert client.list_instances()["instances"] == []
                r = client.request("replicate", instance_ref="r1")
                assert r["replica"] is False and r["dropped"] is True
                with pytest.raises(RemoteError) as excinfo:
                    client.request("replica_get", instance_ref="r1")
                assert excinfo.value.code == "unknown-instance"

    def test_promote_moves_replica_into_primary(self):
        with BackgroundServer(ServerConfig(shards=1)) as server:
            with ServeClient(*server.address) as client:
                client.request(
                    "replicate", instance_ref="r2",
                    instance=_class_instance(2), version=9,
                )
                r = client.request("promote", instance_ref="r2")
                assert r["promoted"] is True and r["version"] == 9
                _, version = client.get_instance("r2")
                assert version == 9  # version preserved across promotion
                assert client.request("replica_inventory")["replicas"] == []
                # idempotent: nothing left to promote
                r = client.request("promote", instance_ref="r2")
                assert r["promoted"] is False and r["version"] == 9

    def test_promote_never_downgrades_a_newer_primary(self):
        with BackgroundServer(ServerConfig(shards=1)) as server:
            with ServeClient(*server.address) as client:
                client.put_instance("r3", _class_instance(3), version=7)
                client.request(
                    "replicate", instance_ref="r3",
                    instance=_class_instance(3), version=4,
                )
                r = client.request("promote", instance_ref="r3")
                assert r["promoted"] is False and r["version"] == 7
                _, version = client.get_instance("r3")
                assert version == 7


class _ModelFleet:
    """A pure model of worker stores for driving the repair planner."""

    def __init__(self):
        self.primaries: dict[str, dict[str, int]] = {}
        self.replicas: dict[str, dict[str, int]] = {}

    def ring(self, names: list[str]) -> HashRing | None:
        return (
            HashRing(len(names), names=names) if names else None
        )

    def apply(self, action) -> None:
        if action.kind == "promote":
            version = self.replicas[action.worker].pop(action.ref)
            held = self.primaries[action.worker].get(action.ref)
            if held is None or held < version:
                self.primaries[action.worker][action.ref] = version
        elif action.kind in ("copy_primary", "replicate"):
            census = (
                self.primaries if action.source_primary else self.replicas
            )
            version = census[action.source][action.ref]
            assert version == action.version, "planner read a phantom copy"
            target = (
                self.primaries if action.kind == "copy_primary"
                else self.replicas
            )
            target[action.worker][action.ref] = version
        elif action.kind == "drop_primary":
            self.primaries[action.worker].pop(action.ref, None)
        else:  # drop_replica
            self.replicas[action.worker].pop(action.ref, None)


class TestRepairPlannerProperty:
    """Satellite: random join/leave/evict histories keep the invariant —
    every live ref has exactly one owner-held primary and one replica on
    a distinct successor (n >= 2), never both on the same worker."""

    def _assert_invariant(self, model, names, live_refs):
        ring = model.ring(names)
        for ref in sorted(live_refs):
            digest = ref_digest(ref)
            owner = ring.names[ring.shard_for(digest)]
            holders = [
                w for w, held in model.primaries.items() if ref in held
            ]
            assert holders == [owner], (
                f"{ref}: primaries on {holders}, ring owner {owner}"
            )
            succ_index = ring.successor_for(digest)
            replica_holders = [
                w for w, held in model.replicas.items() if ref in held
            ]
            if succ_index is None:
                assert replica_holders == []
                continue
            succ = ring.names[succ_index]
            assert replica_holders == [succ], (
                f"{ref}: replicas on {replica_holders}, successor {succ}"
            )
            assert succ != owner
            assert (
                model.replicas[succ][ref] == model.primaries[owner][ref]
            ), f"{ref}: replica version diverged"

    def _repair(self, model, names):
        ring = model.ring(names)
        if ring is None:
            return
        plan = plan_replica_repairs(ring, model.primaries, model.replicas)
        for action in plan:
            model.apply(action)
        # convergence: a repaired fleet has nothing left to repair
        assert plan_replica_repairs(
            ring, model.primaries, model.replicas
        ) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_random_histories_preserve_the_invariant(self, seed):
        rng = random.Random(seed)
        model = _ModelFleet()
        names: list[str] = []
        live_refs: set[str] = set()
        next_worker = 0
        versions = {f"ref-{i}": 1 for i in range(16)}

        def add_worker(name, stale_state=False):
            model.primaries.setdefault(name, {})
            model.replicas.setdefault(name, {})
            if stale_state:
                # a rejoiner may come back holding old copies: strictly
                # older versions the planner must treat as stale
                for ref in rng.sample(sorted(live_refs),
                                      k=min(3, len(live_refs))):
                    model.primaries[name][ref] = max(
                        1, versions[ref] - 1
                    )
            names.append(name)

        for _ in range(3):
            add_worker(f"w{next_worker}")
            next_worker += 1
        ring = model.ring(names)
        for ref in versions:
            owner = ring.names[ring.shard_for(ref_digest(ref))]
            model.primaries[owner][ref] = versions[ref]
            live_refs.add(ref)
        self._repair(model, names)
        self._assert_invariant(model, names, live_refs)

        for _ in range(24):
            event = rng.choice(["join", "leave", "evict", "patch"])
            if event == "join" and len(names) < 6:
                rejoin = rng.random() < 0.3 and next_worker > 3
                name = (
                    f"w{rng.randrange(next_worker)}" if rejoin
                    else f"w{next_worker}"
                )
                if name in names:
                    continue
                add_worker(name, stale_state=rejoin)
                if not rejoin:
                    next_worker += 1
            elif event == "patch" and live_refs:
                # a primary mutation lands on the owner, and (as the
                # mirror pipeline would) on the successor replica
                ref = rng.choice(sorted(live_refs))
                versions[ref] += 1
                ring = model.ring(names)
                owner = ring.names[ring.shard_for(ref_digest(ref))]
                model.primaries[owner][ref] = versions[ref]
                succ_index = ring.successor_for(ref_digest(ref))
                if succ_index is not None:
                    succ = ring.names[succ_index]
                    model.replicas[succ][ref] = versions[ref]
                continue  # no membership change, no repair needed
            elif event == "leave" and len(names) > 1:
                name = rng.choice(names)
                names.remove(name)
                # graceful drain: primaries migrate to post-shrink owners
                ring = model.ring(names)
                for ref, version in model.primaries[name].items():
                    owner = ring.names[ring.shard_for(ref_digest(ref))]
                    held = model.primaries[owner].get(ref)
                    if held is None or held < version:
                        model.primaries[owner][ref] = version
                del model.primaries[name]
                del model.replicas[name]
            elif event == "evict" and len(names) > 1:
                name = rng.choice(names)  # crash: everything it held dies
                names.remove(name)
                del model.primaries[name]
                del model.replicas[name]
            else:
                continue
            self._repair(model, names)
            self._assert_invariant(model, names, live_refs)


class _RepairWire:
    """In-memory worker stores answering every verb the repair pass
    issues, with injectable per-``(worker, verb)`` failures — lets the
    safety tests wedge one wire call without real sockets."""

    def __init__(self, names):
        self.names = list(names)
        self.primaries = {n: {} for n in names}  # name -> ref -> version
        self.replicas = {n: {} for n in names}
        self.fail: set[tuple[str, str]] = set()

    def request(self, shard, verb, **payload):
        name = self.names[shard]
        if (name, verb) in self.fail:
            raise OSError(f"injected failure: {name} {verb}")
        ref = payload.get("instance_ref")
        if verb == "instance_list":
            return {"instances": [
                {"ref": r, "version": v, "facts": 0, "bytes": 0}
                for r, v in self.primaries[name].items()
            ]}
        if verb == "replica_inventory":
            return {"replicas": [
                {"ref": r, "version": v, "facts": 0, "bytes": 0}
                for r, v in self.replicas[name].items()
            ]}
        if verb == "instance_get":
            if ref not in self.primaries[name]:
                raise RemoteError("unknown-instance", ref)
            return {"instance": None, "version": self.primaries[name][ref]}
        if verb == "replica_get":
            if ref not in self.replicas[name]:
                raise RemoteError("unknown-instance", ref)
            return {"instance": None, "version": self.replicas[name][ref]}
        if verb == "instance_put":
            self.primaries[name][ref] = payload["version"]
            return {"instance": {"ref": ref, "version": payload["version"]}}
        if verb == "replicate":
            if payload.get("version") is None:
                return {"replica": False,
                        "dropped": self.replicas[name].pop(ref, None)
                        is not None}
            self.replicas[name][ref] = payload["version"]
            return {"replica": True, "version": payload["version"]}
        if verb == "instance_drop":
            return {"dropped": self.primaries[name].pop(ref, None)
                    is not None}
        if verb == "promote":
            version = self.replicas[name].pop(ref, None)
            if version is None:
                return {"promoted": False}
            self.primaries[name][ref] = version
            return {"promoted": True, "version": version}
        raise AssertionError(f"unexpected verb {verb!r}")


def _stub_engine(names, wire) -> ClusterEngine:
    """A ClusterEngine whose wire is the in-memory :class:`_RepairWire`
    (generous heartbeat: the background loops stay out of the way)."""
    membership = ClusterMembership(heartbeat_timeout=60.0)
    engine = ClusterEngine(membership, replication=True)
    for name in names:
        membership.register(name, "127.0.0.1", 9)
    engine._ring = HashRing(len(names), names=tuple(names))
    engine._request = wire.request
    return engine


class TestRepairSafety:
    """The repair pass must never destroy data it failed to move: a
    failed copy keeps its source, and an unreadable census defers the
    whole pass instead of being planned against as 'holds nothing'."""

    def test_failed_copy_never_drops_the_only_fresh_copy(self):
        names = ("ra", "rb", "rc")
        wire = _RepairWire(names)
        engine = _stub_engine(names, wire)
        try:
            ring = engine._require_ring()
            # the ref's only copy sits as a stray primary off-owner (the
            # post-rebalance shape a repair pass exists to fix)
            ref = "stranded"
            owner = ring.names[ring.shard_for(ref_digest(ref))]
            stray = next(n for n in names if n != owner)
            wire.primaries[stray][ref] = 9
            # the copy to the new owner fails transiently: the planned
            # drop_primary on the stray must NOT run — it holds the only
            # freshest copy
            wire.fail.add((owner, "instance_put"))
            engine.repair_now()
            assert wire.primaries[stray].get(ref) == 9
            assert engine._repair_pending is True
            # the wire heals; the retried pass converges with the
            # version intact
            wire.fail.clear()
            engine.repair_now()
            assert engine._repair_pending is False
            assert wire.primaries[owner][ref] == 9
            assert ref not in wire.primaries[stray]
            succ = ring.names[ring.successor_for(ref_digest(ref))]
            assert wire.replicas[succ][ref] == 9
        finally:
            engine.close()

    def test_census_failure_defers_the_whole_pass(self):
        names = ("ca", "cb")
        wire = _RepairWire(names)
        engine = _stub_engine(names, wire)
        try:
            ring = engine._require_ring()
            ref = "census-ref"
            owner = ring.names[ring.shard_for(ref_digest(ref))]
            other = next(n for n in names if n != owner)
            wire.primaries[owner][ref] = 3
            # the other member holds a NEWER copy but its census is down:
            # planning would treat it as empty and roll the ref back
            wire.primaries[other][ref] = 5
            wire.fail.add((other, "instance_list"))
            engine.repair_now()
            assert engine._repair_pending is True
            assert wire.primaries[other][ref] == 5  # untouched
            assert all(not held for held in wire.replicas.values())
            wire.fail.clear()
            engine.repair_now()
            assert engine._repair_pending is False
            assert wire.primaries[owner][ref] == 5  # the newer copy won
            succ = ring.names[ring.successor_for(ref_digest(ref))]
            assert wire.replicas[succ][ref] == 5
        finally:
            engine.close()

    def test_eviction_aborts_doomed_sockets_before_the_rebalance_lock(self):
        """A mutation wedged on a frozen worker holds the rebalance lock
        for its whole wire timeout; the eviction sweep's socket abort
        must land *without* waiting for that lock, or it could never
        break the very stall it exists to break."""
        membership = ClusterMembership(heartbeat_timeout=0.2)
        engine = ClusterEngine(membership, replication=False)
        try:
            membership.register("wedge-a", "127.0.0.1", 9)
            engine._ring = HashRing(1, names=("wedge-a",))
            aborted = threading.Event()
            engine._abort_connections = lambda generations: aborted.set()
            held = threading.Event()
            release = threading.Event()

            def wedged_mutation():
                with engine._rebalance_lock:
                    held.set()
                    release.wait(10.0)

            holder = threading.Thread(target=wedged_mutation, daemon=True)
            holder.start()
            assert held.wait(5.0)
            # the member goes stale while the lock is wedged; the
            # background sweep must abort its sockets anyway — with the
            # abort inside the lock this event could only fire after
            # `release`, and the assertion below would time out
            assert aborted.wait(5.0), (
                "the sweep never aborted the stale worker's sockets "
                "while the rebalance lock was held"
            )
            # the eviction itself still serializes behind the lock
            assert membership.n_workers == 1
            release.set()
            holder.join(10.0)
            deadline = time.monotonic() + 5.0
            while membership.n_workers and time.monotonic() < deadline:
                time.sleep(0.02)
            assert membership.n_workers == 0
        finally:
            engine.close()

    def test_stale_members_is_a_pure_peek(self):
        now = [0.0]
        m = ClusterMembership(heartbeat_timeout=1.0, clock=lambda: now[0])
        m.register("peek-a", "127.0.0.1", 1)
        m.register("peek-b", "127.0.0.1", 2)
        now[0] = 0.5
        m.heartbeat("peek-b")
        now[0] = 1.2
        stale = m.stale_members()
        assert [h.name for h in stale] == ["peek-a"]
        # no eviction, no epoch bump: the peek mutates nothing
        assert m.n_workers == 2
        assert m.ring_epoch == 2


class TestInventoryFanout:
    def test_one_unreachable_worker_yields_partial_inventory(self):
        from repro.serve.fleet import BaseWorkerFleet

        class _Provider:
            n_workers = 2

            def stop(self):
                pass

        fleet = BaseWorkerFleet(_Provider(), HashRing(2))

        def fake_request(shard, verb, **payload):
            assert verb == "replica_inventory"
            if shard == 0:
                raise OSError("unreachable")
            return {"replicas": [{"ref": "r1", "version": 2}]}

        fleet._request = fake_request
        inventory = fleet.replica_inventory()
        assert inventory["unreachable"] == [0]
        assert inventory["replicas"] == [
            {"ref": "r1", "version": 2, "worker": 1}
        ]


class TestLiveReplication:
    """Mirroring, promotion and the leave-window gate over real TCP."""

    def _start(self, ctrl, names, client):
        agents = [_agent(ctrl.address, name).start() for name in names]
        _wait_for_workers(client, len(names))
        return agents

    def test_eviction_promotes_replicas_and_preserves_versions(self):
        config = ServerConfig(shards=2, linger_ms=0.0, auth_secret=SECRET)
        factory = _controller_factory(heartbeat_timeout=1.0)
        with BackgroundServer(config, server_factory=factory) as ctrl:
            with ServeClient(
                *ctrl.address, auth_secret=SECRET, timeout=30.0
            ) as client:
                agents = self._start(
                    ctrl, ["rep-a", "rep-b", "rep-c"], client
                )
                try:
                    self._evict_scenario(ctrl, client, agents)
                finally:
                    for agent in agents:
                        agent.stop(deregister=False)

    def _evict_scenario(self, ctrl, client, agents):
        engine = ctrl.server.cluster_engine
        for i in range(9):
            client.put_instance(f"ref-{i}", _class_instance(i), version=7)
        assert engine.flush_replication(timeout=30.0)

        # every ref is mirrored on its distinct ring successor
        inventory = client.request("replica_inventory")["replicas"]
        mirrored = {e["ref"]: e["version"] for e in inventory}
        assert set(mirrored) == {f"ref-{i}" for i in range(9)}
        assert all(version == 7 for version in mirrored.values())
        ring = engine._require_ring()
        for i in range(9):
            digest = ref_digest(f"ref-{i}")
            assert ring.successor_for(digest) != ring.shard_for(digest)

        # SIGKILL-equivalent: the owner of ref-0 vanishes silently
        victim = ring.names[engine.shard_for_ref("ref-0")]
        victim_agent = next(a for a in agents if a.name == victim)
        orphans = [
            f"ref-{i}" for i in range(9)
            if ring.names[engine.shard_for_ref(f"ref-{i}")] == victim
        ]
        victim_agent.kill()
        status = _wait_for_workers(client, 2, timeout=15.0)
        assert status["replication"]["promotions"] >= len(orphans)

        # the acceptance bar: decides on the dead worker's refs answer
        # from the promoted replicas, versions intact — no re-put needed
        for i in range(9):
            _, version = client.get_instance(f"ref-{i}")
            assert version == 7
            result = client.request(
                "decide", problem=_class_problem(i),
                instance_ref=f"ref-{i}",
            )
            assert result["decision"]["certain"] is True
            assert result["instance"]["version"] == 7

        # and the orphans were re-replicated onto the shrunk ring
        assert engine.flush_replication(timeout=30.0)
        inventory = client.request("replica_inventory")["replicas"]
        assert {e["ref"] for e in inventory} == {
            f"ref-{i}" for i in range(9)
        }
        page = client.metrics()
        assert "repro_cluster_promotions_total" in page
        assert "repro_cluster_replications_total" in page

    def test_patch_during_leave_lands_exactly_once(self):
        """Satellite: the silent-loss window.  A patch racing a graceful
        leave must land exactly once, on exactly one owner, at the right
        version — the mutation gate serializes it against the migration
        instead of letting it apply on the leaver after the snapshot."""
        config = ServerConfig(shards=2, linger_ms=0.0, auth_secret=SECRET)
        factory = _controller_factory(heartbeat_timeout=30.0)
        with BackgroundServer(config, server_factory=factory) as ctrl:
            with ServeClient(
                *ctrl.address, auth_secret=SECRET, timeout=30.0
            ) as client:
                agents = self._start(ctrl, ["gate-a", "gate-b"], client)
                try:
                    self._leave_race(ctrl, client)
                finally:
                    for agent in agents:
                        agent.stop(deregister=False)

    def _leave_race(self, ctrl, client):
        engine = ctrl.server.cluster_engine
        ring = engine._require_ring()
        # a ref owned by the worker that will leave
        leaver = "gate-a"
        ref = next(
            f"race-{i}" for i in range(100)
            if ring.names[ring.shard_for(ref_digest(f"race-{i}"))] == leaver
        )
        client.put_instance(ref, _class_instance(1))
        assert engine.flush_replication(timeout=30.0)

        migration_started = threading.Event()
        original = engine._collect_leaver_refs

        def stalled_collect(shard, new_ring):
            moves = original(shard, new_ring)
            migration_started.set()
            time.sleep(0.8)  # hold the window open: snapshot taken, not
            return moves     # yet re-homed — the classic loss interval

        engine._collect_leaver_refs = stalled_collect
        leave = threading.Thread(
            target=engine.deregister_worker, args=(leaver,)
        )
        leave.start()
        assert migration_started.wait(timeout=20.0)
        # the patch arrives inside the migration window
        delta = Delta.of(adds=[Fact("R", ("x", "y"), 1)])
        result = client.request(
            "instance_patch", instance_ref=ref, delta=delta,
            expect_version=1,
        )
        leave.join(timeout=30)
        assert not leave.is_alive()
        assert result["instance"]["version"] == 2

        # exactly one copy, on the survivor, at the patched version
        listing = client.list_instances()["instances"]
        copies = [e for e in listing if e["ref"] == ref]
        assert len(copies) == 1 and copies[0]["version"] == 2
        assert (
            engine._require_ring().names[engine.shard_for_ref(ref)]
            == "gate-b"
        )
        doc, version = client.get_instance(ref)
        assert version == 2
        assert any(
            fact.relation == "R" and fact.values == ("x", "y")
            for fact in doc.facts
        ), "the racing patch's facts must survive the migration"

    def test_replication_off_restores_the_lossy_contract(self):
        config = ServerConfig(shards=2, linger_ms=0.0, auth_secret=SECRET)
        factory = _controller_factory(
            heartbeat_timeout=1.0, replication=False
        )
        with BackgroundServer(config, server_factory=factory) as ctrl:
            with ServeClient(
                *ctrl.address, auth_secret=SECRET, timeout=30.0
            ) as client:
                agents = self._start(ctrl, ["off-a", "off-b"], client)
                try:
                    engine = ctrl.server.cluster_engine
                    for i in range(8):
                        client.put_instance(f"ref-{i}", _class_instance(i))
                    ring = engine._require_ring()
                    victim = "off-a"
                    orphan = next(
                        f"ref-{i}" for i in range(8)
                        if ring.names[engine.shard_for_ref(f"ref-{i}")]
                        == victim
                    )
                    status = client.stats()["server"]["cluster"]
                    assert status["replication"]["enabled"] is False
                    assert (
                        client.request("replica_inventory")["replicas"]
                        == []
                    )
                    next(
                        a for a in agents if a.name == victim
                    ).kill()
                    _wait_for_workers(client, 1, timeout=15.0)
                    with pytest.raises(RemoteError) as excinfo:
                        client.request(
                            "decide", problem=_class_problem(0),
                            instance_ref=orphan,
                        )
                    assert excinfo.value.code == "unknown-instance"
                finally:
                    for agent in agents:
                        agent.stop(deregister=False)
