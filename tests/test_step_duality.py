"""Per-step duality: each reduction's two realizations commute.

For every Fig. 4 step with both realizations, and any formula φ over the
*reduced* schema,

    ``evaluate(translate(φ), db)  ==  evaluate(φ, transform_instance(db))``

— the backward formula transformation and the forward instance
transformation are two views of the same first-order reduction.  The
global three-way agreement tests cover the composition; this module pins
down each step individually, which is what localizes a bug when one
appears.
"""

import random

import pytest

from repro.core.foreign_keys import ForeignKey, fk_set
from repro.core.query import parse_query
from repro.core.reductions import (
    do_removal_step,
    oo_removal_step,
)
from repro.core.rewriting_pk import rewrite_primary_keys
from repro.core.rewriting import consistent_rewriting
from repro.core.terms import FreshVariableFactory
from repro.fo import Evaluator
from tests.conftest import random_db


def _duality_check(query, fks, step, seed, trials=80):
    """φ := the rewriting of the reduced problem; compare both routes."""
    inner = consistent_rewriting(step.query_after, step.fks_after).formula
    translated = step.translate(inner)
    rng = random.Random(seed)
    for _ in range(trials):
        db = random_db(query, rng, domain=(0, 1, "c"))
        via_formula = Evaluator(db).evaluate(translated)
        reduced_db = step.transform_instance(db, {})
        via_instance = Evaluator(reduced_db).evaluate(inner)
        assert via_formula == via_instance, (
            f"{step!r}\n{db.pretty()}\nreduced:\n{reduced_db.pretty()}"
        )


class TestLemma37Duality:
    def test_single_oo(self):
        q = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q, "R[2]->S")
        step = oo_removal_step(
            q, fks, ForeignKey("R", 2, "S"),
            FreshVariableFactory({v.name for v in q.variables}),
        )
        _duality_check(q, fks, step, seed=37)

    def test_oo_with_side_atom(self):
        q = parse_query("R(x | y)", "S(y | z)", "P(x | w)")
        fks = fk_set(q, "R[2]->S")
        step = oo_removal_step(
            q, fks, ForeignKey("R", 2, "S"),
            FreshVariableFactory({v.name for v in q.variables}),
        )
        _duality_check(q, fks, step, seed=38)


class TestLemma40Duality:
    def test_example43_step(self):
        q = parse_query("Y(y |)", "N(x | y, u)", "O(y |)")
        fks = fk_set(q, "N[2]->O")
        step = do_removal_step(
            q, fks, ForeignKey("N", 2, "O"),
            FreshVariableFactory({v.name for v in q.variables}),
        )
        _duality_check(q, fks, step, seed=40)


class TestIdentitySteps:
    @pytest.mark.parametrize("kind", ["weak", "dd"])
    def test_identity_translate_means_identity_transform(self, kind):
        if kind == "weak":
            q = parse_query("A(x | y)", "B(x | z)")
            fks = fk_set(q, "A[1]->B")
            from repro.core.reductions import weak_removal_step

            step = weak_removal_step(q, fks, "B")
        else:
            q = parse_query("R(x | y)", "S(y | z)", "P(y |)", "Q(z |)")
            fks = fk_set(q, "R[2]->S")
            from repro.core.reductions import dd_removal_step

            step = dd_removal_step(q, fks, ForeignKey("R", 2, "S"))
        formula = rewrite_primary_keys(step.query_after)
        assert step.translate(formula) is formula
        rng = random.Random(3)
        db = random_db(q, rng)
        assert step.transform_instance(db, {}) == db
