"""Documentation integrity: the docs tree exists, intra-repo links
resolve, and the runnable quickstart snippets are present.

The heavier check — actually executing the ``bash doc-test`` snippets —
runs in CI's docs job and locally via ``python tools/check_docs.py``;
here we keep the tier-1 suite fast and assert everything that does not
need subprocesses.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


def test_required_documents_exist():
    for name in ("architecture.md", "protocol.md", "backends.md",
                 "deployment.md"):
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} missing"
    assert (REPO_ROOT / "README.md").is_file()


def test_intra_repo_links_resolve():
    failures = checker.check_links(checker._doc_files())
    assert not failures, "\n".join(failures)


def test_readme_quickstart_snippet_is_runnable_marked():
    snippets = checker._runnable_snippets(REPO_ROOT / "README.md")
    assert snippets, "README must keep a `bash doc-test` quickstart block"
    body = snippets[0][1]
    assert "python -m repro classify" in body


def test_readme_defers_to_docs_tree():
    text = (REPO_ROOT / "README.md").read_text()
    for name in ("docs/architecture.md", "docs/protocol.md",
                 "docs/backends.md", "docs/deployment.md"):
        assert name in text, f"README must link {name}"


def test_documented_cli_flags_exist():
    """The flags the docs lean on must parse — the drift guard for
    surfaces the snippet runner does not execute (servers, networking)."""
    from repro.cli import build_parser

    parser = build_parser()
    for argv in (
        ["serve", "--port", "0", "--processes", "2"],
        ["serve", "--port", "0", "--shards", "2", "--sql",
         "--cache-size", "64", "--max-batch", "8", "--linger-ms", "2"],
        ["decide", "-a", "R(x | y)", "db.txt",
         "--connect", "127.0.0.1:7432", "--timeout", "5"],
        ["engine", "-p", "p.json", "db.txt", "--stats", "--format", "prom"],
        ["classify", "-a", "R(x | y)", "--canonical"],
    ):
        args = parser.parse_args(argv)
        assert args.command == argv[0]
