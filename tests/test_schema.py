"""Unit tests for repro.core.schema."""

import pytest

from repro.core.schema import Schema, Signature
from repro.exceptions import SchemaError


class TestSignature:
    def test_positions(self):
        sig = Signature(4, 2)
        assert list(sig.key_positions) == [1, 2]
        assert list(sig.nonkey_positions) == [3, 4]

    def test_all_key(self):
        assert Signature(3, 3).is_all_key
        assert not Signature(3, 1).is_all_key

    def test_invalid_key_size(self):
        with pytest.raises(SchemaError):
            Signature(2, 3)
        with pytest.raises(SchemaError):
            Signature(2, 0)

    def test_invalid_arity(self):
        with pytest.raises(SchemaError):
            Signature(0, 0)


class TestSchema:
    def test_of_and_lookup(self):
        schema = Schema.of(R=(2, 1), S=(3, 2))
        assert schema["R"] == Signature(2, 1)
        assert schema["S"].key_size == 2

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            Schema.of(R=(2, 1))["T"]

    def test_add_is_persistent(self):
        schema = Schema.of(R=(2, 1))
        extended = schema.add("S", 1, 1)
        assert "S" in extended
        assert "S" not in schema

    def test_add_conflicting_signature_raises(self):
        schema = Schema.of(R=(2, 1))
        with pytest.raises(SchemaError):
            schema.add("R", 3, 1)

    def test_add_same_signature_is_noop(self):
        schema = Schema.of(R=(2, 1))
        assert schema.add("R", 2, 1) is schema

    def test_merge_disjoint(self):
        merged = Schema.of(R=(2, 1)).merge(Schema.of(S=(1, 1)))
        assert set(merged) == {"R", "S"}

    def test_merge_conflict_raises(self):
        with pytest.raises(SchemaError):
            Schema.of(R=(2, 1)).merge(Schema.of(R=(2, 2)))

    def test_positions_enumerates_all(self):
        schema = Schema.of(R=(2, 1), S=(1, 1))
        assert set(schema.positions()) == {("R", 1), ("R", 2), ("S", 1)}

    def test_restrict(self):
        schema = Schema.of(R=(2, 1), S=(1, 1))
        assert set(schema.restrict(["R"])) == {"R"}

    def test_equality(self):
        assert Schema.of(R=(2, 1)) == Schema.of(R=(2, 1))
        assert Schema.of(R=(2, 1)) != Schema.of(R=(2, 2))
