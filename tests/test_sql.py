"""Tests for the SQL compilation of rewritings (validated via SQLite)."""

import random

import pytest

from repro.core.query import parse_query
from repro.core.foreign_keys import fk_set
from repro.core.rewriting import consistent_rewriting
from repro.core.rewriting_pk import rewrite_primary_keys
from repro.core.schema import Schema
from repro.core.terms import Constant, Parameter, Variable
from repro.db import DatabaseInstance, Fact
from repro.exceptions import EvaluationError
from repro.fo import Rel, evaluate, exists
from repro.fo.sql import (
    certain_answer_via_sqlite,
    create_table_statements,
    insert_statements,
    to_sql,
)
from repro.workloads import fig1_instance, intro_query_q0, random_fo_problems
from tests.conftest import random_db


class TestSqlPieces:
    def test_create_table_statements(self):
        schema = Schema.of(R=(2, 1))
        assert create_table_statements(schema) == [
            'CREATE TABLE "R" (c1, c2)'
        ]

    def test_insert_statements(self):
        db = DatabaseInstance([Fact("R", (1, "a"), 1)])
        ((statement, values),) = insert_statements(db)
        assert "INSERT" in statement
        assert values == (1, "a")

    def test_to_sql_quotes_strings(self):
        formula = exists(
            [Variable("x")], Rel("R", (Variable("x"), Constant("o'1")))
        )
        sql = to_sql(formula, Schema.of(R=(2, 1)))
        assert "'o''1'" in sql

    def test_unsupported_value_raises(self):
        formula = Rel("R", (Constant(("tuple",)),))
        with pytest.raises(EvaluationError):
            to_sql(formula, Schema.of(R=(1, 1)))

    def test_parameters_inline(self):
        formula = Rel("R", (Parameter("p"),))
        sql = to_sql(formula, Schema.of(R=(1, 1)), {Parameter("p"): 42})
        assert "42" in sql


class TestSqliteAgreement:
    def test_fig1(self):
        q, fks = intro_query_q0()
        result = consistent_rewriting(q, fks)
        db = fig1_instance()
        assert certain_answer_via_sqlite(
            result.formula, db, q.schema()
        ) == evaluate(result.formula, db) is False

    def test_pk_rewriting_random(self):
        q = parse_query("R(x | y)", "S(y | z)")
        formula = rewrite_primary_keys(q)
        rng = random.Random(2)
        for _ in range(40):
            db = random_db(q, rng, domain=(0, 1, "a"))
            assert certain_answer_via_sqlite(
                formula, db, q.schema()
            ) == evaluate(formula, db)

    def test_fk_rewriting_random(self):
        q = parse_query("N('c' | y)", "O(y |)", "P(y |)")
        fks = fk_set(q, "N[2]->O")
        formula = consistent_rewriting(q, fks).formula
        rng = random.Random(3)
        for _ in range(40):
            db = random_db(q, rng, domain=(0, "c"))
            assert certain_answer_via_sqlite(
                formula, db, q.schema()
            ) == evaluate(formula, db)

    def test_random_fo_problems(self):
        for index, (q, fks) in enumerate(random_fo_problems(6, seed=21)):
            formula = consistent_rewriting(q, fks).formula
            rng = random.Random(index)
            for _ in range(6):
                db = random_db(q, rng, domain=(0, 1, "c"))
                assert certain_answer_via_sqlite(
                    formula, db, q.schema()
                ) == evaluate(formula, db)

    def test_empty_instance(self):
        q = parse_query("R(x | y)")
        formula = rewrite_primary_keys(q)
        assert certain_answer_via_sqlite(
            formula, DatabaseInstance(), q.schema()
        ) is False


class TestDeepRewritings:
    """Regression: 5-atom rewritings overflowed SQLite's parser stack until
    the translation learned to pull relation guards into FROM clauses."""

    def test_five_atom_pipeline_compiles_and_agrees(self):
        from repro.core.atoms import Atom
        from repro.core.foreign_keys import ForeignKey, ForeignKeySet
        from repro.core.query import ConjunctiveQuery

        x = [Variable(f"x{i}") for i in range(4)]
        c, d = Constant("c"), Constant("d")
        q = ConjunctiveQuery(
            [
                Atom("R0", (x[3], d), 1),
                Atom("R1", (x[3], x[1]), 1),
                Atom("R2", (x[1], d), 1),
                Atom("R3", (x[2], c), 1),
                Atom("R4", (x[1], d), 1),
            ]
        )
        fks = ForeignKeySet(
            [ForeignKey("R0", 1, "R1"), ForeignKey("R2", 1, "R4")],
            q.schema(),
        )
        formula = consistent_rewriting(q, fks).formula
        rng = random.Random(1)
        for _ in range(15):
            db = random_db(q, rng, domain=(0, 1, "c", "d"))
            assert certain_answer_via_sqlite(
                formula, db, q.schema()
            ) == evaluate(formula, db)

    def test_guard_extraction_uses_tables_not_adom(self):
        q = parse_query("R(x | y)", "S(y | z)")
        formula = rewrite_primary_keys(q)
        sql = to_sql(formula, q.schema())
        # the outer key quantifier ranges over R directly, not adom×adom
        assert 'FROM "R" t' in sql
