"""Tests for the Appendix E reduction steps (Fig. 4).

Each step is checked two ways: the instance transformation preserves the
certain answer (against the ⊕-oracle), and the step bookkeeping (removed
keys/atoms, preserved preconditions) matches the lemma statements.
"""

import random

import pytest

from repro.core.classify import classify
from repro.core.foreign_keys import ForeignKey, fk_set
from repro.core.interference import has_block_interference
from repro.core.query import parse_query
from repro.core.reductions import (
    dd_removal_step,
    do_removal_step,
    empty_key_case,
    fk_type,
    oo_removal_step,
    trivial_removal_step,
    weak_removal_step,
)
from repro.core.terms import FreshVariableFactory, Parameter
from repro.repairs import certain_answer
from tests.conftest import random_db


def _fresh(query):
    return FreshVariableFactory({v.name for v in query.variables})


class TestFkTypes:
    def test_weak(self):
        q = parse_query("R(x | y)", "S(x | z)")
        fks = fk_set(q, "R[1]->S")
        (fk,) = fks.foreign_keys
        assert fk_type(q, fks, fk) == "weak"

    def test_oo(self):
        q = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q, "R[2]->S")
        (fk,) = fks.foreign_keys
        assert fk_type(q, fks, fk) == "oo"

    def test_dd(self):
        # both atoms disobedient: shared variable with a third atom.
        q = parse_query("R(x | y)", "S(y | z)", "P(y |)", "Q(z |)")
        fks = fk_set(q, "R[2]->S")
        (fk,) = fks.foreign_keys
        assert fk_type(q, fks, fk) == "dd"

    def test_do(self):
        q = parse_query("Y(y |)", "N(x | y, u)", "O(y |)")
        fks = fk_set(q, "N[2]->O")
        (fk,) = fks.foreign_keys
        assert fk_type(q, fks, fk) == "do"


class TestStepBookkeeping:
    def test_weak_removal_removes_all_weak_into_target(self):
        q = parse_query("A(x | y)", "B(x | z)", "C(x | w)")
        fks = fk_set(q, "A[1]->B", "C[1]->B", "A[1]->C")
        step = weak_removal_step(q, fks, "B")
        assert set(step.removed_fks) == {
            ForeignKey("A", 1, "B"), ForeignKey("C", 1, "B"),
        }
        assert step.query_after == q

    def test_trivial_removal(self):
        q = parse_query("R(x | y)")
        fks = fk_set(q).implication_closure()
        step = trivial_removal_step(q, fks)
        assert ForeignKey("R", 1, "R") in step.removed_fks
        assert len(step.fks_after) == 0

    def test_oo_removes_target_atom(self):
        q = parse_query("R(x | y)", "S(y | z)")
        fks = fk_set(q, "R[2]->S")
        (fk,) = fks.foreign_keys
        step = oo_removal_step(q, fks, fk, _fresh(q))
        assert step.removed_atoms == ("S",)
        assert step.query_after.relations == {"R"}

    def test_do_removes_target_atom(self):
        q = parse_query("Y(y |)", "N(x | y, u)", "O(y |)")
        fks = fk_set(q, "N[2]->O")
        (fk,) = fks.foreign_keys
        step = do_removal_step(q, fks, fk, _fresh(q))
        assert step.removed_atoms == ("O",)
        assert step.query_after.relations == {"Y", "N"}

    def test_empty_key_case_freezes_atom_variables(self):
        q = parse_query("N('c' | y)", "O(y |)", "P(y |)")
        fks = fk_set(q, "N[2]->O")
        case = empty_key_case(q, fks, "N")
        assert set(case.removed_relations) == {"N", "O"}
        assert case.inner_query.relations == {"P"}
        assert Parameter("y") in case.inner_query.parameters

    def test_interference_preserved_by_steps(self):
        """The helping lemmas' second items: no step creates interference."""
        q = parse_query("R(x | y)", "S(y | z)", "T(z | w)")
        fks = fk_set(q, "R[2]->S", "S[2]->T").implication_closure()
        assert not has_block_interference(q, fks)
        step = trivial_removal_step(q, fks)
        q, fks = step.query_after, step.fks_after
        while len(fks):
            types = {fk: fk_type(q, fks, fk) for fk in fks}
            fk = sorted(fks, key=repr)[0]
            if types[fk] == "oo" and not fks.outgoing(fk.target):
                step = oo_removal_step(q, fks, fk, _fresh(q))
            elif types[fk] == "dd":
                step = dd_removal_step(q, fks, fk)
            else:
                break
            q, fks = step.query_after, step.fks_after
            assert not has_block_interference(q, fks)


def _transform_preserves_certainty(atoms, fk_texts, make_step, trials=100):
    q = parse_query(*atoms)
    fks = fk_set(q, *fk_texts).implication_closure()
    trivial = trivial_removal_step(q, fks)
    q, fks = trivial.query_after, trivial.fks_after
    step = make_step(q, fks)
    rng = random.Random(hash(tuple(atoms)) & 0xFFFF)
    for _ in range(trials):
        db = random_db(q, rng, domain=(0, 1, "c"))
        before = certain_answer(q, fks, db).certain
        transformed = step.transform_instance(db, {})
        after = certain_answer(
            step.query_after, step.fks_after, transformed
        ).certain
        assert before == after, (
            f"{step!r}\nbefore:\n{db.pretty()}\nafter:\n{transformed.pretty()}"
        )


class TestInstanceTransformationsPreserveCertainty:
    """Each lemma's first item: the reduction is answer-preserving."""

    def test_lemma36_weak(self):
        q = parse_query("A(x | y)", "B(x | z)")
        _transform_preserves_certainty(
            ["A(x | y)", "B(x | z)"], ["A[1]->B"],
            lambda q, fks: weak_removal_step(q, fks, "B"),
        )

    def test_lemma37_oo(self):
        _transform_preserves_certainty(
            ["R(x | y)", "S(y | z)"], ["R[2]->S"],
            lambda q, fks: oo_removal_step(
                q, fks, ForeignKey("R", 2, "S"), _fresh(q)
            ),
        )

    def test_lemma37_oo_with_chain(self):
        _transform_preserves_certainty(
            ["R(x | y)", "S(y | z)", "T(z | w)"], ["R[2]->S", "S[2]->T"],
            lambda q, fks: oo_removal_step(
                q, fks, ForeignKey("S", 2, "T"), _fresh(q)
            ),
        )

    def test_lemma39_dd(self):
        _transform_preserves_certainty(
            ["R(x | y)", "S(y | z)", "P(y |)", "Q(z |)"], ["R[2]->S"],
            lambda q, fks: dd_removal_step(q, fks, ForeignKey("R", 2, "S")),
        )

    def test_lemma40_do(self):
        _transform_preserves_certainty(
            ["Y(y |)", "N(x | y, u)", "O(y |)"], ["N[2]->O"],
            lambda q, fks: do_removal_step(
                q, fks, ForeignKey("N", 2, "O"), _fresh(q)
            ),
        )


class TestPreconditionViolations:
    def test_empty_key_case_requires_constant_key(self):
        q = parse_query("N(x | y)", "O(y |)")
        fks = fk_set(q, "N[2]->O")
        with pytest.raises(Exception):
            empty_key_case(q, fks, "N")

    def test_impossible_od_type_raises(self):
        """fk_type's defensive check for o→d (cannot arise from valid input,
        so we call the internals with a crafted mismatch)."""
        q = parse_query("R(x | y)", "S(y | z)", "Q(z |)")
        fks = fk_set(q, "R[2]->S")
        # R is obedient here, S is obedient too (z also in Q makes S
        # disobedient):
        (fk,) = fks.foreign_keys
        assert fk_type(q, fks, fk) in {"oo", "dd", "do", "weak"}
