"""Oracle-agreement tests for incremental re-decision.

Each polynomial backend with an incremental state (``fo-sql``,
``nl-reachability``, ``p-dual-horn``) is driven through randomized
mutation streams against a named instance; at every step the incremental
answer must agree with a from-scratch decide of the same instance in a
fresh session.  The ``sat-repairs`` satellite backend is tested the same
way against subset-repair enumeration (both are oracles for the coNP-hard
``FK = ∅`` residue)."""

import random

import pytest

from repro.api import Problem, connect
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.solvers.sat import SatRepairSolver, solve_cnf
from repro.store import Delta


def _mutate(rng: random.Random, db: DatabaseInstance,
            pool: list[Fact]) -> Delta:
    """A random non-trivial delta toward a random subset of *pool*."""
    present = set(db.facts)
    removable = sorted(present, key=repr)
    addable = sorted(set(pool) - present, key=repr)
    removes = [f for f in removable if rng.random() < 0.25]
    adds = [f for f in addable if rng.random() < 0.25]
    if not removes and not adds:
        side = removable or addable
        fact = rng.choice(side)
        if fact in present:
            removes = [fact]
        else:
            adds = [fact]
    return Delta.of(adds=adds, removes=removes)


def _stream_agrees(problem, initial, pool, *, steps=12, seed=0,
                   session_kwargs=None, expect_backend=None,
                   expect_strategies=()):
    """Drive a mutation stream; assert incremental/oracle agreement."""
    rng = random.Random(seed)
    strategies = set()
    with connect(**(session_kwargs or {})) as live, \
            connect(**(session_kwargs or {})) as oracle:
        store = live.store
        store.put("inv", initial)
        current = initial
        decision, meta = store.decide(live, problem, "inv")
        if expect_backend:
            assert decision.backend == expect_backend
        assert decision.certain == oracle.decide(problem, current).certain
        for _ in range(steps):
            delta = _mutate(rng, current, pool)
            current = delta.apply(current)
            store.patch("inv", delta)
            decision, meta = store.decide(live, problem, "inv")
            strategies.add(meta["strategy"])
            expected = oracle.decide(problem, current).certain
            assert decision.certain == expected, (
                f"incremental={decision.certain} oracle={expected} "
                f"strategy={meta['strategy']} instance={sorted(current.facts, key=repr)}"
            )
    for strategy in expect_strategies:
        assert strategy in strategies, (
            f"expected strategy {strategy!r}, saw {strategies}"
        )


class TestSqlIncremental:
    PROBLEM = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])

    def _pool(self):
        return [
            Fact("R", (f"a{i}", f"b{j}"), 1)
            for i in range(3) for j in range(3)
        ] + [Fact("S", (f"b{j}", f"c{j % 2}"), 1) for j in range(3)]

    @pytest.mark.parametrize("seed", range(4))
    def test_mutation_stream_agrees(self, seed):
        pool = self._pool()
        rng = random.Random(100 + seed)
        initial = DatabaseInstance(
            f for f in pool if rng.random() < 0.6
        )
        _stream_agrees(
            self.PROBLEM, initial, pool, seed=seed,
            session_kwargs={"fo_backend": "sql"},
            expect_backend="fo-sql",
            expect_strategies=("sql-dml",),
        )


class TestReachabilityIncremental:
    PROBLEM = Problem.of("N(x | x)", "O(x |)", fks=["N[2]->O"])

    def _pool(self, n=5):
        pool = [Fact("N", (v, v), 1) for v in range(n)]
        pool += [
            Fact("N", (v, w), 1)
            for v in range(n) for w in range(n) if v != w
        ]
        pool += [Fact("N", (v, f"esc:{v}"), 1) for v in range(n)]
        pool += [Fact("O", (v,), 1) for v in range(n)]
        return pool

    @pytest.mark.parametrize("seed", range(4))
    def test_mutation_stream_agrees(self, seed):
        pool = self._pool()
        rng = random.Random(200 + seed)
        initial = DatabaseInstance(
            f for f in pool if rng.random() < 0.4
        )
        _stream_agrees(
            self.PROBLEM, initial, pool, seed=seed,
            expect_backend="nl-reachability",
            expect_strategies=("p16-attractor",),
        )


class TestDualHornIncremental:
    PROBLEM = Problem.of("N(x | 'c', y)", "O(y |)", fks=["N[3]->O"])

    def _pool(self, blocks=4, values=4):
        pool = []
        for b in range(blocks):
            for v in range(values):
                pool.append(Fact("N", (f"b{b}", "c", v), 1))
                pool.append(Fact("N", (f"b{b}", "d", v), 1))
        pool += [Fact("O", (v,), 1) for v in range(values)]
        return pool

    @pytest.mark.parametrize("seed", range(4))
    def test_mutation_stream_agrees(self, seed):
        pool = self._pool()
        rng = random.Random(300 + seed)
        initial = DatabaseInstance(
            f for f in pool if rng.random() < 0.4
        )
        _stream_agrees(
            self.PROBLEM, initial, pool, seed=seed,
            expect_backend="p-dual-horn",
            expect_strategies=("dual-horn-repair",),
        )


# ---------------------------------------------------------------------------
# the sat-repairs satellite backend


class TestSolveCnf:
    def test_empty_formula_is_satisfiable(self):
        assert solve_cnf([]) is True

    def test_empty_clause_is_unsatisfiable(self):
        assert solve_cnf([[]]) is False

    def test_unit_propagation(self):
        assert solve_cnf([[1], [-1, 2], [-2, 3]]) is True
        assert solve_cnf([[1], [-1, 2], [-2], []]) is False

    def test_contradiction(self):
        assert solve_cnf([[1], [-1]]) is False

    def test_requires_branching(self):
        # no unit clauses: (a ∨ b)(¬a ∨ b)(a ∨ ¬b) forces a=b=true
        assert solve_cnf([[1, 2], [-1, 2], [1, -2]]) is True
        assert solve_cnf([[1, 2], [-1, 2], [1, -2], [-1, -2]]) is False

    def test_tautologies_are_skipped(self):
        assert solve_cnf([[1, -1], [2]]) is True

    def test_rejects_zero_literal(self):
        with pytest.raises(ValueError, match="literal 0"):
            solve_cnf([[0]])


class TestSatRepairsRouting:
    # outside FO, FK = ∅: the coNP-hard subset-repairs residue
    PROBLEM = Problem.of("R(x | y)", "S(y | x)")

    def test_opt_in_flag_flips_the_backend(self):
        with connect() as session:
            assert "subset-repairs" in session.explain(self.PROBLEM)
        with connect(sat_fallback=True) as session:
            assert "sat-repairs" in session.explain(self.PROBLEM)

    def test_fo_problems_ignore_the_flag(self):
        problem = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])
        with connect(sat_fallback=True) as session:
            assert session.decide(
                problem,
                DatabaseInstance([Fact("R", ("a", "b"), 1),
                                  Fact("S", ("b", "c"), 1)]),
            ).backend == "fo-rewriting"

    def test_fk_problems_ignore_the_flag(self):
        # the flag only covers the FK = ∅ residue; with FKs the oracle
        # backends keep the problem
        problem = Problem.of("R(x | y)", "S(y | x)", fks=["R[2]->S"])
        with connect(sat_fallback=True) as session:
            assert "sat-repairs" not in session.explain(problem)


class TestSatRepairsOracleAgreement:
    PROBLEM = Problem.of("R(x | y)", "S(y | x)")

    def _pool(self):
        return [
            Fact("R", (f"a{i}", f"b{j}"), 1)
            for i in range(3) for j in range(2)
        ] + [
            Fact("S", (f"b{j}", f"a{i}"), 1)
            for i in range(2) for j in range(2)
        ]

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_subset_repairs(self, seed):
        rng = random.Random(400 + seed)
        pool = self._pool()
        db = DatabaseInstance(f for f in pool if rng.random() < 0.6)
        with connect() as enumerate_session, \
                connect(sat_fallback=True) as sat_session:
            expected = enumerate_session.decide(self.PROBLEM, db)
            got = sat_session.decide(self.PROBLEM, db)
            assert expected.backend == "subset-repairs"
            assert got.backend == "sat-repairs"
            assert got.certain == expected.certain

    def test_solver_name(self):
        solver = SatRepairSolver(self.PROBLEM.query)
        assert solver.name == "sat-repairs"
