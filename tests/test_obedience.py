"""Unit tests for obedience: Theorem 7, Corollary 8, and the semantic check."""

import pytest

from repro.core.foreign_keys import fk_set
from repro.core.obedience import (
    atom_obedient,
    nonkey_positions,
    obedience_test_query,
    semantic_obedient,
    subquery_for_positions,
    subquery_for_relation,
    syntactic_obedient,
    syntactic_verdict,
)
from repro.core.query import parse_query
from repro.exceptions import ForeignKeyError


class TestExample6:
    """q = {N(x,c,y), O(y)} with FK = {N[3]→O}."""

    def setup_method(self):
        self.q = parse_query("N(x | 'c', y)", "O(y |)")
        self.fks = fk_set(self.q, "N[3]->O")

    def test_p0_not_obedient(self):
        verdict = syntactic_verdict(self.q, self.fks, [("N", 2)])
        assert not verdict.obedient
        assert verdict.violated == "II"  # the constant c sits at (N,2)

    def test_p1_obedient(self):
        assert syntactic_obedient(self.q, self.fks, [("N", 3)])

    def test_o_atom_trivially_obedient(self):
        assert atom_obedient(self.q, self.fks, "O")

    def test_n_atom_disobedient(self):
        assert not atom_obedient(self.q, self.fks, "N")

    def test_subqueries(self):
        assert subquery_for_positions(
            self.q, self.fks, [("N", 2)]
        ).relations == {"N"}
        assert subquery_for_positions(
            self.q, self.fks, [("N", 3)]
        ).relations == {"N", "O"}
        assert subquery_for_relation(self.q, self.fks, "N").relations == {
            "N", "O",
        }

    def test_semantic_matches_syntactic(self):
        assert not semantic_obedient(self.q, self.fks, [("N", 2)])
        assert semantic_obedient(self.q, self.fks, [("N", 3)])


class TestTheorem7Conditions:
    def test_condition_i_cycle(self):
        q = parse_query("N(x | x)", "O(x | y)")
        fks = fk_set(q, "N[2]->N", "N[2]->O")
        verdict = syntactic_verdict(q, fks, [("N", 2)])
        assert verdict.violated == "I"

    def test_condition_ii_constant_downstream(self):
        q = parse_query("N(x | y)", "O(y | 'c')")
        fks = fk_set(q, "N[2]->O")
        verdict = syntactic_verdict(q, fks, [("N", 2)])
        assert verdict.violated == "II"

    def test_condition_iii_shared_variable(self):
        q = parse_query("N(x | y)", "O(y |)", "P(y |)")
        fks = fk_set(q, "N[2]->O")
        verdict = syntactic_verdict(q, fks, [("N", 2)])
        assert verdict.violated == "III"

    def test_condition_iv_repeated_nonkey(self):
        q = parse_query("N(x | y)", "O(y | z, z)")
        fks = fk_set(q, "N[2]->O")
        verdict = syntactic_verdict(q, fks, [("N", 2)])
        assert verdict.violated == "IV"

    def test_obedient_when_all_hold(self):
        q = parse_query("N(x | y)", "O(y | w)")
        fks = fk_set(q, "N[2]->O")
        assert syntactic_obedient(q, fks, [("N", 2)])

    def test_empty_set_obedient(self):
        q = parse_query("N(x | y)")
        fks = fk_set(q)
        assert syntactic_obedient(q, fks, [])

    def test_primary_key_position_rejected(self):
        q = parse_query("N(x | y)")
        fks = fk_set(q)
        with pytest.raises(ForeignKeyError):
            syntactic_obedient(q, fks, [("N", 1)])


class TestCorollary8:
    """P obedient ⟺ every singleton of P obedient."""

    def test_on_configurations(self):
        configurations = [
            (["N(x | y, z)", "O(y | w)", "T(z |)"], ["N[2]->O", "N[3]->T"]),
            (["N(x | y, z)", "O(y |)", "P(y |)"], ["N[2]->O"]),
            (["N(x | y, y)", "O(y |)"], ["N[2]->O", "N[3]->O"]),
            (["N(x | 'c', z)", "T(z |)"], ["N[3]->T"]),
        ]
        for atoms, fk_texts in configurations:
            q = parse_query(*atoms)
            fks = fk_set(q, *fk_texts)
            positions = sorted(nonkey_positions(q.atom("N")))
            whole = syntactic_obedient(q, fks, positions)
            singletons = all(
                syntactic_obedient(q, fks, [p]) for p in positions
            )
            assert whole == singletons, (atoms, fk_texts)


class TestSemanticAgainstSyntactic:
    """Theorem 7's equivalence, cross-checked via the chase."""

    CONFIGURATIONS = [
        (["N(x | y)", "O(y | w)"], ["N[2]->O"], [("N", 2)]),
        (["N(x | y)", "O(y | 'c')"], ["N[2]->O"], [("N", 2)]),
        (["N(x | y)", "O(y |)", "P(y |)"], ["N[2]->O"], [("N", 2)]),
        (["N(x | y)", "O(y | z, z)"], ["N[2]->O"], [("N", 2)]),
        (["N(x | y, z)", "O(y | w)", "T(z | u)"],
         ["N[2]->O", "N[3]->T"], [("N", 2), ("N", 3)]),
        (["N(x | y, y)", "O(y | w)"], ["N[2]->O"], [("N", 2), ("N", 3)]),
        (["N(x | u, y)", "O(y | w)"], ["N[3]->O"], [("N", 2)]),
        (["N(x | u, y)", "O(y | w)"], ["N[3]->O"], [("N", 3)]),
    ]

    def test_equivalence(self):
        for atoms, fk_texts, positions in self.CONFIGURATIONS:
            q = parse_query(*atoms)
            fks = fk_set(q, *fk_texts)
            syntactic = syntactic_obedient(q, fks, positions)
            semantic = semantic_obedient(q, fks, positions)
            assert syntactic == semantic, (atoms, fk_texts, positions)


class TestObedienceTestQuery:
    def test_shape(self):
        q = parse_query("N(x | 'c', y)", "O(y |)")
        fks = fk_set(q, "N[3]->O")
        test_q = obedience_test_query(q, fks, [("N", 3)])
        # q^FK_P = {N, O} is removed; F_P = N(x,'c',fresh) added.
        assert test_q.relations == {"N"}
        atom = test_q.atom("N")
        assert atom.term_at(2).value == "c"
        assert atom.term_at(3) not in q.variables

    def test_multi_relation_positions_rejected(self):
        q = parse_query("N(x | y)", "O(y | w)")
        fks = fk_set(q, "N[2]->O")
        with pytest.raises(ForeignKeyError):
            obedience_test_query(q, fks, [("N", 2), ("O", 2)])
