"""Fuzzing tests: random FO problems must agree three ways.

The strongest end-to-end validation in the suite: random ``(q, FK)`` pairs
that Theorem 12 classifies in FO are rewritten, and the composed formula,
the forward pipeline and the exact ⊕-repair oracle are compared on random
instances.
"""

import random

import pytest

from repro.core.classify import classify
from repro.core.decision import decide
from repro.core.rewriting import consistent_rewriting
from repro.exceptions import OracleLimitation
from repro.fo import evaluate
from repro.repairs import certain_answer
from repro.workloads import ProblemShape, random_fo_problems, random_problem
from tests.conftest import random_db


class TestGenerator:
    def test_problems_are_about_their_queries(self):
        rng = random.Random(5)
        shape = ProblemShape()
        hits = 0
        for _ in range(100):
            query, fks = random_problem(shape, rng)
            if fks.is_about(query):
                hits += 1
        # the generator constructs aboutness; near-all draws satisfy it
        assert hits >= 95

    def test_fo_filter(self):
        for query, fks in random_fo_problems(10, seed=3):
            assert classify(query, fks).in_fo

    def test_deterministic(self):
        a = [(repr(q), repr(f)) for q, f in random_fo_problems(5, seed=8)]
        b = [(repr(q), repr(f)) for q, f in random_fo_problems(5, seed=8)]
        assert a == b


class TestThreeWayAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_fo_problems(self, seed):
        problems = list(random_fo_problems(8, seed=seed))
        assert problems
        for index, (query, fks) in enumerate(problems):
            result = consistent_rewriting(query, fks)
            rng = random.Random(seed * 100 + index)
            for _ in range(10):
                db = random_db(query, rng, domain=(0, 1, "c", "d"))
                try:
                    oracle = certain_answer(query, fks, db).certain
                except OracleLimitation:
                    continue
                formula = evaluate(result.formula, db)
                procedural = decide(
                    query, fks, db, check_classification=False
                )
                assert formula == oracle == procedural, (
                    f"{query!r} {fks!r}\n{db.pretty()}"
                )

    def test_wide_shape(self):
        shape = ProblemShape(
            n_atoms=4, max_arity=3, n_variables=5, fk_probability=0.5
        )
        for index, (query, fks) in enumerate(
            random_fo_problems(5, shape=shape, seed=11)
        ):
            result = consistent_rewriting(query, fks)
            rng = random.Random(index)
            for _ in range(8):
                db = random_db(query, rng, domain=(0, "c"))
                try:
                    oracle = certain_answer(query, fks, db).certain
                except OracleLimitation:
                    continue
                assert evaluate(result.formula, db) == oracle
