"""Autoscaler policy trajectories with a pinned clock.

The policy is a pure function of (sample, internal state, clock), so a
recording ``resize`` callable plus a hand-advanced clock lets the tests
assert whole decision trajectories — breach → up, hysteresis band →
hold, calm run → down, cooldown suppression — deterministically.
"""

import pytest

from repro.serve import AutoscaleConfig, Autoscaler, AutoscaleSample


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


def make(config=None, workers=1):
    clock = FakeClock()
    resizes = []
    scaler = Autoscaler(
        config or AutoscaleConfig(),
        resize=resizes.append,
        initial_workers=workers,
        clock=clock,
    )
    return scaler, resizes, clock


def sample(queue=0, inflight=0, shed=0, workers=1, tiers=None):
    return AutoscaleSample(
        queue_depth=queue, inflight=inflight, shed=shed,
        workers=workers, tier_p99_ms=tiers or {},
    )


class TestScaleUp:
    def test_queue_pressure_breach_scales_up(self):
        scaler, resizes, _ = make()
        decision = scaler.observe(sample(queue=7, inflight=1, workers=1))
        assert decision.action == "up"
        assert decision.workers == 2
        assert "queue pressure" in decision.reason
        assert resizes == [2]

    def test_pressure_is_per_worker(self):
        scaler, resizes, _ = make(workers=4)
        # 8 queued over 4 workers: pressure 2.0 < queue_high 4.0 → hold
        decision = scaler.observe(sample(queue=8, workers=4))
        assert decision.action == "hold"
        assert resizes == []

    def test_shed_delta_breach_scales_up(self):
        config = AutoscaleConfig(shed_high=5, queue_high=1e9)
        scaler, resizes, clock = make(config)
        # first tick establishes the cumulative baseline: no delta yet
        assert scaler.observe(sample(shed=100)).action == "hold"
        clock.tick(10)
        decision = scaler.observe(sample(shed=106))
        assert decision.action == "up"
        assert decision.shed_delta == 6
        assert "shed" in decision.reason
        assert resizes == [2]

    def test_tier_p99_target_breach_scales_up(self):
        config = AutoscaleConfig(
            queue_high=1e9, shed_high=0,
            tier_p99_targets_ms={"fo": 10.0},
        )
        scaler, resizes, _ = make(config)
        assert scaler.observe(
            sample(tiers={"fo": 9.0})
        ).action == "hold"
        decision = scaler.observe(sample(tiers={"fo": 25.0}))
        assert decision.action == "up"
        assert "fo p99" in decision.reason

    def test_up_steps_and_clamps_at_max(self):
        config = AutoscaleConfig(
            max_workers=4, scale_up_step=2, cooldown_seconds=0.0
        )
        scaler, resizes, clock = make(config)
        assert scaler.observe(sample(queue=40, workers=1)).workers == 3
        clock.tick(1)
        assert scaler.observe(sample(queue=40, workers=3)).workers == 4
        clock.tick(1)
        held = scaler.observe(sample(queue=40, workers=4))
        assert held.action == "hold"
        assert "at max_workers" in held.reason
        assert resizes == [3, 4]

    def test_cooldown_suppresses_back_to_back_ups(self):
        config = AutoscaleConfig(max_workers=8, cooldown_seconds=3.0)
        scaler, resizes, clock = make(config)
        assert scaler.observe(sample(queue=40, workers=1)).action == "up"
        clock.tick(1.0)  # still cooling
        held = scaler.observe(sample(queue=40, workers=2))
        assert held.action == "hold"
        assert "cooldown" in held.reason
        clock.tick(2.5)  # past the cooldown
        assert scaler.observe(sample(queue=40, workers=2)).action == "up"
        assert resizes == [2, 3]


class TestScaleDown:
    def test_down_only_after_consecutive_calm_ticks(self):
        config = AutoscaleConfig(
            scale_down_consecutive=3, cooldown_seconds=0.0
        )
        scaler, resizes, _ = make(config, workers=3)
        assert scaler.observe(sample(workers=3)).action == "hold"
        assert scaler.observe(sample(workers=3)).action == "hold"
        decision = scaler.observe(sample(workers=3))
        assert decision.action == "down"
        assert decision.workers == 2
        assert resizes == [2]

    def test_mid_band_pressure_resets_the_calm_run(self):
        config = AutoscaleConfig(
            queue_low=0.5, queue_high=4.0,
            scale_down_consecutive=2, cooldown_seconds=0.0,
        )
        scaler, resizes, _ = make(config, workers=2)
        assert scaler.observe(sample(workers=2)).action == "hold"
        # pressure 1.0 sits between the watermarks: neither calm nor breach
        mid = scaler.observe(sample(queue=2, workers=2))
        assert mid.action == "hold"
        assert "within" in mid.reason
        # the calm run starts over: one calm tick is not enough
        assert scaler.observe(sample(workers=2)).action == "hold"
        assert scaler.observe(sample(workers=2)).action == "down"
        assert resizes == [1]

    def test_sheds_during_calm_pressure_block_scale_down(self):
        config = AutoscaleConfig(
            scale_down_consecutive=1, cooldown_seconds=0.0
        )
        scaler, resizes, clock = make(config, workers=2)
        scaler.observe(sample(workers=2, shed=0))
        clock.tick(1)
        # pressure is calm but sheds arrived: not a calm interval
        # (shed_high=1 also makes it a breach → up, clamped by max=4)
        decision = scaler.observe(sample(workers=2, shed=3))
        assert decision.action != "down"

    def test_never_below_min_workers(self):
        config = AutoscaleConfig(
            min_workers=2, scale_down_consecutive=1, cooldown_seconds=0.0
        )
        scaler, resizes, _ = make(config, workers=2)
        for _ in range(5):
            assert scaler.observe(sample(workers=2)).action == "hold"
        assert resizes == []

    def test_full_burst_trajectory(self):
        """The E19b shape: idle → burst → up → drain → calm → down."""
        config = AutoscaleConfig(
            min_workers=1, max_workers=2,
            scale_down_consecutive=2, cooldown_seconds=1.0,
        )
        scaler, resizes, clock = make(config, workers=1)
        trajectory = []
        plan = [
            sample(queue=0, workers=1),  # idle
            sample(queue=9, inflight=2, workers=1),  # burst hits
            sample(queue=4, inflight=2, workers=2),  # cooling + draining
            sample(queue=0, workers=2),  # calm 1
            sample(queue=0, workers=2),  # calm 2 → down
            sample(queue=0, workers=1),  # idle again, at min
        ]
        for s in plan:
            trajectory.append(scaler.observe(s).action)
            clock.tick(2.0)
        assert trajectory == ["hold", "up", "hold", "hold", "down", "hold"]
        assert resizes == [2, 1]


class TestIntrospection:
    def test_status_reports_bounds_resizes_and_decision_ring(self):
        config = AutoscaleConfig(
            min_workers=1, max_workers=4, cooldown_seconds=0.0
        )
        scaler, _, clock = make(config)
        scaler.observe(sample(queue=40, workers=1))
        clock.tick(1)
        scaler.observe(sample(queue=1, workers=2))
        status = scaler.status()
        assert status["workers"] == 2
        assert status["min_workers"] == 1
        assert status["max_workers"] == 4
        assert status["resizes"] == 1
        assert status["last_decision"]["action"] == "hold"
        # the ring keeps only non-hold decisions
        assert [d["action"] for d in status["decisions"]] == ["up"]

    def test_decision_to_dict_shape(self):
        scaler, _, _ = make()
        decision = scaler.observe(sample(queue=40, workers=1))
        document = decision.to_dict()
        assert document == {
            "action": "up",
            "workers": 2,
            "reason": decision.reason,
            "pressure": 40.0,
            "shed_delta": 0,
        }


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_workers": 0},
            {"min_workers": 3, "max_workers": 2},
            {"interval_seconds": 0},
            {"queue_low": 5.0, "queue_high": 4.0},
            {"scale_up_step": 0},
            {"scale_down_consecutive": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            AutoscaleConfig(**kwargs)
