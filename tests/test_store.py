"""Tests for ``repro.store``: delta algebra (diff/apply/inverse round
trips, strict conflict rules, JSON wire form), the bounded versioned
instance registry (CAS patches, delta logs, byte-budget LRU eviction),
and the Session-level named-instance facade."""

import random

import pytest

from repro.api import Problem, connect
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.exceptions import (
    DeltaConflictError,
    InstanceFormatError,
    UnknownInstanceError,
    VersionConflictError,
)
from repro.store import Delta, InstanceRegistry, InstanceStore
from repro.store.registry import estimate_instance_bytes


def _db(*rows) -> DatabaseInstance:
    """Facts from ``(relation, values...)`` rows, key size 1."""
    return DatabaseInstance(
        Fact(relation, tuple(values), 1) for relation, *values in rows
    )


def _random_instance(rng: random.Random, pool: list[Fact]) -> DatabaseInstance:
    return DatabaseInstance(f for f in pool if rng.random() < 0.5)


def _fact_pool() -> list[Fact]:
    return [
        Fact("R", (f"a{i}", f"b{j}"), 1)
        for i in range(4)
        for j in range(4)
    ] + [Fact("S", (f"b{j}",), 1) for j in range(4)]


class TestDeltaAlgebra:
    def test_diff_apply_round_trip_randomized(self):
        rng = random.Random(7)
        pool = _fact_pool()
        for _ in range(100):
            a = _random_instance(rng, pool)
            b = _random_instance(rng, pool)
            assert Delta.diff(a, b).apply(a) == b

    def test_diff_of_equal_instances_is_empty(self):
        a = _db(("R", "x", "y"))
        delta = Delta.diff(a, a)
        assert not delta
        assert len(delta) == 0
        assert delta.apply(a) == a

    def test_inverse_undoes_randomized(self):
        rng = random.Random(11)
        pool = _fact_pool()
        for _ in range(100):
            a = _random_instance(rng, pool)
            b = _random_instance(rng, pool)
            delta = Delta.diff(a, b)
            assert delta.inverse().apply(delta.apply(a)) == a

    def test_strict_apply_rejects_removing_absent_fact(self):
        delta = Delta.of(removes=[Fact("R", ("x", "y"), 1)])
        with pytest.raises(DeltaConflictError, match="absent"):
            delta.apply(DatabaseInstance())

    def test_strict_apply_rejects_adding_present_fact(self):
        fact = Fact("R", ("x", "y"), 1)
        delta = Delta.of(adds=[fact])
        with pytest.raises(DeltaConflictError, match="already-present"):
            delta.apply(DatabaseInstance([fact]))

    def test_lenient_apply_is_idempotent(self):
        rng = random.Random(13)
        pool = _fact_pool()
        for _ in range(50):
            a = _random_instance(rng, pool)
            b = _random_instance(rng, pool)
            delta = Delta.diff(a, b)
            once = delta.apply(a, strict=False)
            assert delta.apply(once, strict=False) == once == b

    def test_overlapping_sides_are_rejected(self):
        fact = Fact("R", ("x", "y"), 1)
        with pytest.raises(DeltaConflictError, match="adds and removes"):
            Delta.of(adds=[fact], removes=[fact])

    def test_relations_and_sizes(self):
        delta = Delta.of(
            adds=[Fact("R", ("x", "y"), 1)],
            removes=[Fact("S", ("z",), 1)],
        )
        assert delta.relations == {"R", "S"}
        assert len(delta) == 2
        assert bool(delta)


class TestDeltaWireForm:
    def test_round_trip_randomized(self):
        rng = random.Random(17)
        pool = _fact_pool()
        for _ in range(50):
            a = _random_instance(rng, pool)
            b = _random_instance(rng, pool)
            delta = Delta.diff(a, b)
            assert Delta.from_dict(delta.to_dict()) == delta

    def test_wire_document_shape(self):
        delta = Delta.of(adds=[Fact("R", ("a", "b"), 1)])
        doc = delta.to_dict()
        assert doc["format"] == "repro/delta"
        assert doc["version"] == 1
        assert doc["add"]["R"]["rows"] == [["a", "b"]]
        assert doc["remove"] == {}

    def test_rejects_wrong_format(self):
        with pytest.raises(InstanceFormatError, match="format"):
            Delta.from_dict({"format": "repro/instance", "version": 1})

    def test_rejects_wrong_version(self):
        with pytest.raises(InstanceFormatError, match="version"):
            Delta.from_dict({"format": "repro/delta", "version": 99})

    def test_rejects_non_mapping(self):
        with pytest.raises(InstanceFormatError, match="object"):
            Delta.from_dict([1, 2])

    def test_rejects_overlap_across_the_wire(self):
        doc = {
            "format": "repro/delta",
            "version": 1,
            "add": {"R": {"arity": 2, "key_size": 1, "rows": [["a", "b"]]}},
            "remove": {"R": {"arity": 2, "key_size": 1, "rows": [["a", "b"]]}},
        }
        with pytest.raises(DeltaConflictError):
            Delta.from_dict(doc)


class TestInstanceRegistry:
    def test_put_get_round_trip(self):
        registry = InstanceRegistry()
        db = _db(("R", "a", "b"))
        info = registry.put("inv", db)
        assert (info.ref, info.version, info.facts) == ("inv", 1, 1)
        stored, version = registry.get("inv")
        assert stored == db and version == 1

    def test_patch_bumps_version_and_applies(self):
        registry = InstanceRegistry()
        registry.put("inv", _db(("R", "a", "b")))
        delta = Delta.of(adds=[Fact("R", ("a2", "b2"), 1)])
        info, applied = registry.patch("inv", delta)
        assert info.version == 2 and info.facts == 2
        assert applied == delta
        stored, version = registry.get("inv")
        assert version == 2 and stored.size == 2

    def test_cas_precondition(self):
        registry = InstanceRegistry()
        registry.put("inv", _db(("R", "a", "b")))
        delta = Delta.of(adds=[Fact("R", ("a2", "b2"), 1)])
        registry.patch("inv", delta, expect_version=1)
        with pytest.raises(VersionConflictError, match="version 2"):
            registry.patch("inv", delta, expect_version=1)
        # the failed CAS touched nothing
        assert registry.get("inv")[1] == 2

    def test_patch_conflict_leaves_entry_untouched(self):
        registry = InstanceRegistry()
        registry.put("inv", _db(("R", "a", "b")))
        bad = Delta.of(removes=[Fact("R", ("zz", "zz"), 1)])
        with pytest.raises(DeltaConflictError):
            registry.patch("inv", bad)
        assert registry.get("inv")[1] == 1

    def test_unknown_ref_raises(self):
        registry = InstanceRegistry()
        with pytest.raises(UnknownInstanceError, match="nope"):
            registry.get("nope")
        with pytest.raises(UnknownInstanceError):
            registry.patch("nope", Delta())
        assert registry.drop("nope") is False

    def test_deltas_since_chains(self):
        registry = InstanceRegistry()
        registry.put("inv", _db(("R", "a", "b")))
        d2 = Delta.of(adds=[Fact("R", ("c", "d"), 1)])
        d3 = Delta.of(removes=[Fact("R", ("a", "b"), 1)])
        registry.patch("inv", d2)
        registry.patch("inv", d3)
        assert registry.deltas_since("inv", 3) == []
        assert registry.deltas_since("inv", 1) == [(2, d2), (3, d3)]
        assert registry.deltas_since("inv", 2) == [(3, d3)]
        # a future version means the caller's state is from a replaced
        # entry: broken chain
        assert registry.deltas_since("inv", 9) is None

    def test_put_resets_the_delta_log(self):
        registry = InstanceRegistry()
        registry.put("inv", _db(("R", "a", "b")))
        registry.patch("inv", Delta.of(adds=[Fact("R", ("c", "d"), 1)]))
        registry.patch("inv", Delta.of(adds=[Fact("R", ("e", "f"), 1)]))
        registry.put("inv", _db(("R", "e", "f")))
        # a state caught at the pre-replace version 3 cannot catch up
        # across the replace (the version went backwards)
        assert registry.deltas_since("inv", 3) is None
        assert registry.get("inv")[1] == 1

    def test_trimmed_log_breaks_the_chain(self):
        registry = InstanceRegistry(delta_log=2)
        registry.put("inv", DatabaseInstance())
        for i in range(5):
            registry.patch(
                "inv", Delta.of(adds=[Fact("R", (f"a{i}", "b"), 1)])
            )
        assert registry.deltas_since("inv", 1) is None
        assert registry.deltas_since("inv", 4) == [
            (6, Delta.of(adds=[Fact("R", ("a4", "b"), 1)])),
        ] or len(registry.deltas_since("inv", 4)) == 2

    def test_lru_eviction_over_byte_budget(self):
        db = _db(("R", "aaaa", "bbbb"))
        budget = estimate_instance_bytes(db) * 2 + 1
        evicted = []
        registry = InstanceRegistry(max_bytes=budget,
                                    on_evict=evicted.append)
        registry.put("one", db)
        registry.put("two", db)
        assert evicted == []
        registry.get("one")  # touch: "two" becomes LRU
        registry.put("three", db)
        assert evicted == ["two"]
        assert "two" not in registry and "one" in registry

    def test_just_touched_entry_is_never_evicted(self):
        db = _db(("R", "aaaa", "bbbb"))
        registry = InstanceRegistry(max_bytes=1)  # everything over budget
        registry.put("one", db)
        assert "one" in registry  # sole entry survives its own put
        registry.put("two", db)
        assert "two" in registry and "one" not in registry

    def test_stats(self):
        registry = InstanceRegistry()
        registry.put("inv", _db(("R", "a", "b")))
        registry.patch("inv", Delta.of(adds=[Fact("R", ("c", "d"), 1)]))
        stats = registry.stats()
        assert stats["instances"] == 1
        assert stats["puts"] == 1 and stats["patches"] == 1
        assert 0 < stats["bytes"] <= stats["max_bytes"]

    def test_byte_accounting_tracks_patches(self):
        registry = InstanceRegistry()
        registry.put("inv", _db(("R", "a", "b")))
        before = registry.stats()["bytes"]
        fact = Fact("R", ("c", "d"), 1)
        registry.patch("inv", Delta.of(adds=[fact]))
        grown = registry.stats()["bytes"]
        assert grown > before
        registry.patch("inv", Delta.of(removes=[fact]))
        assert registry.stats()["bytes"] == before

    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError, match="max_bytes"):
            InstanceRegistry(max_bytes=0)
        with pytest.raises(ValueError, match="delta_log"):
            InstanceRegistry(delta_log=-1)
        registry = InstanceRegistry()
        with pytest.raises(ValueError, match="version"):
            registry.put("inv", DatabaseInstance(), version=0)


class TestSessionFacade:
    PROBLEM = Problem.of("R(x | y)", "S(y | z)", fks=["R[2]->S"])

    def test_put_patch_decide_by_ref(self):
        db = _db(("R", "a", "b"), ("S", "b", "c"))
        with connect() as session:
            session.put_instance("inv", db)
            first = session.decide(self.PROBLEM, ref="inv")
            assert first.certain is True
            session.patch_instance(
                "inv",
                Delta.of(removes=[Fact("S", ("b", "c"), 1)]),
                expect_version=1,
            )
            second = session.decide(self.PROBLEM, ref="inv")
            assert second.certain is False

    def test_decide_needs_exactly_one_source(self):
        with connect() as session:
            with pytest.raises(TypeError, match="exactly one"):
                session.decide(self.PROBLEM)
            with pytest.raises(TypeError, match="exactly one"):
                session.decide(self.PROBLEM, DatabaseInstance(), ref="inv")

    def test_unknown_ref_raises(self):
        with connect() as session:
            with pytest.raises(UnknownInstanceError):
                session.decide(self.PROBLEM, ref="ghost")

    def test_get_and_drop(self):
        db = _db(("R", "a", "b"))
        with connect() as session:
            session.put_instance("inv", db)
            stored, version = session.get_instance("inv")
            assert stored == db and version == 1
            assert session.drop_instance("inv") is True
            assert session.drop_instance("inv") is False

    def test_store_closes_with_the_session(self):
        session = connect()
        session.put_instance("inv", _db(("R", "a", "b")))
        store = session.store
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.put_instance("other", DatabaseInstance())
        assert store.stats()["instances"] == 1  # registry outlives; harmless


class TestInstanceStoreStates:
    """State bookkeeping on the InstanceStore facade itself."""

    PROBLEM = Problem.of("N(x | x)", "O(x |)", fks=["N[2]->O"])

    def _db(self):
        return DatabaseInstance([
            Fact("N", (1, 1), 1),
            Fact("N", (1, 2), 1),
            Fact("N", (2, 2), 1),
            Fact("O", (1,), 1),
        ])

    def test_decide_meta_and_incremental_counters(self):
        with connect() as session:
            store = session.store
            store.put("inv", self._db())
            decision, meta = store.decide(session, self.PROBLEM, "inv")
            assert decision.backend == "nl-reachability"
            assert meta["strategy"] == "rebuild"
            assert meta["incremental"] is False
            # memo: same version answers from the cached state
            _, meta = store.decide(session, self.PROBLEM, "inv")
            assert meta["strategy"] == "memo" and meta["incremental"]
            store.patch(
                "inv", Delta.of(removes=[Fact("N", (1, 2), 1)])
            )
            decision, meta = store.decide(session, self.PROBLEM, "inv")
            assert meta["strategy"] == "p16-attractor"
            assert meta["incremental"] is True
            stats = store.stats()
            assert stats["incremental_decides"] == 2
            assert stats["full_decides"] == 1
            assert stats["states"] == 1

    def test_put_invalidates_states(self):
        with connect() as session:
            store = session.store
            store.put("inv", self._db())
            store.decide(session, self.PROBLEM, "inv")
            assert store.stats()["states"] == 1
            store.put("inv", self._db())
            assert store.stats()["states"] == 0
            _, meta = store.decide(session, self.PROBLEM, "inv")
            assert meta["incremental"] is False

    def test_eviction_invalidates_states(self):
        db = self._db()
        budget = estimate_instance_bytes(db) + 1
        store = InstanceStore(max_bytes=budget)
        with connect() as session:
            store.put("one", db)
            store.decide(session, self.PROBLEM, "one")
            store.put("two", db)  # evicts "one" and its state
            assert store.stats()["states"] == 0
            with pytest.raises(UnknownInstanceError):
                store.decide(session, self.PROBLEM, "one")
        store.close()
