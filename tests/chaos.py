"""Fault injection for cluster chaos tests (`tests/test_chaos.py`).

Two layers of mischief over real ``127.0.0.1`` TCP:

- **process faults** — :func:`spawn_controller` / :func:`spawn_worker`
  start genuine ``python -m repro serve`` subprocesses, and
  :class:`ManagedProcess` kills them without a goodbye (``SIGKILL``),
  freezes them mid-flight (``SIGSTOP`` / ``SIGCONT``), or stops them
  cleanly;
- **wire faults** — :class:`VerbProxy` sits between an agent (or
  client) and a server, parses the newline-delimited JSON frames of the
  serve protocol, and **drops** or **delays** requests by verb, or
  **partitions** the link entirely (bytes black-holed both ways until
  :meth:`VerbProxy.heal`).

The proxy only inspects the client→server direction (requests carry the
verb); responses pass through verbatim, so auth handshakes and every
unmatched verb are unaffected.  This module is a helper, not a test
file — pytest does not collect it.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PYTHON = sys.executable
SECRET = "chaos-fleet-secret"


def chaos_env(secret: str = SECRET) -> dict:
    """Subprocess environment: the repo's ``src`` on PYTHONPATH and the
    fleet secret both sides read from ``REPRO_CLUSTER_SECRET``."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    env["REPRO_CLUSTER_SECRET"] = secret
    return env


def free_port() -> int:
    """An ephemeral port that was free a moment ago (good enough for a
    restart-on-the-same-address drill on loopback)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ManagedProcess:
    """One serve subprocess plus its fault injectors."""

    def __init__(self, proc: subprocess.Popen, label: str):
        self.proc = proc
        self.label = label

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def await_line(self, marker: str, timeout: float = 30.0) -> str:
        """Read stdout until *marker* appears (ports are ephemeral, so
        the announce line is the startup handshake)."""
        deadline = time.monotonic() + timeout
        assert self.proc.stdout is not None
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise AssertionError(
                    f"{self.label} exited {self.proc.returncode} "
                    f"before announcing {marker!r}"
                )
            line = self.proc.stdout.readline()
            if marker in line:
                return line
        raise AssertionError(
            f"{self.label} never announced {marker!r} within {timeout}s"
        )

    # -- faults ---------------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL: the process vanishes without deregistering — the
        controller finds out by heartbeat timeout."""
        if self.alive:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=30)

    def pause(self) -> None:
        """SIGSTOP: frozen mid-flight — sockets stay open, heartbeats
        stop.  Indistinguishable from a long GC pause or a hung VM."""
        self.proc.send_signal(signal.SIGSTOP)

    def resume(self) -> None:
        """SIGCONT: thaw a paused process; its next heartbeat discovers
        whether it was evicted while frozen."""
        self.proc.send_signal(signal.SIGCONT)

    def terminate(self) -> None:
        """Clean shutdown (teardown, not a fault)."""
        if not self.alive:
            return
        self.proc.send_signal(signal.SIGCONT)  # in case it is paused
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10)


def _spawn(args: list[str], label: str, secret: str) -> ManagedProcess:
    proc = subprocess.Popen(
        [PYTHON, "-m", "repro", *args],
        cwd=REPO_ROOT,
        env=chaos_env(secret),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return ManagedProcess(proc, label)


def spawn_controller(
    *,
    port: int = 0,
    heartbeat_timeout: float = 2.0,
    secret: str = SECRET,
) -> tuple[ManagedProcess, str, int]:
    """Start ``repro serve --controller``; returns (process, host, port)
    once the socket is announced."""
    controller = _spawn(
        [
            "serve", "--controller", "--port", str(port),
            "--heartbeat-timeout", str(heartbeat_timeout),
            "--linger-ms", "0",
        ],
        "controller", secret,
    )
    announce = controller.await_line("listening on")
    endpoint = announce.split("listening on ", 1)[1].split()[0]
    host, port_text = endpoint.rsplit(":", 1)
    return controller, host, int(port_text)


def spawn_worker(
    controller_host: str,
    controller_port: int,
    name: str,
    *,
    heartbeat: float = 0.5,
    secret: str = SECRET,
) -> ManagedProcess:
    """Start one ``repro serve --join`` worker; returns once joined."""
    worker = _spawn(
        [
            "serve", "--join", f"{controller_host}:{controller_port}",
            "--port", "0", "--worker-name", name,
            "--heartbeat", str(heartbeat), "--linger-ms", "0",
        ],
        f"worker {name}", secret,
    )
    worker.await_line("joined controller")
    return worker


class VerbProxy:
    """A TCP proxy that injects wire faults between one dialer and one
    serve endpoint.

    Point an agent at :attr:`address` instead of the controller (or a
    client at it instead of a server) and script the link::

        proxy = VerbProxy(ctrl_host, ctrl_port)
        agent joins via proxy.address ...
        proxy.drop("heartbeat")     # the controller hears silence
        proxy.delay("register", 1)  # slow-path a rejoin
        proxy.partition()           # black-hole everything both ways
        proxy.heal()                # all faults lifted at once

    Dropped requests never reach upstream (the dialer times out, exactly
    as on a lossy network); counts land in :attr:`dropped`.
    """

    def __init__(self, upstream_host: str, upstream_port: int):
        self.upstream = (upstream_host, upstream_port)
        self.dropped: dict[str, int] = {}
        self._drop: set[str] = set()
        self._delay: dict[str, float] = {}
        self._partitioned = threading.Event()
        self._closed = threading.Event()
        self._lock = threading.Lock()
        self._listener = socket.socket()
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self._conns: list[socket.socket] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept",
            daemon=True,
        )
        self._accept_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._listener.getsockname()
        return host, port

    # -- fault controls -------------------------------------------------------

    def drop(self, *verbs: str) -> None:
        with self._lock:
            self._drop.update(verbs)

    def delay(self, verb: str, seconds: float) -> None:
        with self._lock:
            self._delay[verb] = seconds

    def partition(self) -> None:
        self._partitioned.set()

    def heal(self) -> None:
        """Lift every fault: partition, drops and delays."""
        with self._lock:
            self._drop.clear()
            self._delay.clear()
        self._partitioned.clear()

    def close(self) -> None:
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "VerbProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the pumps ------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(
                    self.upstream, timeout=10
                )
            except OSError:
                downstream.close()
                continue
            with self._lock:
                self._conns += [downstream, upstream]
            threading.Thread(
                target=self._pump_requests,
                args=(downstream, upstream),
                name="chaos-proxy-up", daemon=True,
            ).start()
            threading.Thread(
                target=self._pump_bytes, args=(upstream, downstream),
                name="chaos-proxy-down", daemon=True,
            ).start()

    def _pump_requests(self, source: socket.socket,
                       sink: socket.socket) -> None:
        """client→server: frame-aware — this is where verbs are visible."""
        reader = source.makefile("rb")
        try:
            for line in reader:
                if self._closed.is_set():
                    return
                if self._partitioned.is_set():
                    continue  # black-holed: read and discard
                verb = None
                try:
                    verb = json.loads(line).get("verb")
                except (ValueError, AttributeError):
                    pass  # not a request frame: pass through
                with self._lock:
                    dropping = verb in self._drop
                    delay = self._delay.get(verb, 0.0)
                    if dropping:
                        self.dropped[verb] = self.dropped.get(verb, 0) + 1
                if dropping:
                    continue
                if delay:
                    time.sleep(delay)
                sink.sendall(line)
        except (OSError, ValueError):
            pass
        finally:
            for sock in (source, sink):
                try:
                    sock.close()
                except OSError:
                    pass

    def _pump_bytes(self, source: socket.socket,
                    sink: socket.socket) -> None:
        """server→client: verb-less, so plain bytes — but a partition
        still swallows everything."""
        try:
            while not self._closed.is_set():
                chunk = source.recv(65536)
                if not chunk:
                    return
                if self._partitioned.is_set():
                    continue
                sink.sendall(chunk)
        except OSError:
            pass
        finally:
            for sock in (source, sink):
                try:
                    sock.close()
                except OSError:
                    pass
