"""Shared helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.foreign_keys import ForeignKeySet
from repro.core.query import ConjunctiveQuery
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance


def random_db(
    query: ConjunctiveQuery,
    rng: random.Random,
    max_facts_per_relation: int = 3,
    domain: tuple[object, ...] | None = None,
) -> DatabaseInstance:
    """A small random instance over *query*'s schema.

    The value pool always includes the query's constants so that constant
    atoms are reachable.
    """
    if domain is None:
        domain = (0, 1, 2)
    pool = list(domain) + [c.value for c in query.constants]
    schema = query.schema()
    facts = []
    for relation in sorted(schema):
        sig = schema[relation]
        for _ in range(rng.randint(0, max_facts_per_relation)):
            facts.append(
                Fact(
                    relation,
                    tuple(rng.choice(pool) for _ in range(sig.arity)),
                    sig.key_size,
                )
            )
    return DatabaseInstance(facts)


def assert_agrees_with_oracle(
    query: ConjunctiveQuery,
    fks: ForeignKeySet,
    db: DatabaseInstance,
    decided: bool,
    context: str = "",
) -> None:
    """Compare a decision against the exact ⊕-repair oracle."""
    from repro.repairs import certain_answer

    oracle = certain_answer(query, fks, db)
    assert decided == oracle.certain, (
        f"{context}: decided {decided}, oracle {oracle.certain}\n"
        f"instance:\n{db.pretty()}\n"
        f"falsifying repair: {oracle.falsifying_repair}"
    )


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
