"""Unit tests for repro.core.atoms and repro.core.query (model + parser)."""

import pytest

from repro.core.atoms import Atom
from repro.core.query import (
    ConjunctiveQuery,
    parse_atom,
    parse_query,
    parse_term,
)
from repro.core.terms import Constant, Parameter, Variable
from repro.exceptions import QueryError


class TestParseTerm:
    def test_variable(self):
        assert parse_term("xyz") == Variable("xyz")

    def test_quoted_constant(self):
        assert parse_term("'Jeff'") == Constant("Jeff")

    def test_integer_constant(self):
        assert parse_term("-3") == Constant(-3)

    def test_parameter(self):
        assert parse_term("$p1") == Parameter("p1")

    def test_garbage_raises(self):
        with pytest.raises(QueryError):
            parse_term("&&")


class TestParseAtom:
    def test_default_key_is_first_position(self):
        atom = parse_atom("R(x, y, z)")
        assert atom.key_size == 1
        assert atom.key_terms == (Variable("x"),)

    def test_pipe_separates_key(self):
        atom = parse_atom("R(x, y | z)")
        assert atom.key_size == 2

    def test_trailing_pipe_means_all_key(self):
        atom = parse_atom("R(x, y |)")
        assert atom.key_size == 2
        assert atom.arity == 2

    def test_constants_with_commas_inside_quotes(self):
        atom = parse_atom("R('a, b' | y)")
        assert atom.term_at(1) == Constant("a, b")

    def test_two_pipes_raise(self):
        with pytest.raises(QueryError):
            parse_atom("R(x | y | z)")

    def test_malformed_raises(self):
        with pytest.raises(QueryError):
            parse_atom("R x, y")


class TestAtom:
    def test_key_and_nonkey_variables(self):
        atom = parse_atom("R(x, 'c' | y, x)")
        assert atom.key_variables == {Variable("x")}
        assert atom.variables == {Variable("x"), Variable("y")}

    def test_positions_of(self):
        atom = parse_atom("R(x | y, x)")
        assert atom.positions_of(Variable("x")) == [1, 3]

    def test_term_at_bounds(self):
        atom = parse_atom("R(x | y)")
        with pytest.raises(QueryError):
            atom.term_at(3)

    def test_substitute(self):
        atom = parse_atom("R(x | y)")
        result = atom.substitute({Variable("y"): Constant(5)})
        assert result.term_at(2) == Constant(5)

    def test_replace_position(self):
        atom = parse_atom("R(x | y)")
        assert atom.replace_position(2, Constant(1)).term_at(2) == Constant(1)

    def test_is_fact_shaped(self):
        assert parse_atom("R('a' | 'b')").is_fact_shaped
        assert not parse_atom("R(x | 'b')").is_fact_shaped


class TestConjunctiveQuery:
    def test_self_join_rejected(self):
        with pytest.raises(QueryError):
            parse_query("R(x | y)", "R(y | z)")

    def test_atom_lookup(self):
        q = parse_query("R(x | y)", "S(y | z)")
        assert q.atom("S").relation == "S"
        with pytest.raises(QueryError):
            q.atom("T")

    def test_variables_and_constants(self):
        q = parse_query("R(x | 'c')", "S(x | y)")
        assert q.variables == {Variable("x"), Variable("y")}
        assert q.constants == {Constant("c")}

    def test_without(self):
        q = parse_query("R(x | y)", "S(y | z)")
        assert q.without("R").relations == {"S"}

    def test_substitute_freezes(self):
        q = parse_query("R(x | y)", "S(y | z)")
        frozen = q.freeze([Variable("y")])
        assert Parameter("y") in frozen.parameters
        assert Variable("y") not in frozen.variables

    def test_schema_extraction(self):
        q = parse_query("R(x, y | z)", "S(z |)")
        schema = q.schema()
        assert schema["R"].key_size == 2
        assert schema["S"].is_all_key

    def test_equality_is_set_like(self):
        q1 = parse_query("R(x | y)", "S(y | z)")
        q2 = parse_query("S(y | z)", "R(x | y)")
        assert q1 == q2 and hash(q1) == hash(q2)

    def test_replace_atom(self):
        q = parse_query("R(x | y)")
        new = q.replace_atom("R", parse_atom("R(x | 'c')"))
        assert new.atom("R").term_at(2) == Constant("c")


class TestConnectivity:
    def test_connected_through_shared_atom(self):
        q = parse_query("R(x | y)", "S(y | z)")
        assert q.connected(Variable("x"), Variable("z"))

    def test_disconnected_components(self):
        q = parse_query("R(x | y)", "S(u | v)")
        assert not q.connected(Variable("x"), Variable("u"))

    def test_self_connectivity_requires_membership(self):
        q = parse_query("R(x | y)")
        assert q.connected(Variable("x"), Variable("x"))
        restricted = frozenset({Variable("y")})
        assert not q.connected(Variable("x"), Variable("x"), restricted)

    def test_restriction_cuts_paths(self):
        q = parse_query("R(x | y)", "S(y | z)")
        keep = frozenset({Variable("x"), Variable("z")})
        assert not q.connected(Variable("x"), Variable("z"), keep)

    def test_gaifman_edges_within_one_atom(self):
        q = parse_query("T(x | y, z)")
        edges = q.gaifman_edges()
        assert Variable("z") in edges[Variable("x")]
