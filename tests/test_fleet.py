"""Tests for the multi-process serving fleet (`repro.serve.fleet`).

Covers the deployment-grade failure modes the in-process tests cannot:
worker crash → respawn + client-visible retry (never a hang), respawn
disabled → structured `unavailable` error, resize → ~1/N class-digest
remap asserted against the hash ring, and fleet-wide stats equalling the
merge of per-worker stats on a deterministic workload — plus the stats
merge/round-trip machinery itself and the front server running over a
process fleet end to end.
"""

import pytest

from repro.api import Problem, connect
from repro.engine import EngineStats, merge_engine_stats, merge_snapshots
from repro.engine.metrics import MetricsSnapshot
from repro.exceptions import RemoteError, WorkerUnavailableError
from repro.serve import (
    BackgroundServer,
    FleetConfig,
    FleetEngine,
    HashRing,
    ServeClient,
    ServerConfig,
    ShardedEngine,
    error_response,
)
from repro.serve.protocol import ERROR_CODES, error_code_for
from repro.workloads import fig1_instance, intro_query_q0


def _fig1_problem() -> Problem:
    query, fks = intro_query_q0()
    return Problem(query, fks, name="fig1")


def _class_problem(i: int) -> Problem:
    """Problems in pairwise-distinct canonical classes (constants are not
    renamed away, so each constant makes its own class)."""
    return Problem.of("R(x | y)", f"S(y | 'c{i}')", fks=["R[2]->S"])


def _class_instance(i: int):
    """A small instance matching :func:`_class_problem`'s schema."""
    from repro.core.schema import Schema
    from repro.db.instance import DatabaseInstance

    schema = Schema.of(R=(2, 1), S=(2, 1))
    return DatabaseInstance.build(
        schema, {"R": [("a", "b")], "S": [("b", f"c{i}")]}
    )


def _distinct_digests(count: int) -> list[str]:
    digests = [_class_problem(i).fingerprint.digest for i in range(count)]
    assert len(set(digests)) == count, "classes must be distinct"
    return digests


@pytest.fixture(scope="module")
def fleet():
    """One two-worker fleet shared by the read-only tests (spawning costs
    a fresh interpreter per worker; the destructive tests build their
    own)."""
    with FleetEngine(2) as engine:
        yield engine


class TestFleetEndToEnd:
    def test_decide_matches_local_session(self, fleet):
        problem = _fig1_problem()
        db = fig1_instance()
        with connect() as session:
            local = session.decide(problem, db)
        remote = fleet.decide(problem, db)
        assert remote.certain == local.certain
        assert remote.backend == local.backend
        assert remote.verdict == local.verdict
        assert remote.fingerprint == problem.fingerprint.digest

    def test_second_decide_hits_the_worker_plan_cache(self, fleet):
        problem = _class_problem(100)
        db = _class_instance(100)
        first = fleet.decide(problem, db)
        second = fleet.decide(problem, db)
        assert not first.cache_hit and second.cache_hit

    def test_decide_batch(self, fleet):
        problem = _fig1_problem()
        batch = fleet.decide_batch(
            problem, [fig1_instance(), fig1_instance()]
        )
        assert len(batch.answers) == 2
        assert batch.answers[0] == batch.answers[1]
        assert batch.fingerprint == problem.fingerprint.digest

    def test_classify_and_explain(self, fleet):
        problem = _fig1_problem()
        assert fleet.classify(problem).in_fo is True
        assert problem.fingerprint.digest in fleet.explain(problem)

    def test_placement_agrees_with_in_process_sharding(self, fleet):
        with ShardedEngine(2) as sharded:
            for i in range(20):
                problem = _class_problem(i)
                assert fleet.shard_for(problem) == sharded.shard_for(
                    problem
                ), "fleet and in-process ring must agree on placement"

    def test_rejects_nonzero_worker_port(self):
        with pytest.raises(ValueError, match="port"):
            FleetEngine(1, ServerConfig(port=7777, shards=1))


class TestCrashRecovery:
    def test_crash_triggers_respawn_and_retry(self):
        problem = _fig1_problem()
        db = fig1_instance()
        with connect() as session:
            expected = session.decide(problem, db).certain
        with FleetEngine(2) as engine:
            assert engine.decide(problem, db).certain == expected
            shard = engine.shard_for(problem)
            doomed = engine.supervisor.handle(shard)
            doomed.process.kill()
            doomed.process.join(timeout=10)
            # the next request must be answered, not hang: the request
            # path respawns the worker and retries once
            assert engine.decide(problem, db).certain == expected
            replacement = engine.supervisor.handle(shard)
            assert replacement.generation > doomed.generation
            assert replacement.process.pid != doomed.process.pid

    def test_broken_connection_to_live_worker_self_heals(self):
        # regression: a transport failure whose worker stayed alive (the
        # worker hung up on this connection, or the socket desynced) must
        # drop the cached client and redial — not brick the shard by
        # reusing the dead connection forever
        problem = _fig1_problem()
        db = fig1_instance()
        with FleetEngine(1) as engine:
            first = engine.decide(problem, db)
            generation = engine.supervisor.handle(0).generation
            engine._clients[0][1]._sock.close()  # sever, worker untouched
            healed = engine.decide(problem, db)
            assert healed.certain == first.certain
            # same worker answered: no respawn was needed for a mere
            # connection loss
            assert engine.supervisor.handle(0).generation == generation

    def test_crash_without_respawn_is_a_structured_error(self):
        problem = _fig1_problem()
        db = fig1_instance()
        with FleetEngine(
            1, config=FleetConfig(respawn=False, request_timeout=10)
        ) as engine:
            engine.decide(problem, db)
            handle = engine.supervisor.handle(0)
            handle.process.kill()
            handle.process.join(timeout=10)
            with pytest.raises(WorkerUnavailableError):
                engine.decide(problem, db)

    def test_unavailable_maps_to_its_envelope_code(self):
        assert error_code_for(WorkerUnavailableError("down")) == "unavailable"
        assert "unavailable" in ERROR_CODES
        envelope = error_response(7, "unavailable", "worker 0 is down")
        assert envelope["error"]["code"] == "unavailable"


class TestResize:
    def test_resize_remaps_a_minority_against_the_ring(self):
        digests = _distinct_digests(60)
        with FleetEngine(2) as engine:
            before = {d: engine._ring.shard_for(d) for d in digests}
            engine.resize(3)
            after_ring = HashRing(3)
            moved = 0
            for digest in digests:
                placed = engine._ring.shard_for(digest)
                # the resized fleet must agree with a fresh ring of the
                # same width (deterministic placement fleet-wide)
                assert placed == after_ring.shard_for(digest)
                if placed != before[digest]:
                    moved += 1
            # consistent hashing: a grow to 3 moves ~1/3, never a majority
            assert 0 < moved < len(digests) / 2
            assert engine.n_shards == 3
            # the new worker actually serves: decide something owned by it
            for i in range(60):
                problem = _class_problem(i)
                if engine.shard_for(problem) == 2:
                    decision = engine.decide(problem, _class_instance(i))
                    assert decision.fingerprint == \
                        problem.fingerprint.digest
                    break
            else:  # pragma: no cover - 60 classes always cover 3 shards
                pytest.fail("no class landed on the new worker")

    def test_shrink_drains_the_surplus_worker(self):
        with FleetEngine(2) as engine:
            surplus = engine.supervisor.handle(1)
            engine.resize(1)
            surplus.process.join(timeout=10)
            assert not surplus.process.is_alive()
            assert engine.n_shards == 1
            assert engine.decide(
                _fig1_problem(), fig1_instance()
            ).fingerprint == _fig1_problem().fingerprint.digest


class TestFleetStats:
    def test_fleet_stats_equal_the_merge_of_worker_stats(self):
        problems = [_class_problem(i) for i in range(6)]
        with FleetEngine(2) as engine:
            for i, problem in enumerate(problems):
                engine.decide(problem, _class_instance(i))
                engine.decide(problem, _class_instance(i))
            per_worker = engine.stats()
            merged = engine.merged_stats()
        assert len(per_worker) == 2
        recombined = merge_engine_stats(
            entry.stats for entry in per_worker
        )
        assert recombined == merged
        # the deterministic workload: 6 distinct classes, each decided
        # twice -> 6 misses, 6 hits, 12 evaluations fleet-wide
        assert merged.cache.misses == 6
        assert merged.cache.hits == 6
        assert merged.cache.size == 6
        assert sum(p.metrics.evaluations for p in merged.plans) == 12
        # every class appears exactly once in the merged plan list
        digests = [p.fingerprint for p in merged.plans]
        assert sorted(digests) == sorted(
            p.fingerprint.digest for p in problems
        )
        # and the per-worker split covers the whole workload
        assert sum(e.stats.cache.misses for e in per_worker) == 6

    def test_engine_stats_round_trip_through_dict(self):
        problem = _fig1_problem()
        with connect() as session:
            session.decide(problem, fig1_instance())
            session.decide(problem, fig1_instance())
            stats = session.stats()
        assert EngineStats.from_dict(stats.to_dict()) == stats

    def test_merge_snapshots_widens_extrema_and_sums(self):
        a = MetricsSnapshot(
            evaluations=2, batches=1, total_seconds=0.5,
            min_seconds=0.1, max_seconds=0.4,
            histogram=(1, 1, 0, 0, 0, 0, 0),
        )
        b = MetricsSnapshot(
            evaluations=3, batches=0, total_seconds=0.2,
            min_seconds=0.01, max_seconds=0.09,
            histogram=(0, 2, 1, 0, 0, 0, 0),
        )
        merged = merge_snapshots([a, b])
        assert merged.evaluations == 5
        assert merged.batches == 1
        assert merged.total_seconds == pytest.approx(0.7)
        assert merged.min_seconds == 0.01
        assert merged.max_seconds == 0.4
        assert merged.histogram == (1, 3, 1, 0, 0, 0, 0)

    def test_merge_engine_stats_folds_shared_classes(self):
        problem = _fig1_problem()
        with connect() as session:
            session.decide(problem, fig1_instance())
            stats = session.stats()
        doubled = merge_engine_stats([stats, stats])
        assert doubled.cache.capacity == 2 * stats.cache.capacity
        assert len(doubled.plans) == len(stats.plans)  # same class folds
        assert doubled.plans[0].metrics.evaluations == \
            2 * stats.plans[0].metrics.evaluations


class TestFrontServerOverProcesses:
    def test_loopback_decide_metrics_and_crash_recovery(self):
        problem = _fig1_problem()
        db = fig1_instance()
        with connect() as session:
            expected = session.decide(problem, db).certain
        with BackgroundServer(ServerConfig(processes=2)) as background:
            host, port = background.address
            with ServeClient(host, port) as client:
                decision = client.decide(problem, db)
                assert decision.certain == expected
                stats = client.stats()
                assert stats["server"]["processes"] == 2
                assert stats["server"]["shards"] == 2
                assert len(stats["shards"]) == 2
                exposition = client.metrics()
                assert "repro_server_requests_total" in exposition
                assert 'shard="0"' in exposition and 'shard="1"' in exposition
                # kill the owning worker behind the front: the very next
                # request must still be answered (respawn + retry), which
                # is the fleet's crash contract seen from a client
                fleet = background.server.sharded_engine
                shard = fleet.shard_for(problem)
                handle = fleet.supervisor.handle(shard)
                handle.process.kill()
                handle.process.join(timeout=10)
                survivor = client.decide(problem, db)
                assert survivor.certain == expected
                client.shutdown()
            background._thread.join(timeout=30)
            assert not background._thread.is_alive()

    def test_worker_remote_errors_pass_through_unchanged(self):
        # a malformed problem must come back as its own envelope code,
        # not get wrapped into a transport retry
        with BackgroundServer(ServerConfig(processes=1)) as background:
            host, port = background.address
            with ServeClient(host, port) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.request("conjure")
                assert excinfo.value.code == "unsupported"


class TestClientRetries:
    def test_retrying_client_survives_a_server_restart(self):
        problem = _fig1_problem()
        db = fig1_instance()
        config = ServerConfig(shards=1)
        with BackgroundServer(config) as first:
            host, port = first.address
            client = ServeClient(host, port, retries=1)
            assert client.decide(problem, db).certain in (True, False)
            # restart a server on the same port: the old connection dies
            first.stop()
            with BackgroundServer(
                ServerConfig(shards=1, host=host, port=port)
            ):
                decision = client.decide(problem, db)
                assert decision.fingerprint == problem.fingerprint.digest
            client.close()

    def test_zero_retries_still_raises(self):
        with BackgroundServer(ServerConfig(shards=1)) as background:
            host, port = background.address
            client = ServeClient(host, port)
        # the server is gone; a plain client must raise, not hang
        from repro.exceptions import ServeProtocolError

        with pytest.raises((ServeProtocolError, OSError)):
            client.ping()
        client.close()

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ServeClient("127.0.0.1", 1, retries=-1)
