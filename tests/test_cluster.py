"""Tests for the distributed cluster control plane (`repro.cluster`).

Covers the acceptance scenario end to end over real 127.0.0.1 TCP: a
worker on a second address joins a secret-requiring controller, receives
~1/N of the ring (stored refs migrate with versions preserved), serves
decides whose trace ids survive the extra hop, and — after a crash — is
evicted by heartbeat timeout with the ring rebalanced and no in-flight
request hung.  Plus the unit layers underneath: the HMAC handshake and
``unauthorized`` envelope, non-loopback bind validation, the name-keyed
ring's ~1/N remap guarantees, and the membership registry.
"""

import threading
import time

import pytest

from repro.api import Problem
from repro.cluster import (
    AgentConfig,
    ClusterMembership,
    WorkerAgent,
    compute_mac,
    verify_mac,
)
from repro.cluster.controller import ClusterEngine, ClusterServer
from repro.exceptions import RemoteError, WorkerUnavailableError
from repro.serve import BackgroundServer, HashRing, ServeClient, ServerConfig
from repro.serve.shard import ref_digest

SECRET = "test-fleet-secret"


def _class_problem(i: int) -> Problem:
    """Problems in pairwise-distinct canonical classes (constants are not
    renamed away, so each constant makes its own class)."""
    return Problem.of("R(x | y)", f"S(y | 'c{i}')", fks=["R[2]->S"])


def _class_instance(i: int):
    from repro.core.schema import Schema
    from repro.db.instance import DatabaseInstance

    schema = Schema.of(R=(2, 1), S=(2, 1))
    return DatabaseInstance.build(
        schema, {"R": [("a", "b")], "S": [("b", f"c{i}")]}
    )


def _controller_factory(heartbeat_timeout: float = 1.0):
    def factory(config: ServerConfig) -> ClusterServer:
        return ClusterServer(
            config,
            membership=ClusterMembership(
                heartbeat_timeout=heartbeat_timeout
            ),
        )

    return factory


def _agent(ctrl_addr, name, **overrides) -> WorkerAgent:
    host, port = ctrl_addr
    return WorkerAgent(
        ServerConfig(shards=1, linger_ms=0.0),
        AgentConfig(
            controller_host=host,
            controller_port=port,
            name=name,
            heartbeat_seconds=overrides.pop("heartbeat_seconds", 0.2),
            auth_secret=overrides.pop("auth_secret", SECRET),
            **overrides,
        ),
    )


def _wait_for_workers(client: ServeClient, n: int, timeout: float = 10.0):
    deadline = time.monotonic() + timeout
    status = None
    while time.monotonic() < deadline:
        status = client.stats()["server"]["cluster"]
        if status["workers"] == n:
            return status
        time.sleep(0.1)
    raise AssertionError(
        f"cluster never reached {n} workers; last status: {status}"
    )


class TestAuth:
    def test_mac_round_trip(self):
        mac = compute_mac("s", "nonce-1")
        assert verify_mac("s", "nonce-1", mac)
        assert not verify_mac("s", "nonce-2", mac)
        assert not verify_mac("other", "nonce-1", mac)
        assert not verify_mac("s", "nonce-1", None)

    def test_open_server_accepts_credentialed_client(self):
        # a no-secret loopback server answers required=False, so a client
        # configured with a secret works against it unchanged
        with BackgroundServer(ServerConfig(shards=1)) as server:
            host, port = server.address
            with ServeClient(host, port, auth_secret="anything") as client:
                assert client.ping()["pong"] is True

    def test_unauthenticated_request_is_refused(self):
        config = ServerConfig(shards=1, auth_secret=SECRET)
        with BackgroundServer(config) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.ping()
                assert excinfo.value.code == "unauthorized"

    def test_bad_secret_is_refused(self):
        config = ServerConfig(shards=1, auth_secret=SECRET)
        with BackgroundServer(config) as server:
            host, port = server.address
            with pytest.raises(RemoteError) as excinfo:
                ServeClient(host, port, auth_secret="wrong").ping()
            assert excinfo.value.code == "unauthorized"

    def test_good_secret_authenticates(self):
        config = ServerConfig(shards=1, auth_secret=SECRET)
        with BackgroundServer(config) as server:
            host, port = server.address
            with ServeClient(host, port, auth_secret=SECRET) as client:
                assert client.ping()["pong"] is True


class TestHostValidation:
    def test_non_loopback_bind_requires_secret(self):
        with pytest.raises(ValueError, match="without authentication"):
            ServerConfig(host="0.0.0.0")

    def test_non_loopback_bind_with_secret_is_allowed(self):
        config = ServerConfig(host="0.0.0.0", auth_secret=SECRET)
        assert config.auth_secret == SECRET

    @pytest.mark.parametrize("host", ["127.0.0.1", "localhost", "::1",
                                      "127.1.2.3"])
    def test_loopback_bind_stays_open(self, host):
        assert ServerConfig(host=host).auth_secret is None

    def test_tls_cert_and_key_must_pair(self):
        with pytest.raises(ValueError, match="together"):
            ServerConfig(tls_cert="cert.pem")
        with pytest.raises(ValueError, match="together"):
            ServerConfig(tls_key="key.pem")


class TestNamedRing:
    def _placements(self, ring: HashRing, count: int = 2000) -> dict:
        return {
            i: ring.shard_for(ref_digest(f"key-{i}")) for i in range(count)
        }

    def test_default_names_preserve_historical_placement(self):
        # tokens default to shard-<i>/<replica>, so an unnamed ring of the
        # same width places every digest exactly where it always did
        plain = HashRing(3)
        named = HashRing(3, names=("shard-0", "shard-1", "shard-2"))
        assert self._placements(plain) == self._placements(named)

    def test_join_remaps_about_one_nth(self):
        old = HashRing(3, names=("a", "b", "c"))
        new = HashRing(4, names=("a", "b", "c", "d"))
        before = self._placements(old)
        after = self._placements(new)
        moved = [i for i in before if after[i] != before[i]]
        # everything that moved went TO the joiner (index 3)
        assert all(after[i] == 3 for i in moved)
        assert 0.10 <= len(moved) / len(before) <= 0.45  # ~1/4

    def test_arbitrary_leave_remaps_only_the_leaver(self):
        old = HashRing(3, names=("a", "b", "c"))
        # the MIDDLE member leaves: survivors keep their names but "c"
        # compacts from index 2 to index 1
        new = HashRing(2, names=("a", "c"))
        before = self._placements(old)
        after = self._placements(new)
        for i, shard in before.items():
            name = old.names[shard]
            if name == "b":
                continue  # the leaver's keys may go anywhere
            assert new.names[after[i]] == name, (
                "a surviving member's keys must not move on another "
                "member's leave"
            )
        orphaned = [i for i, s in before.items() if old.names[s] == "b"]
        assert 0.15 <= len(orphaned) / len(before) <= 0.55  # ~1/3

    def test_same_name_rejoin_reclaims_exact_ranges(self):
        assert self._placements(
            HashRing(3, names=("a", "b", "c"))
        ) == self._placements(HashRing(3, names=("a", "b", "c")))

    def test_name_validation(self):
        with pytest.raises(ValueError):
            HashRing(2, names=("a",))  # length mismatch
        with pytest.raises(ValueError):
            HashRing(2, names=("a", "a"))  # duplicates


class TestMembership:
    def test_register_heartbeat_deregister(self):
        clock = [0.0]
        m = ClusterMembership(heartbeat_timeout=5.0, clock=lambda: clock[0])
        h1, joined = m.register("w1", "10.0.0.1", 7000)
        assert joined and h1.shard == 0
        h2, joined = m.register("w2", "10.0.0.2", 7000)
        assert joined and h2.shard == 1
        assert m.ring_names() == ["w1", "w2"]
        # re-registration: same slot, new generation (redials connections)
        h1b, joined = m.register("w1", "10.0.0.1", 7001)
        assert not joined
        assert h1b.shard == 0 and h1b.port == 7001
        assert h1b.generation > h2.generation
        assert m.heartbeat("w1") and not m.heartbeat("ghost")
        m.deregister("w1")
        assert m.ring_names() == ["w2"]
        assert m.handle_for("w2").shard == 0  # compacted

    def test_stale_members_are_refused_and_evicted(self):
        clock = [0.0]
        m = ClusterMembership(heartbeat_timeout=1.0, clock=lambda: clock[0])
        m.register("w1", "10.0.0.1", 7000)
        m.register("w2", "10.0.0.2", 7000)
        clock[0] = 0.9
        m.heartbeat("w2")
        clock[0] = 1.5  # w1 silent for 1.5s, w2 for 0.6s
        with pytest.raises(WorkerUnavailableError, match="heartbeats"):
            m.ensure_alive(0)
        assert m.ensure_alive(1).name == "w2"
        evicted = m.evict_stale()
        assert [h.name for h in evicted] == ["w1"]
        assert m.ring_names() == ["w2"]

    def test_restart_waits_for_a_newer_registration(self):
        m = ClusterMembership(heartbeat_timeout=5.0)
        handle, _ = m.register("w1", "10.0.0.1", 7000)
        # the connection cache snapshots the generation *int* at dial time
        # (the handle itself is updated in place by a re-registration)
        observed = handle.generation
        # no newer registration arrived: structured failure, never a hang
        with pytest.raises(WorkerUnavailableError, match="re-register"):
            m.restart(0, observed)
        # the worker re-registered (restart bumped its port): hand it back
        newer, _ = m.register("w1", "10.0.0.1", 7001)
        recovered = m.restart(0, observed)
        assert recovered.generation == newer.generation
        assert recovered.port == 7001

    def test_engine_with_no_workers_fails_structured(self):
        engine = ClusterEngine()
        try:
            with pytest.raises(WorkerUnavailableError, match="no workers"):
                engine.shard_for_ref("some-ref")
        finally:
            engine.close()


class TestClusterEndToEnd:
    """The acceptance scenario over real loopback TCP with auth."""

    def test_join_serve_migrate_crash_evict(self):
        ctrl_config = ServerConfig(
            shards=2, linger_ms=0.0, auth_secret=SECRET
        )
        factory = _controller_factory(heartbeat_timeout=1.0)
        with BackgroundServer(ctrl_config, server_factory=factory) as ctrl:
            with ServeClient(
                *ctrl.address, auth_secret=SECRET, timeout=30.0
            ) as client:
                self._scenario(ctrl, client)

    def _scenario(self, ctrl, client):
        problem, db = _class_problem(0), _class_instance(0)

        # before any worker joins: structured unavailable, never a hang
        with pytest.raises(RemoteError) as excinfo:
            client.decide(problem, db)
        assert excinfo.value.code == "unavailable"

        worker_a = _agent(ctrl.address, "worker-a").start()
        try:
            status = _wait_for_workers(client, 1)
            assert [m["name"] for m in status["members"]] == ["worker-a"]

            # decide end-to-end, trace id intact through the extra hop
            result = client.request(
                "decide", problem=problem, instance=db, trace_id="tr-1"
            )
            assert result["decision"]["certain"] is True
            assert result["trace_id"] == "tr-1"
            spans = client.trace("tr-1")["spans"]
            names = {span["name"] for span in spans}
            assert "transport" in names  # the controller→worker hop
            assert "solve" in names  # recorded worker-side

            # seed named instances, some at an explicit non-default
            # version (migration must carry versions, not reset them)
            for i in range(12):
                client.put_instance(f"ref-{i}", _class_instance(i))
            for i in range(0, 12, 3):
                info = client.put_instance(
                    f"ref-{i}", _class_instance(i), version=7
                )
                assert info["instance"]["version"] == 7

            self._join_and_migrate(ctrl, client)
        finally:
            worker_a.stop()

    def _join_and_migrate(self, ctrl, client):
        # concurrent decides DURING the join must neither hang nor be
        # silently dropped: every one resolves to an answer or a
        # structured envelope within the client timeout
        outcomes: list = []

        def hammer():
            with ServeClient(
                *ctrl.address, auth_secret=SECRET, timeout=20.0
            ) as c:
                for i in range(30):
                    try:
                        r = c.request(
                            "decide",
                            problem=_class_problem(i % 6),
                            instance=_class_instance(i % 6),
                        )
                        outcomes.append(r["decision"]["certain"])
                    except RemoteError as error:
                        outcomes.append(error.code)

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for t in threads:
            t.start()
        worker_b = _agent(ctrl.address, "worker-b").start()
        status = _wait_for_workers(client, 2)
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "a decide hung during the rebalance"
        assert len(outcomes) == 60  # nothing silently dropped
        assert all(o is True or isinstance(o, str) for o in outcomes)

        # ~1/N of the ring belongs to the joiner now
        engine = ctrl.server.cluster_engine
        ring = engine._require_ring()
        owned = sum(
            1 for i in range(2000)
            if ring.names[ring.shard_for(ref_digest(f"key-{i}"))]
            == "worker-b"
        )
        assert 0.15 <= owned / 2000 <= 0.85

        # every ref survived the migration, versions preserved
        listing = client.list_instances()
        refs = {i["ref"]: i["version"] for i in listing["instances"]}
        assert set(refs) == {f"ref-{i}" for i in range(12)}
        for i in range(12):
            assert refs[f"ref-{i}"] == (7 if i % 3 == 0 else 1)
        # ...and some land on the joiner (ref-affinity followed the ring)
        b_shard = engine.membership.handle_for("worker-b").shard
        moved = [
            i for i in range(12)
            if engine.shard_for_ref(f"ref-{i}") == b_shard
        ]
        assert moved, "the joiner received none of the stored refs"
        _, version = client.get_instance(f"ref-{moved[0]}")
        assert version == refs[f"ref-{moved[0]}"]

        # a decide against a migrated ref works (stored on the new owner)
        r = client.request(
            "decide", problem=_class_problem(moved[0]),
            instance_ref=f"ref-{moved[0]}",
        )
        assert r["decision"]["certain"] is True

        self._crash_and_evict(client, engine, worker_b)

    def _crash_and_evict(self, client, engine, worker_b):
        epoch_before = engine.membership.ring_epoch
        worker_b.kill()  # no deregister: the controller learns by timeout

        # an in-flight request routed at the dead worker answers a
        # structured envelope (unavailable), not a hang
        dead_class = next(
            i for i in range(50)
            if engine._require_ring().names[
                engine.shard_for(_class_problem(i))
            ] == "worker-b"
        )
        started = time.monotonic()
        with pytest.raises(RemoteError) as excinfo:
            client.request(
                "decide", problem=_class_problem(dead_class),
                instance=_class_instance(dead_class),
            )
        assert excinfo.value.code == "unavailable"
        assert time.monotonic() - started < 30.0

        # heartbeat-timeout eviction shrinks the ring...
        status = _wait_for_workers(client, 1, timeout=15.0)
        assert status["evictions"] == 1
        assert status["ring_epoch"] > epoch_before
        assert [m["name"] for m in status["members"]] == ["worker-a"]

        # ...and service continues on the survivor, dead classes included
        result = client.request(
            "decide", problem=_class_problem(dead_class),
            instance=_class_instance(dead_class),
        )
        assert result["decision"]["certain"] is True

        # cluster telemetry is exported on the metrics page
        page = client.metrics()
        assert "repro_cluster_workers 1" in page
        assert "repro_cluster_evictions_total 1" in page


class TestResizeVerb:
    def test_thread_shard_server_cannot_resize(self):
        with BackgroundServer(ServerConfig(shards=2)) as server:
            with ServeClient(*server.address) as client:
                with pytest.raises(RemoteError, match="cannot resize"):
                    client.request("resize", workers=3)

    def test_controller_resize_drains_and_records_target(self):
        config = ServerConfig(shards=2, linger_ms=0.0, auth_secret=SECRET)
        factory = _controller_factory(heartbeat_timeout=30.0)
        with BackgroundServer(config, server_factory=factory) as ctrl:
            a = _agent(ctrl.address, "wa").start()
            b = _agent(ctrl.address, "wb").start()
            try:
                with ServeClient(
                    *ctrl.address, auth_secret=SECRET
                ) as client:
                    _wait_for_workers(client, 2)
                    client.put_instance("keep-me", _class_instance(1))
                    # shrink: the youngest member drains; its refs move
                    result = client.request("resize", workers=1)
                    assert result["workers"] == 1
                    listing = client.list_instances()
                    assert [i["ref"] for i in listing["instances"]] == [
                        "keep-me"
                    ]
                    # grow: nothing to spawn — the target is recorded
                    result = client.request("resize", workers=3)
                    assert result["workers"] == 1
                    status = client.stats()["server"]["cluster"]
                    assert status["target_workers"] == 3
            finally:
                b.kill()  # resize already shut the drained worker down
                a.stop()


class TestAgentRejoin:
    def test_evicted_agent_reregisters_on_unknown_heartbeat(self):
        config = ServerConfig(shards=1, linger_ms=0.0, auth_secret=SECRET)
        factory = _controller_factory(heartbeat_timeout=30.0)
        with BackgroundServer(config, server_factory=factory) as ctrl:
            agent = _agent(ctrl.address, "phoenix").start()
            try:
                engine = ctrl.server.cluster_engine
                with ServeClient(
                    *ctrl.address, auth_secret=SECRET
                ) as client:
                    _wait_for_workers(client, 1)
                    # simulate a controller-side eviction (as a partition
                    # outlasting the timeout would): the agent's next
                    # heartbeat answers known=false and it rejoins
                    engine.deregister_worker("phoenix")
                    status = _wait_for_workers(client, 1, timeout=10.0)
                    assert [m["name"] for m in status["members"]] == [
                        "phoenix"
                    ]
                    assert client.request(
                        "decide", problem=_class_problem(2),
                        instance=_class_instance(2),
                    )["decision"]["certain"] is True
            finally:
                agent.stop()
