"""Backoff policy and client retry-schedule shape.

The satellite contract: reconnect and overloaded retries share one
capped-exponential-plus-jitter policy, the ``retry_after_ms`` hint is a
*floor* on the jittered wait (never rounded down below what the server
asked for), and the schedule's shape — doubling from ``base_ms`` to
``cap_ms`` — is assertable deterministically with ``jitter=0``.
"""

import random

import pytest

from repro.exceptions import RemoteError, ServeProtocolError
from repro.serve import BackoffPolicy, ServeClient, backoff_delay_seconds
from repro.serve.backoff import BackoffPolicy as _ReExport


class TestBackoffPolicy:
    def test_deterministic_schedule_doubles_to_cap(self):
        policy = BackoffPolicy(base_ms=50, cap_ms=400, jitter=0.0)
        delays = [policy.delay_ms(attempt) for attempt in range(6)]
        assert delays == [50, 100, 200, 400, 400, 400]

    def test_huge_attempt_does_not_overflow(self):
        policy = BackoffPolicy(base_ms=50, cap_ms=2000, jitter=0.0)
        assert policy.delay_ms(10_000) == 2000

    def test_jitter_stays_within_band(self):
        policy = BackoffPolicy(base_ms=100, cap_ms=1000, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(5):
            full = min(100 * 2**attempt, 1000)
            for _ in range(50):
                delay = policy.delay_ms(attempt, rng=rng)
                assert 0.5 * full <= delay <= full

    def test_retry_after_floor_wins_over_small_backoff(self):
        policy = BackoffPolicy(base_ms=10, cap_ms=100, jitter=1.0)
        rng = random.Random(3)
        for _ in range(50):
            seconds = backoff_delay_seconds(
                0, policy, retry_after_ms=80, rng=rng
            )
            assert seconds >= 0.080

    def test_delay_seconds_conversion(self):
        policy = BackoffPolicy(base_ms=50, cap_ms=400, jitter=0.0)
        assert backoff_delay_seconds(1, policy) == pytest.approx(0.100)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_ms": 0},
            {"base_ms": -1},
            {"base_ms": 100, "cap_ms": 50},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    def test_reexport_is_the_same_class(self):
        assert _ReExport is BackoffPolicy


def _offline_client(retries: int, policy: BackoffPolicy) -> ServeClient:
    """A ServeClient that never dialed anywhere: transport stubbed out."""
    client = ServeClient.__new__(ServeClient)
    client._host, client._port = "stub", 0
    client._timeout = None
    client._retries = retries
    client._backoff = policy
    client._rng = random.Random(0)
    client._closed = False
    import itertools

    client._ids = itertools.count(1)
    client._sock = client._file = None
    return client


class TestClientRetrySchedule:
    def test_overloaded_retries_sleep_retry_after_floored_schedule(self):
        policy = BackoffPolicy(base_ms=50, cap_ms=400, jitter=0.0)
        client = _offline_client(retries=4, policy=policy)
        sleeps: list[float] = []
        client._sleep = sleeps.append
        attempts = 0

        def shed_then_answer(*args, **kwargs):
            nonlocal attempts
            attempts += 1
            if attempts <= 3:
                raise RemoteError("overloaded", "busy", retry_after_ms=120)
            return {"pong": True}

        client._cycle = shed_then_answer
        client.reconnect = lambda: pytest.fail(
            "overloaded retries must stay on the same connection"
        )
        assert client.request("ping") == {"pong": True}
        # attempts 0,1 back off below the 120 ms hint → floored at it;
        # attempt 2 would wait 200 ms > hint → the backoff curve wins
        assert sleeps == [0.120, 0.120, 0.200]

    def test_transport_retries_follow_backoff_and_reconnect(self):
        policy = BackoffPolicy(base_ms=50, cap_ms=400, jitter=0.0)
        client = _offline_client(retries=3, policy=policy)
        sleeps: list[float] = []
        reconnects = []
        client._sleep = sleeps.append
        client.reconnect = lambda: reconnects.append(True)
        attempts = 0

        def die_then_answer(*args, **kwargs):
            nonlocal attempts
            attempts += 1
            if attempts <= 3:
                raise ServeProtocolError("server closed the connection")
            return {"pong": True}

        client._cycle = die_then_answer
        assert client.request("ping") == {"pong": True}
        assert sleeps == [0.050, 0.100, 0.200]  # pure doubling, no floor
        assert len(reconnects) == 3

    def test_exhausted_retries_reraise_overloaded(self):
        policy = BackoffPolicy(base_ms=1, cap_ms=2, jitter=0.0)
        client = _offline_client(retries=2, policy=policy)
        sleeps: list[float] = []
        client._sleep = sleeps.append

        def always_shed(*args, **kwargs):
            raise RemoteError("overloaded", "busy", retry_after_ms=5)

        client._cycle = always_shed
        with pytest.raises(RemoteError) as excinfo:
            client.request("ping")
        assert excinfo.value.code == "overloaded"
        assert excinfo.value.retry_after_ms == 5
        assert len(sleeps) == 2  # slept before each retry, not the raise

    def test_non_overloaded_envelopes_never_retry(self):
        client = _offline_client(
            retries=5, policy=BackoffPolicy(jitter=0.0)
        )
        client._sleep = lambda _: pytest.fail("must not sleep")
        calls = []

        def internal_error(*args, **kwargs):
            calls.append(True)
            raise RemoteError("internal", "boom")

        client._cycle = internal_error
        with pytest.raises(RemoteError):
            client.request("ping")
        assert len(calls) == 1

    def test_mutations_without_cas_never_retry_on_overload(self):
        client = _offline_client(
            retries=5, policy=BackoffPolicy(jitter=0.0)
        )
        client._sleep = lambda _: pytest.fail("must not sleep")
        calls = []

        def shed(*args, **kwargs):
            calls.append(True)
            raise RemoteError("overloaded", "busy", retry_after_ms=9)

        client._cycle = shed
        with pytest.raises(RemoteError):
            # instance_drop is a mutation with no CAS: replay_safe says no
            client.request("instance_drop", instance_ref="r1")
        assert len(calls) == 1
