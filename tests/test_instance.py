"""Unit tests for repro.db.facts and repro.db.instance."""

import pytest

from repro.core.schema import Schema
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.exceptions import SchemaError


def F(rel, *values, key=1):
    return Fact(rel, tuple(values), key)


class TestFact:
    def test_key_split(self):
        fact = F("R", 1, 2, 3, key=2)
        assert fact.key == (1, 2)
        assert fact.nonkey == (3,)

    def test_key_equal(self):
        assert F("R", 1, 2).key_equal(F("R", 1, 3))
        assert not F("R", 1, 2).key_equal(F("S", 1, 2))
        assert not F("R", 1, 2, key=2).key_equal(F("R", 1, 3, key=2))

    def test_value_at_is_one_based(self):
        assert F("R", "a", "b").value_at(2) == "b"

    def test_invalid_key_size(self):
        with pytest.raises(SchemaError):
            Fact("R", (1,), 2)


class TestInstanceBasics:
    def test_signature_consistency_enforced(self):
        with pytest.raises(SchemaError):
            DatabaseInstance([F("R", 1, 2), F("R", 1, 2, 3)])

    def test_build_from_schema(self):
        schema = Schema.of(R=(2, 1))
        db = DatabaseInstance.build(schema, {"R": [(1, 2), (1, 3)]})
        assert db.size == 2

    def test_build_arity_mismatch(self):
        schema = Schema.of(R=(2, 1))
        with pytest.raises(SchemaError):
            DatabaseInstance.build(schema, {"R": [(1, 2, 3)]})

    def test_active_domain(self):
        db = DatabaseInstance([F("R", 1, "a")])
        assert db.active_domain() == {1, "a"}

    def test_key_constants(self):
        db = DatabaseInstance([F("R", 1, "a"), F("S", "b", 1)])
        assert db.key_constants() == {1, "b"}

    def test_schema_roundtrip(self):
        db = DatabaseInstance([F("R", 1, 2, key=2)])
        assert db.schema()["R"].key_size == 2


class TestBlocks:
    def test_blocks_group_key_equal_facts(self):
        db = DatabaseInstance([F("R", 1, 2), F("R", 1, 3), F("R", 2, 2)])
        blocks = db.blocks("R")
        assert sorted(len(b) for b in blocks) == [1, 2]

    def test_block_lookup(self):
        db = DatabaseInstance([F("R", 1, 2), F("R", 1, 3)])
        assert len(db.block(F("R", 1, 9))) == 2
        assert db.block_of("R", (7,)) == frozenset()

    def test_key_violations(self):
        db = DatabaseInstance([F("R", 1, 2), F("R", 1, 3), F("S", 1, 1)])
        assert db.violates_primary_keys()
        assert len(db.key_violations()) == 1

    def test_mixed_type_keys_sortable(self):
        db = DatabaseInstance([F("R", 1, 2), F("R", "a", 2)])
        assert len(db.blocks()) == 2


class TestIndexes:
    def test_facts_with_value(self):
        db = DatabaseInstance([F("R", 1, 2), F("R", 3, 2), F("R", 3, 4)])
        assert len(db.facts_with_value("R", 2, 2)) == 2
        assert db.facts_with_value("R", 1, 99) == frozenset()

    def test_key_prefix_lookup(self):
        db = DatabaseInstance([F("S", "k", 0)])
        assert db.has_fact_with_key_prefix("S", "k")
        assert not db.has_fact_with_key_prefix("S", "z")

    def test_index_of_unknown_relation(self):
        db = DatabaseInstance()
        assert db.facts_with_value("R", 1, 1) == frozenset()


class TestSetAlgebra:
    def test_union_difference(self):
        db = DatabaseInstance([F("R", 1, 2)])
        other = DatabaseInstance([F("R", 3, 4)])
        assert db.union(other).size == 2
        assert db.union(other).difference(db) == other

    def test_symmetric_difference(self):
        db = DatabaseInstance([F("R", 1, 2), F("R", 3, 4)])
        r = DatabaseInstance([F("R", 1, 2), F("R", 5, 6)])
        assert db.symmetric_difference(r) == {F("R", 3, 4), F("R", 5, 6)}

    def test_restrict_relations(self):
        db = DatabaseInstance([F("R", 1, 2), F("S", 1, 1)])
        assert db.restrict_relations(["S"]).relations == {"S"}


class TestCloseness:
    """Example 4's incomparability: r2 ⋠ r3 and r3 ⋠ r2."""

    def setup_method(self):
        self.db = DatabaseInstance([F("R", "a", "b"), F("S", "b", "c")])
        self.r2 = DatabaseInstance(
            [F("R", "a", "b"), F("S", "b", 1), F("T", 1)]
        )
        self.r3 = DatabaseInstance(
            [F("R", "a", "b"), F("S", "b", "c"), F("T", "c")]
        )

    def test_incomparable(self):
        assert not self.db.closer_or_equal(self.r2, self.r3)
        assert not self.db.closer_or_equal(self.r3, self.r2)

    def test_reflexive(self):
        assert self.db.closer_or_equal(self.r2, self.r2)
        assert not self.db.strictly_closer(self.r2, self.r2)

    def test_strictly_closer_on_subset(self):
        smaller = DatabaseInstance([F("R", "a", "b"), F("S", "b", "c")])
        assert self.db.strictly_closer(smaller, self.r3)
