"""The open-loop load harness: schedules, populations, accounting, CLI."""

import json
import math
import random

import pytest

from repro.cli import main
from repro.exceptions import ReproError
from repro.load import (
    LoadProfile,
    SyntheticWorkload,
    arrival_times,
    arrivals_from_trace,
    run_loadgen,
    zipf_weights,
)
from repro.load.harness import LoadReport
from repro.serve import BackgroundServer, ServerConfig


class TestLoadProfile:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_seconds": 0},
            {"rate_rps": -1},
            {"schedule": "sawtooth"},
            {"burst_factor": 0.5},
            {"burst_start": 0.7, "burst_end": 0.4},
            {"n_classes": 0},
            {"zipf_s": -0.1},
            {"tenants": 0},
            {"instance_sizes": ()},
            {"instance_sizes": (2, 0)},
            {"instance_sizes": (2, 3), "instance_size_weights": (1.0,)},
            {"connections": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            LoadProfile(**kwargs)

    def test_burst_rate_shape(self):
        profile = LoadProfile(
            duration_seconds=10, rate_rps=100, schedule="burst",
            burst_factor=3.0, burst_start=0.4, burst_end=0.7,
        )
        assert profile.rate_at(1.0) == 100
        assert profile.rate_at(5.0) == 300
        assert profile.rate_at(8.0) == 100

    def test_diurnal_starts_at_trough_and_peaks_mid_cycle(self):
        profile = LoadProfile(
            duration_seconds=10, rate_rps=100, schedule="diurnal",
            diurnal_cycles=1.0,
        )
        assert profile.rate_at(0.0) < 1.0  # the overnight lull
        assert profile.rate_at(5.0) == pytest.approx(200, rel=1e-6)


class TestArrivals:
    def test_deterministic_in_seed(self):
        profile = LoadProfile(duration_seconds=3, rate_rps=50, seed=11)
        assert arrival_times(profile) == arrival_times(profile)
        other = LoadProfile(duration_seconds=3, rate_rps=50, seed=12)
        assert arrival_times(profile) != arrival_times(other)

    def test_sorted_within_duration_near_expected_count(self):
        profile = LoadProfile(duration_seconds=20, rate_rps=100, seed=5)
        arrivals = arrival_times(profile)
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 20 for t in arrivals)
        # Poisson with mean 2000: ±5 sigma
        assert abs(len(arrivals) - 2000) < 5 * math.sqrt(2000)

    def test_burst_window_is_denser(self):
        profile = LoadProfile(
            duration_seconds=10, rate_rps=100, schedule="burst",
            burst_factor=4.0, burst_start=0.5, burst_end=0.8, seed=2,
        )
        arrivals = arrival_times(profile)
        inside = sum(1 for t in arrivals if 5 <= t < 8)
        before = sum(1 for t in arrivals if 0 <= t < 3)
        # equal-width windows at 4x vs 1x the rate
        assert inside > 2.5 * before


class TestTraceReplay:
    def test_recovers_per_trace_arrival_gaps(self, tmp_path):
        spans = [
            # trace a: two spans; the earlier start is the arrival
            {"trace_id": "a", "start": 1000.50, "seconds": 0.01},
            {"trace_id": "a", "start": 1000.48, "seconds": 0.02},
            {"trace_id": "b", "start": 1001.48, "seconds": 0.01},
            {"trace_id": "c", "start": 1002.48, "seconds": 0.01},
        ]
        path = tmp_path / "spans.jsonl"
        path.write_text(
            "".join(json.dumps(s) + "\n" for s in spans) + "{torn"
        )
        offsets = arrivals_from_trace(path)
        assert offsets == pytest.approx([0.0, 1.0, 2.0])
        assert arrivals_from_trace(path, speed=2.0) == pytest.approx(
            [0.0, 0.5, 1.0]
        )

    def test_rejects_empty_and_missing_logs(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("not json\n[1,2]\n")
        with pytest.raises(ReproError):
            arrivals_from_trace(empty)
        with pytest.raises(ReproError):
            arrivals_from_trace(tmp_path / "nope.jsonl")
        with pytest.raises(ReproError):
            arrivals_from_trace(empty, speed=0)


class TestSyntheticWorkload:
    def test_zipf_weights_normalized_and_skewed(self):
        weights = zipf_weights(6, 1.1)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)
        assert zipf_weights(4, 0.0) == pytest.approx([0.25] * 4)

    def test_plan_is_deterministic_in_seed(self):
        profile = LoadProfile(n_classes=5, tenants=2, seed=9)
        first = SyntheticWorkload(profile).plan(30)
        second = SyntheticWorkload(profile).plan(30)
        assert [
            (r.label, r.tenant, r.size, r.tier) for r in first
        ] == [(r.label, r.tenant, r.size, r.tier) for r in second]

    def test_popularity_follows_zipf_rank(self):
        profile = LoadProfile(n_classes=6, zipf_s=1.4, tenants=1, seed=1)
        workload = SyntheticWorkload(profile)
        counts = {}
        for request in workload.plan(600):
            counts[request.label] = counts.get(request.label, 0) + 1
        ranked = workload.class_labels
        # rank 0 must clearly dominate the tail
        assert counts[ranked[0]] > 2 * counts.get(ranked[-1], 0)

    def test_tenants_lead_with_different_hot_classes(self):
        profile = LoadProfile(n_classes=6, zipf_s=2.0, tenants=3, seed=4)
        workload = SyntheticWorkload(profile)
        hot = {}
        for request in workload.plan(900):
            per = hot.setdefault(request.tenant, {})
            per[request.label] = per.get(request.label, 0) + 1
        leaders = {
            tenant: max(per, key=per.get) for tenant, per in hot.items()
        }
        assert len(set(leaders.values())) > 1, (
            f"tenant hotsets should rotate, all lead with {leaders}"
        )

    def test_draws_cover_the_configured_sizes(self):
        profile = LoadProfile(
            n_classes=3, instance_sizes=(2, 4),
            instance_size_weights=(0.5, 0.5), seed=0,
        )
        sizes = {r.size for r in SyntheticWorkload(profile).plan(60)}
        assert sizes == {2, 4}


class TestHarness:
    @pytest.fixture(scope="class")
    def server(self):
        with BackgroundServer(ServerConfig(shards=2)) as background:
            yield background.address

    def test_run_reports_per_tier_latency(self, server):
        host, port = server
        profile = LoadProfile(
            duration_seconds=1.0, rate_rps=40, n_classes=5,
            connections=2, seed=3,
        )
        report = run_loadgen(host, port, profile)
        assert report.sent == report.offered > 0
        assert report.ok == report.sent
        assert report.overloaded == report.errors == 0
        assert report.incomplete == 0
        assert report.tier_metrics, "ok decides must land in tiers"
        for snapshot in report.tier_metrics.values():
            assert snapshot.evaluations > 0
            assert snapshot.p99_seconds is not None
        assert sum(
            s.evaluations for s in report.tier_metrics.values()
        ) == report.ok

    def test_render_and_to_dict(self, server):
        host, port = server
        profile = LoadProfile(
            duration_seconds=0.5, rate_rps=30, n_classes=4,
            tenants=2, connections=2, seed=6,
        )
        report = run_loadgen(host, port, profile)
        text = report.render()
        assert "client-observed latency by tier" in text
        assert "p99 ms" in text
        document = report.to_dict()
        assert document["ok"] == report.ok
        assert set(document["tiers"]) == set(report.tier_metrics)
        assert document["tenants"], "per-tenant counts must be reported"
        json.dumps(document)  # the --json path must serialize

    def test_sheds_counted_not_recorded_as_latency(self, server_overload):
        host, port = server_overload
        profile = LoadProfile(
            duration_seconds=1.0, rate_rps=150, n_classes=4,
            connections=4, seed=3,
        )
        report = run_loadgen(host, port, profile)
        assert report.overloaded > 0
        assert report.retry_after_ms_max >= 1
        # the accounting satellite: sheds are counters, never samples
        assert sum(
            s.evaluations for s in report.tier_metrics.values()
        ) == report.ok
        assert report.ok + report.overloaded + report.errors == report.sent

    @pytest.fixture(scope="class")
    def server_overload(self):
        config = ServerConfig(shards=1, max_inflight=2, retry_after_ms=10)
        with BackgroundServer(config) as background:
            yield background.address

    def test_empty_report_renders(self):
        report = LoadReport(
            schedule="steady", offered=0, sent=0, ok=0, overloaded=0,
            errors=0, incomplete=0, duration_seconds=0.0, offered_rps=0.0,
        )
        assert "no tiers recorded" in report.render()
        assert report.completed_rps == 0.0
        assert report.shed_rate == 0.0


class TestCli:
    def test_loadgen_and_fleet_status_commands(self, capsys):
        config = ServerConfig(shards=1, max_inflight=2, retry_after_ms=10)
        with BackgroundServer(config) as background:
            host, port = background.address
            exit_code = main([
                "loadgen", "--connect", f"{host}:{port}",
                "--duration", "0.6", "--rate", "120",
                "--schedule", "burst", "--classes", "4",
                "--connections", "4", "--seed", "3",
            ])
            loadgen_out = capsys.readouterr().out
            status_code = main(
                ["fleet-status", "--connect", f"{host}:{port}"]
            )
            status_out = capsys.readouterr().out
        assert exit_code == 0
        assert "overloaded=" in loadgen_out
        assert "client-observed latency by tier" in loadgen_out
        assert status_code == 0
        assert "admission: max_inflight=2" in status_out
        assert "shed=" in status_out
        assert "autoscale: off" in status_out

    def test_loadgen_json_output(self, capsys):
        with BackgroundServer(ServerConfig(shards=1)) as background:
            host, port = background.address
            exit_code = main([
                "loadgen", "--connect", f"{host}:{port}",
                "--duration", "0.4", "--rate", "40", "--json",
                "--classes", "3", "--seed", "1",
            ])
        assert exit_code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["sent"] > 0
        assert document["errors"] == 0

    def test_loadgen_rejects_bad_profile(self, capsys):
        exit_code = main([
            "loadgen", "--connect", "127.0.0.1:1",
            "--schedule", "steady", "--rate", "-5",
        ])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_rejects_autoscale_without_processes(self, capsys):
        exit_code = main([
            "serve", "--port", "0", "--autoscale", "1:4",
        ])
        assert exit_code == 2
        assert "process fleet" in capsys.readouterr().err
