#!/usr/bin/env python
"""Chaos smoke: replication, promotion and a rolling restart under fire.

The CI-shaped fault drill for the hardened cluster, using nothing but
the public CLI surface (``python -m repro`` subprocesses) and the
public client.  A controller and three workers serve a stream of
stored-ref decides from a retrying client while the script injects
faults, asserting in order:

1. **replicate** — stored refs are mirrored to their ring successors
   (the mirror backlog drains to zero);
2. **SIGKILL** — one worker dies without a goodbye mid-traffic: the
   heartbeat timeout evicts it, its refs answer from promoted replicas
   with versions preserved, and ``repro_cluster_promotions_total``
   lands on the metrics page;
3. **rejoin** — a replacement worker under the same name rejoins and
   the fleet is back at full width;
4. **rolling restart** — ``repro fleet rolling-restart`` drains and
   rejoins every worker in turn, exit code 0;
5. **zero failed decides** — the decide hammer that ran through all of
   the above reports no request that exhausted its retries.

Run locally (from the repository root):

    PYTHONPATH=src python tools/chaos_smoke.py

Exit code 0 on success; every step prints an ``ok:`` line.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SECRET = "chaos-smoke-secret"
PYTHON = sys.executable
DEADLINE_SECONDS = 300.0
N_REFS = 6

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import Problem  # noqa: E402
from repro.core.schema import Schema  # noqa: E402
from repro.db.instance import DatabaseInstance  # noqa: E402
from repro.exceptions import RemoteError  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

_DEADLINE = time.monotonic() + DEADLINE_SECONDS


def _remaining() -> float:
    left = _DEADLINE - time.monotonic()
    if left <= 0:
        raise SystemExit("FAIL smoke exceeded its global deadline")
    return left


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    env["REPRO_CLUSTER_SECRET"] = SECRET
    return env


def _spawn(args: list[str]) -> subprocess.Popen:
    return subprocess.Popen(
        [PYTHON, "-m", "repro", *args],
        cwd=REPO_ROOT,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _await_line(proc: subprocess.Popen, marker: str, what: str) -> str:
    deadline = time.monotonic() + min(30.0, _remaining())
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                f"FAIL {what} exited {proc.returncode} before announcing"
            )
        line = proc.stdout.readline()
        if marker in line:
            return line
    raise SystemExit(f"FAIL {what} never announced {marker!r}")


def _spawn_worker(host: str, port: int, name: str) -> subprocess.Popen:
    worker = _spawn([
        "serve", "--join", f"{host}:{port}", "--port", "0",
        "--worker-name", name, "--heartbeat", "0.5",
        "--linger-ms", "0",
    ])
    _await_line(worker, "joined controller", f"worker {name}")
    return worker


def _problem(i: int) -> Problem:
    return Problem.of("R(x | y)", f"S(y | 'c{i}')", fks=["R[2]->S"])


def _instance(i: int) -> DatabaseInstance:
    return DatabaseInstance.build(
        Schema.of(R=(2, 1), S=(2, 1)),
        {"R": [("a", "b")], "S": [("b", f"c{i}")]},
    )


def _await_status(client: ServeClient, predicate, what: str) -> dict:
    deadline = time.monotonic() + min(60.0, _remaining())
    status = None
    while time.monotonic() < deadline:
        try:
            status = client.stats()["server"]["cluster"]
            if predicate(status):
                return status
        except (RemoteError, OSError):
            pass
        time.sleep(0.2)
    raise SystemExit(f"FAIL never observed {what}: {status}")


class DecideHammer(threading.Thread):
    """Stored-ref decides in a loop; a request only counts as failed
    when its retries are exhausted — the zero-failed-decides bar."""

    def __init__(self, host: str, port: int):
        super().__init__(name="chaos-hammer", daemon=True)
        self._address = (host, port)
        # NOT named _stop: threading.Thread owns that attribute
        self._halt = threading.Event()
        self.decided = 0
        self.failures: list[str] = []

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        i = 0
        while not self._halt.is_set():
            ref = f"smoke-ref-{i % N_REFS}"
            deadline = time.monotonic() + 30.0
            answered = False
            while time.monotonic() < deadline and not answered:
                try:
                    with ServeClient(
                        *self._address, auth_secret=SECRET, timeout=10.0
                    ) as client:
                        result = client.request(
                            "decide", problem=_problem(i % N_REFS),
                            instance_ref=ref,
                        )
                    assert result["decision"]["certain"] is True
                    answered = True
                except (RemoteError, OSError, AssertionError):
                    time.sleep(0.1)
            if answered:
                self.decided += 1
            else:
                self.failures.append(ref)
            i += 1
            time.sleep(0.05)


def main() -> int:
    procs: list[subprocess.Popen] = []
    hammer: DecideHammer | None = None
    try:
        controller = _spawn([
            "serve", "--controller", "--port", "0",
            "--heartbeat-timeout", "3", "--linger-ms", "0",
        ])
        procs.append(controller)
        announce = _await_line(controller, "listening on", "controller")
        endpoint = announce.split("listening on ", 1)[1].split()[0]
        host, port_text = endpoint.rsplit(":", 1)
        port = int(port_text)
        print(f"ok: controller listening on {host}:{port}")

        workers: dict[str, subprocess.Popen] = {}
        for name in ("chaos-a", "chaos-b", "chaos-c"):
            workers[name] = _spawn_worker(host, port, name)
            procs.append(workers[name])
            print(f"ok: worker {name} joined")

        with ServeClient(
            host, port, auth_secret=SECRET, timeout=30.0
        ) as client:
            _await_status(
                client, lambda s: s["workers"] == 3, "3 workers"
            )
            for i in range(N_REFS):
                client.put_instance(
                    f"smoke-ref-{i}", _instance(i), version=3
                )
            status = _await_status(
                client,
                lambda s: s["replication"]["pending"] == 0,
                "a drained mirror backlog",
            )
            assert status["replication"]["enabled"], status
            print(f"ok: {N_REFS} refs stored and replicated "
                  f"(replicated={status['replication']['replicated']})")

            hammer = DecideHammer(host, port)
            hammer.start()

            # SIGKILL one worker mid-traffic: no goodbye, no drain
            victim = "chaos-b"
            workers[victim].send_signal(signal.SIGKILL)
            workers[victim].wait(timeout=30)
            status = _await_status(
                client, lambda s: s["workers"] == 2, "the eviction"
            )
            print(f"ok: {victim} SIGKILLed and evicted (epoch "
                  f"{status['ring_epoch']})")
            status = _await_status(
                client,
                lambda s: s["replication"]["promotions"] >= 1,
                "replica promotion",
            )
            print(f"ok: replicas promoted "
                  f"(promotions={status['replication']['promotions']})")
            for i in range(N_REFS):
                _, version = client.get_instance(f"smoke-ref-{i}")
                assert version == 3, f"smoke-ref-{i} lost its version"
            print("ok: all refs answer with versions preserved")

            # a same-name replacement rejoins the ring
            workers[victim] = _spawn_worker(host, port, victim)
            procs.append(workers[victim])
            _await_status(
                client, lambda s: s["workers"] == 3, "the rejoin"
            )
            print(f"ok: replacement {victim} rejoined; fleet back at 3")

            # the rolling-restart drill, with the hammer still swinging
            drill = subprocess.run(
                [
                    PYTHON, "-m", "repro", "fleet", "rolling-restart",
                    "--connect", f"{host}:{port}",
                    "--step-timeout", "90",
                ],
                cwd=REPO_ROOT, env=_env(),
                capture_output=True, text=True,
                timeout=min(240.0, _remaining()),
            )
            if drill.returncode != 0:
                print(drill.stdout)
                print(drill.stderr, file=sys.stderr)
                raise SystemExit(
                    f"FAIL rolling-restart exited {drill.returncode}"
                )
            print("ok: rolling-restart drill completed (exit 0)")

            hammer.stop()
            hammer.join(timeout=60)
            if hammer.failures:
                raise SystemExit(
                    f"FAIL {len(hammer.failures)} decides exhausted "
                    f"their retries: {hammer.failures[:5]}"
                )
            assert hammer.decided > 0, "the hammer never decided anything"
            print(f"ok: zero failed decides across every fault "
                  f"({hammer.decided} served)")

            page = client.metrics()
            for needle in (
                "repro_cluster_promotions_total",
                "repro_cluster_replications_total",
                "repro_cluster_replication_pending",
                "repro_cluster_evictions_total",
            ):
                assert needle in page, f"metrics page lacks {needle}"
            print("ok: replication counters exported on the metrics page")

            client.shutdown()
        controller.wait(timeout=30)
        print("chaos smoke: all steps passed")
        return 0
    finally:
        if hammer is not None:
            hammer.stop()
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
