#!/usr/bin/env python
"""Cluster smoke: a real controller + 2 workers over 127.0.0.1 TCP.

The CI-shaped end-to-end drill for ``repro.cluster``, using nothing but
the public CLI surface (three ``python -m repro serve`` subprocesses)
and the public client. The script asserts, in order:

1. **join** — two ``--join`` workers register with a shared-secret
   controller and the cluster reports both members;
2. **auth** — a client with no secret and a client with a wrong secret
   both get the structured ``unauthorized`` envelope; the right secret
   serves;
3. **decide** — a decide round-trips through controller → worker and
   back, and spreads over both workers' ring ranges;
4. **crash** — one worker is SIGKILLed (no goodbye): the controller
   evicts it by heartbeat timeout, shrinks the ring, and keeps serving
   the dead worker's classes from the survivor — with no request ever
   hanging.

Run locally (from the repository root):

    PYTHONPATH=src python tools/cluster_smoke.py

Exit code 0 on success; every step prints an ``ok:`` line.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SECRET = "cluster-smoke-secret"
PYTHON = sys.executable
DEADLINE_SECONDS = 180.0

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import Problem  # noqa: E402
from repro.core.schema import Schema  # noqa: E402
from repro.db.instance import DatabaseInstance  # noqa: E402
from repro.exceptions import RemoteError  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

_DEADLINE = time.monotonic() + DEADLINE_SECONDS


def _remaining() -> float:
    left = _DEADLINE - time.monotonic()
    if left <= 0:
        raise SystemExit("FAIL smoke exceeded its global deadline")
    return left


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    env["REPRO_CLUSTER_SECRET"] = SECRET
    return env


def _spawn(args: list[str]) -> subprocess.Popen:
    return subprocess.Popen(
        [PYTHON, "-m", "repro", *args],
        cwd=REPO_ROOT,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _await_line(proc: subprocess.Popen, marker: str, what: str) -> str:
    """Read the process's stdout until *marker* appears (ports are
    ephemeral, so the announce line is the handshake)."""
    deadline = time.monotonic() + min(30.0, _remaining())
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                f"FAIL {what} exited {proc.returncode} before announcing"
            )
        line = proc.stdout.readline()
        if marker in line:
            return line
    raise SystemExit(f"FAIL {what} never announced {marker!r}")


def _problem(i: int) -> Problem:
    return Problem.of("R(x | y)", f"S(y | 'c{i}')", fks=["R[2]->S"])


def _instance(i: int) -> DatabaseInstance:
    return DatabaseInstance.build(
        Schema.of(R=(2, 1), S=(2, 1)),
        {"R": [("a", "b")], "S": [("b", f"c{i}")]},
    )


def _wait_for_workers(client: ServeClient, n: int) -> dict:
    deadline = time.monotonic() + min(30.0, _remaining())
    status = None
    while time.monotonic() < deadline:
        status = client.stats()["server"]["cluster"]
        if status["workers"] == n:
            return status
        time.sleep(0.2)
    raise SystemExit(f"FAIL never reached {n} worker(s): {status}")


def main() -> int:
    procs: list[subprocess.Popen] = []
    try:
        controller = _spawn([
            "serve", "--controller", "--port", "0",
            "--heartbeat-timeout", "3", "--linger-ms", "0",
        ])
        procs.append(controller)
        announce = _await_line(controller, "listening on", "controller")
        endpoint = announce.split("listening on ", 1)[1].split()[0]
        host, port_text = endpoint.rsplit(":", 1)
        port = int(port_text)
        print(f"ok: controller listening on {host}:{port}")

        workers = {}
        for name in ("smoke-a", "smoke-b"):
            worker = _spawn([
                "serve", "--join", f"{host}:{port}", "--port", "0",
                "--worker-name", name, "--heartbeat", "0.5",
                "--linger-ms", "0",
            ])
            procs.append(worker)
            _await_line(worker, "joined controller", f"worker {name}")
            workers[name] = worker
            print(f"ok: worker {name} joined")

        # auth: no secret and a wrong secret both answer `unauthorized`
        for label, kwargs in (
            ("no secret", {}),
            ("bad secret", {"auth_secret": "not-the-secret"}),
        ):
            try:
                with ServeClient(host, port, **kwargs) as bad:
                    bad.ping()
            except RemoteError as error:
                assert error.code == "unauthorized", error
                print(f"ok: {label} refused with `unauthorized`")
            else:
                raise SystemExit(f"FAIL {label} was not refused")

        with ServeClient(
            host, port, auth_secret=SECRET, timeout=30.0
        ) as client:
            status = _wait_for_workers(client, 2)
            names = sorted(m["name"] for m in status["members"])
            assert names == ["smoke-a", "smoke-b"], status
            print(f"ok: cluster reports both workers (epoch "
                  f"{status['ring_epoch']})")

            # decide round-trips; enough classes to touch both workers
            shards = set()
            for i in range(12):
                result = client.request(
                    "decide", problem=_problem(i), instance=_instance(i)
                )
                assert result["decision"]["certain"] is True, result
                shards.add(result["shard"])
            assert len(shards) == 2, f"one worker served everything: {shards}"
            print(f"ok: 12 decides served across both workers {sorted(shards)}")

            # crash one worker without a goodbye: SIGKILL, not stop()
            victim = workers["smoke-b"]
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
            print("ok: worker smoke-b SIGKILLed")

            # service continues: every decide during the crash window
            # answers or fails structured — and once the heartbeat
            # timeout evicts the corpse, all classes serve again
            status = _wait_for_workers(client, 1)
            assert status["evictions"] >= 1, status
            assert [m["name"] for m in status["members"]] == ["smoke-a"]
            print(f"ok: heartbeat timeout evicted smoke-b (epoch "
                  f"{status['ring_epoch']})")

            for i in range(12):
                result = client.request(
                    "decide", problem=_problem(i), instance=_instance(i)
                )
                assert result["decision"]["certain"] is True, result
            page = client.metrics()
            assert "repro_cluster_workers 1" in page
            assert "repro_cluster_evictions_total" in page
            print("ok: survivor serves all classes; cluster metrics exported")

            client.shutdown()
        controller.wait(timeout=30)
        print("cluster smoke: all steps passed")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
