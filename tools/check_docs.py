#!/usr/bin/env python
"""Documentation checks: intra-repo links and runnable quickstart snippets.

Two passes over ``README.md`` and every ``docs/**/*.md``:

1. **Links** — every relative markdown link target (``[text](path)``,
   optionally with a ``#fragment``) must exist in the repository.
   External schemes (``http(s)``, ``mailto``) and pure in-page fragments
   are skipped; fragments on ``.md`` targets are checked against the
   target's headings (GitHub anchor style).
2. **Snippets** — every fenced code block opened as ```` ```bash doc-test ````
   is executed verbatim with ``bash -euo pipefail`` in a scratch
   directory, with ``PYTHONPATH`` pointing at this checkout's ``src``.
   That pins the README's command examples to the real CLI: a renamed
   flag fails CI instead of rotting in the docs.

Exit code 0 on success; failures are listed one per line.  Run locally:

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files whose links and snippets are checked.
DOC_SOURCES = ("README.md", "docs")

#: The info string that marks a fenced block as runnable.
RUNNABLE_INFO = "bash doc-test"

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(.*)$")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def _doc_files() -> list[Path]:
    files: list[Path] = []
    for source in DOC_SOURCES:
        path = REPO_ROOT / source
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
    return files


def _strip_fences(text: str) -> str:
    """Drop fenced code blocks: their brackets/parens are not links."""
    lines = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            lines.append(line)
    return "\n".join(lines)


def _github_anchor(heading: str) -> str:
    """GitHub's heading → anchor slug (the common subset)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\s-]", "", slug, flags=re.UNICODE)
    return re.sub(r"\s+", "-", slug).strip("-")


def _anchors(path: Path) -> set[str]:
    return {
        _github_anchor(match.group(1))
        for line in path.read_text().splitlines()
        if (match := _HEADING.match(line))
    }


def check_links(files: list[Path]) -> list[str]:
    failures = []
    for doc in files:
        for target in _LINK.findall(_strip_fences(doc.read_text())):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):  # in-page fragment
                if _github_anchor(target[1:]) not in _anchors(doc):
                    failures.append(
                        f"{doc.relative_to(REPO_ROOT)}: broken in-page "
                        f"anchor {target!r}"
                    )
                continue
            raw_path, _, fragment = target.partition("#")
            resolved = (doc.parent / raw_path).resolve()
            if not resolved.exists():
                failures.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link {target!r}"
                )
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in _anchors(resolved):
                    failures.append(
                        f"{doc.relative_to(REPO_ROOT)}: broken anchor "
                        f"{target!r}"
                    )
    return failures


#: Topics that must stay documented: doc name → literal strings that
#: must appear in it.  A renamed metric family or a dropped section
#: fails here instead of silently rotting.
REQUIRED_TOPICS = {
    "deployment.md": (
        "## Overload and autoscaling",
        "--max-inflight",
        "retry_after_ms",
        "repro loadgen",
        "--autoscale",
        "## Measured: E19",
        "## Distributed fleet",
        "--controller",
        "--join",
        "--heartbeat-timeout",
        "repro fleet",
        "## Measured: E20",
        "## Failure domains and replication",
        "repro fleet rolling-restart",
    ),
    "observability.md": (
        "repro_server_shed_total",
        "repro_server_inflight",
        "repro_server_queue_depth",
        "repro_server_workers",
        "`server.shed`",
        "`autoscale.decision`",
        "repro_cluster_workers",
        "repro_cluster_evictions_total",
        "`cluster.rebalance`",
        "`agent.heartbeat_failed`",
        "repro_cluster_replication_pending",
        "repro_cluster_promotions_total",
        "repro_cluster_replications_total",
    ),
    "protocol.md": (
        "### Transport hardening: the `auth` handshake",
        "### Cluster membership",
        "`register`",
        "`heartbeat`",
        "`unauthorized`",
        "HMAC-SHA256",
        "### Replication",
        "`replicate`",
        "`replica_inventory`",
        "`promote`",
    ),
}


def check_required_topics() -> list[str]:
    failures = []
    for name, topics in REQUIRED_TOPICS.items():
        path = REPO_ROOT / "docs" / name
        if not path.exists():  # reported by the required-files pass
            continue
        text = path.read_text()
        failures.extend(
            f"docs/{name}: required topic {topic!r} is no longer covered"
            for topic in topics if topic not in text
        )
    return failures


def _runnable_snippets(doc: Path) -> list[tuple[int, str]]:
    snippets = []
    lines = doc.read_text().splitlines()
    collecting: list[str] | None = None
    start = 0
    for number, line in enumerate(lines, start=1):
        fence = _FENCE.match(line.strip())
        if fence is None:
            if collecting is not None:
                collecting.append(line)
            continue
        if collecting is not None:  # closing fence
            snippets.append((start, "\n".join(collecting)))
            collecting = None
        elif fence.group(1).strip() == RUNNABLE_INFO:
            collecting = []
            start = number
    return snippets


def check_snippets(files: list[Path]) -> list[str]:
    failures = []
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    env["REPRO_ROOT"] = str(REPO_ROOT)
    for doc in files:
        for line_number, body in _runnable_snippets(doc):
            with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
                result = subprocess.run(
                    ["bash", "-euo", "pipefail", "-c", body],
                    cwd=scratch,
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=300,
                )
            where = f"{doc.relative_to(REPO_ROOT)}:{line_number}"
            if result.returncode != 0:
                tail = (result.stderr or result.stdout).strip().splitlines()
                detail = tail[-1] if tail else "(no output)"
                failures.append(
                    f"{where}: snippet exited {result.returncode}: {detail}"
                )
            else:
                print(f"ok: ran snippet {where}")
    return failures


def main() -> int:
    files = _doc_files()
    required = [REPO_ROOT / "docs" / name for name in (
        "architecture.md", "protocol.md", "backends.md", "deployment.md",
        "observability.md",
    )]
    failures = [
        f"missing required document docs/{path.name}"
        for path in required if not path.exists()
    ]
    failures += check_required_topics()
    failures += check_links(files)
    failures += check_snippets(files)
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print(f"docs ok: {len(files)} files checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
