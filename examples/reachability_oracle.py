#!/usr/bin/env python3
"""Graph reachability through the lens of inconsistent databases.

Lemma 15 / Fig. 3 turn "is there a path from s to t?" into "is this dirty
database certain about a query?".  This example builds the exact Fig. 3
graph (s → 1, s → 2, 2 → t), walks through the reduction's database, then
answers reachability questions on random layered DAGs three independent
ways:

* plain BFS on the graph,
* the Proposition 17 dual-Horn solver on the reduced instance,
* the exact ⊕-repair oracle on the reduced instance (small cases only).

Run:  python examples/reachability_oracle.py
"""

import random

from repro.hardness import DiGraph, ReachabilityInstance, reduce_reachability
from repro.repairs import certain_answer
from repro.solvers import certain_by_dual_horn, proposition17_query
from repro.workloads import layered_dag


def fig3_walkthrough() -> None:
    print("=== Fig. 3 walkthrough ===")
    graph = DiGraph.from_edges(
        [("s", 1), ("s", 2), (2, "t")], vertices=["s", 1, 2, "t"]
    )
    instance = ReachabilityInstance(graph, "s", "t")
    db = reduce_reachability(instance)
    print("reduced database:")
    print(db.pretty())
    query, fks = proposition17_query("c")
    answer = certain_answer(query, fks, db)
    print(f"\npath s→t exists: {instance.answer}")
    print(f"reduced instance is a no-instance: {not answer.certain}")
    if answer.falsifying_repair is not None:
        print("falsifying ⊕-repair (the path, cooked into a repair):")
        print(answer.falsifying_repair.pretty())
    print()


def random_dags() -> None:
    print("=== random layered DAGs, three deciders ===")
    rng = random.Random(2024)
    query, fks = proposition17_query("c")
    print(f"{'layers×width':>13s} {'bfs':>6s} {'dual-horn':>10s} {'oracle':>7s}")
    for layers, width, force in [
        (3, 2, True), (3, 2, False), (4, 2, None), (4, 3, None), (5, 2, None),
    ]:
        graph, source, target = layered_dag(
            layers, width, rng, connect_probability=0.35,
            guarantee_path=force,
        )
        instance = ReachabilityInstance(graph, source, target)
        db = reduce_reachability(instance)
        bfs = instance.answer
        horn = not certain_by_dual_horn(db, "c")
        if db.size <= 18:
            oracle = str(not certain_answer(query, fks, db).certain)
        else:
            oracle = "(skip)"
        print(f"{f'{layers}×{width}':>13s} {str(bfs):>6s} {str(horn):>10s} {oracle:>7s}")
    print("\nAll three columns agree: the reduction is answer-preserving.")


def main() -> None:
    fig3_walkthrough()
    random_dags()


if __name__ == "__main__":
    main()
