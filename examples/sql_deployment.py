#!/usr/bin/env python3
"""Deploying a consistent rewriting as plain SQL on a live SQLite database.

CQA's selling point for practitioners (the ConQuer line of systems the
paper cites): once ``CERTAINTY(q, FK)`` is in FO, the certain answer is
*one SQL query away* — no repair enumeration, no solver, just the dirty
tables.  This example

1. loads the Fig. 1 bibliography into an in-memory SQLite database,
2. compiles the consistent rewriting of the intro query q0 to SQL,
3. runs it, showing the naive answer vs the certain answer,
4. repeats after the data-cleaning step the paper sketches.

Run:  python examples/sql_deployment.py
"""

import sqlite3

from repro import consistent_rewriting
from repro.fo.sql import create_table_statements, insert_statements, to_sql
from repro.workloads import fig1_instance, intro_query_q0


def load_sqlite(db):
    connection = sqlite3.connect(":memory:")
    for ddl in create_table_statements(db.schema()):
        connection.execute(ddl)
    for statement, values in insert_statements(db):
        connection.execute(statement, values)
    return connection


def main() -> None:
    query, fks = intro_query_q0()
    rewriting = consistent_rewriting(query, fks)
    sql = to_sql(rewriting.formula, query.schema())

    naive_sql = """
        SELECT EXISTS (
            SELECT 1 FROM DOCS d
            JOIN R r ON r.c1 = d.c1
            JOIN AUTHORS a ON a.c1 = r.c2
            WHERE d.c3 = '2016' AND a.c2 = 'Jeff'
        )
    """

    print("=== the compiled consistent rewriting (q0) ===")
    print(sql)
    print()

    db = fig1_instance()
    connection = load_sqlite(db)
    (naive,) = connection.execute(naive_sql).fetchone()
    (certain,) = connection.execute(sql).fetchone()
    print("on the dirty Fig. 1 database:")
    print(f"  naive SQL answer:   {bool(naive)}   (trusts every dirty row)")
    print(f"  certain SQL answer: {bool(certain)}   (holds in every repair)")
    connection.close()
    print()

    cleaned = db.difference(
        [
            next(
                f for f in db.relation_facts("AUTHORS")
                if f.values[1] == "Jeffrey"
            ),
            next(
                f for f in db.relation_facts("R") if f.values[1] == "o3"
            ),
        ]
    )
    connection = load_sqlite(cleaned)
    (certain_clean,) = connection.execute(sql).fetchone()
    print("after cleaning (keep 'Jeff', drop the dangling authorship):")
    print(f"  certain SQL answer: {bool(certain_clean)}")
    connection.close()
    print()
    print(
        "The same SQL string answered both states — the formula is data-"
        "independent,\nwhich is exactly what membership in FO buys."
    )


if __name__ == "__main__":
    main()
