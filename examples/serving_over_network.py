#!/usr/bin/env python3
"""Serving CERTAINTY(q, FK) over the network: server, clients, wire format.

The `repro.serve` walkthrough:

1. start the asyncio certainty server on a loopback port (2 shards, each
   with its own plan cache and warm prepared solvers);
2. from a blocking client, decide a mixed problem stream remotely — every
   request crosses the wire as ``Problem.to_dict()`` + instance JSON and
   comes back as a ``Decision`` with provenance (backend, trichotomy
   verdict, owning shard, plan-cache hit) intact;
3. from an asyncio client, fire a burst of concurrent decides for one
   problem and watch the server fold them into micro-batches;
4. read the ``stats`` verb: per-shard plan caches, per-backend latency
   aggregates, micro-batching counters.

Run:  PYTHONPATH=src python examples/serving_over_network.py
"""

import asyncio

from repro.serve import (
    AsyncServeClient,
    BackgroundServer,
    ServeClient,
    ServerConfig,
)
from repro.workloads import StreamParams, mixed_problem_stream


def serve_stream(client: ServeClient) -> None:
    print("=== remote decides over a mixed problem stream ===")
    header = (
        f"{'request':<10} {'verdict':<8} {'backend':<16} {'shard':<6} "
        f"{'cache':<6} answer"
    )
    print(header)
    print("-" * len(header))
    params = StreamParams(
        n_problems=10, instances_per_problem=1, seed=7, repeat_rate=0.4
    )
    for item in mixed_problem_stream(params):
        problem = item.problem
        result = client.request(
            "decide",
            problem=problem,
            instance=item.instances[0],
        )
        decision = result["decision"]
        cache = "hit" if decision["cache_hit"] else "miss"
        print(
            f"{item.label:<10} {decision['verdict']:<8} "
            f"{decision['backend']:<16} {result['shard']:<6} {cache:<6} "
            f"certain={decision['certain']}"
        )


async def burst(host: str, port: int) -> None:
    print()
    print("=== concurrent burst: micro-batching in action ===")
    params = StreamParams(n_problems=1, instances_per_problem=8, seed=3)
    item = next(iter(mixed_problem_stream(params)))
    async with await AsyncServeClient.connect(host, port) as client:
        results = await asyncio.gather(
            *[client.decide(item.problem, db) for db in item.instances]
        )
    sizes = sorted(r["micro_batch"] for r in results)
    print(
        f"fired {len(results)} concurrent decides of one problem; "
        f"observed micro-batch sizes {sizes}"
    )


def show_stats(client: ServeClient) -> None:
    print()
    print("=== the stats verb ===")
    stats = client.stats()
    server = stats["server"]
    print(
        f"requests: {server['requests']}  errors: {server['errors']}  "
        f"micro-batches: {server['micro_batches']} "
        f"(batched requests: {server['batched_requests']})"
    )
    for shard in stats["shards"]:
        cache = shard["cache"]
        print(
            f"shard {shard['shard']}: {cache['size']} cached plans, "
            f"{cache['hits']} hits / {cache['misses']} misses"
        )
        for backend in shard["backends"]:
            metrics = backend["metrics"]
            mean = metrics["mean_seconds"]
            mean_text = (
                f"{mean * 1e6:.1f} µs/eval" if mean is not None else "unused"
            )
            print(
                f"   {backend['backend']:<16} {metrics['evaluations']:>4} "
                f"evals  {mean_text}"
            )


def main() -> None:
    config = ServerConfig(shards=2, linger_ms=25, max_batch=16)
    with BackgroundServer(config) as background:
        host, port = background.address
        print(f"server up on {host}:{port} ({config.shards} shards)\n")
        with ServeClient(host, port) as client:
            serve_stream(client)
            asyncio.run(burst(host, port))
            show_stats(client)
            client.shutdown()
    print("\nserver drained and stopped.")


if __name__ == "__main__":
    main()
