"""Process-per-shard deployment: the fleet in five acts.

1. spawn a two-worker fleet (each worker is a private certainty server),
2. serve a mixed stream and watch class-digest routing pin each problem
   class to one worker's warm plan cache,
3. kill a worker mid-service and watch the supervisor respawn it — the
   next request is answered, not dropped,
4. resize the fleet and watch only ~1/N of the classes remap,
5. read fleet-wide observability: merged engine stats + one Prometheus
   page.

Run: ``PYTHONPATH=src python examples/fleet_deployment.py``

The same fleet serves over the network via ``repro serve --processes N``
(see ``docs/deployment.md``); this example drives the
:class:`repro.serve.FleetEngine` directly so every step is visible.
"""

from repro.api import Problem
from repro.core.schema import Schema
from repro.db.instance import DatabaseInstance
from repro.serve import FleetEngine


def class_problem(i: int) -> Problem:
    # distinct constants -> distinct canonical classes -> spread over the
    # ring (renamed twins would share one class and one worker)
    return Problem.of(
        "R(x | y)", f"S(y | 'c{i}')", fks=["R[2]->S"], name=f"class-{i}"
    )


def class_instance(i: int) -> DatabaseInstance:
    schema = Schema.of(R=(2, 1), S=(2, 1))
    return DatabaseInstance.build(
        schema, {"R": [("a", "b")], "S": [("b", f"c{i}")]}
    )


def main() -> None:
    workload = [(class_problem(i), class_instance(i)) for i in range(6)]

    print("== spawn ==")
    with FleetEngine(2) as fleet:
        for handle in fleet.supervisor.handles():
            print(
                f"worker {handle.shard}: pid {handle.process.pid} "
                f"on {handle.host}:{handle.port}"
            )

        print("\n== routed serving ==")
        for problem, db in workload:
            decision = fleet.decide(problem, db)
            print(
                f"{problem.name}: certain={decision.certain} "
                f"shard={fleet.shard_for(problem)} "
                f"backend={decision.backend}"
            )
        hits = [
            fleet.decide(problem, db).cache_hit for problem, db in workload
        ]
        print(f"second pass plan-cache hits: {sum(hits)}/{len(hits)}")

        print("\n== crash and respawn ==")
        victim_problem, victim_db = workload[0]
        shard = fleet.shard_for(victim_problem)
        doomed = fleet.supervisor.handle(shard)
        doomed.process.kill()
        doomed.process.join(timeout=10)
        decision = fleet.decide(victim_problem, victim_db)  # retried
        replacement = fleet.supervisor.handle(shard)
        print(
            f"worker {shard} killed (pid {doomed.process.pid}) -> "
            f"respawned as pid {replacement.process.pid}, "
            f"request still answered: certain={decision.certain}"
        )

        print("\n== resize ==")
        before = {
            problem.name: fleet.shard_for(problem)
            for problem, _ in workload
        }
        fleet.resize(3)
        moved = [
            name
            for (problem, _), name in zip(workload, before)
            if fleet.shard_for(problem) != before[problem.name]
        ]
        print(
            f"2 -> 3 workers: {len(moved)}/{len(workload)} classes "
            f"remapped ({', '.join(moved) or 'none'})"
        )

        print("\n== observability ==")
        merged = fleet.merged_stats()
        print(
            f"fleet-wide cache: {merged.cache.hits} hits, "
            f"{merged.cache.misses} misses over "
            f"{merged.cache.capacity} aggregate capacity"
        )
        from repro.engine import prom_exposition

        page = prom_exposition(
            ({"shard": str(entry.shard)}, entry.stats)
            for entry in fleet.stats()
        )
        print("prometheus page, first lines:")
        for line in page.splitlines()[:6]:
            print(f"  {line}")
    print("\nfleet drained.")


if __name__ == "__main__":
    main()
