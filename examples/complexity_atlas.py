#!/usr/bin/env python3
"""The dichotomy atlas: classify every problem the paper mentions.

Prints the Theorem 12 verdict for each catalog entry — attack-graph
acyclicity, block-interference witness, final complexity — and, for the FO
cases, the constructed consistent first-order rewriting with its reduction
trace (which Fig. 4 lemma fired at each step).

Run:  python examples/complexity_atlas.py
"""

from repro import classify, consistent_rewriting, render
from repro.core.classify import pk_trichotomy
from repro.fo.simplify import size
from repro.workloads import paper_catalog


def main() -> None:
    entries = paper_catalog()
    width = max(len(e.label) for e in entries)
    print(
        f"{'problem':{width}s}  {'attack':7s} {'interf.':8s} "
        f"{'FK=∅ class':14s} verdict"
    )
    print("-" * (width + 52))
    for entry in entries:
        c = classify(entry.query, entry.fks)
        attack = "cyclic" if c.attack_graph_cyclic else "acyclic"
        interference = c.interference.via if c.interference else "-"
        baseline = pk_trichotomy(entry.query).name
        print(
            f"{entry.label:{width}s}  {attack:7s} {interference:8s} "
            f"{baseline:14s} {c.verdict.name}"
        )
    print()
    print("=== consistent FO rewritings for the rewritable problems ===")
    for entry in entries:
        if not entry.in_fo:
            continue
        result = consistent_rewriting(entry.query, entry.fks)
        print(f"\n{entry.label}  ({entry.source})")
        print(f"  query:    {entry.query!r}")
        print(f"  fks:      {entry.fks!r}")
        print(f"  pipeline: {' → '.join(result.lemma_trace) or '(direct)'}")
        print(f"  size:     {size(result.formula)} nodes")
        print(f"  formula:  {render(result.formula)}")


if __name__ == "__main__":
    main()
