#!/usr/bin/env python3
"""Serving a mixed certainty workload through the `repro.api` session.

Simulates the production loop the engine targets: a stream of
``(problem, instances)`` requests mixing all three Theorem 12 classes —
FO-rewritable problems, the Proposition 16/17 polynomial problems, and
coNP-hard stragglers — with popular problems recurring.  One
:class:`~repro.api.Session` serves the whole stream; every request comes
back as a :class:`~repro.api.BatchDecision` whose provenance (backend,
trichotomy class, plan-cache hit) the report prints, alongside how much
work the plan cache saved.

Run:  PYTHONPATH=src python examples/engine_serving.py
"""

from repro.api import connect
from repro.workloads import StreamParams, mixed_problem_stream


def main() -> None:
    params = StreamParams(
        n_problems=16, instances_per_problem=5, seed=11, repeat_rate=0.35
    )

    print("=== serving a mixed problem stream ===")
    header = (
        f"{'request':<10} {'verdict':<8} {'backend':<16} {'cache':<6} "
        f"{'answers':<10}"
    )
    print(header)
    print("-" * len(header))
    total = 0
    with connect() as session:
        for item in mixed_problem_stream(params):
            result = session.decide_batch(item.problem, item.instances)
            total += result.size
            answers = f"{result.certain_count}/{result.size} certain"
            cache = "hit" if result.cache_hit else "miss"
            print(
                f"{item.label:<10} {result.verdict:<8} "
                f"{result.backend:<16} {cache:<6} {answers:<10}"
            )

        print()
        print("=== session statistics ===")
        stats = session.stats()
        hit_rate = stats.cache.hit_rate
        print(f"instances served:  {total}")
        print(f"distinct plans:    {stats.cache.size}")
        print(
            f"plan cache:        {stats.cache.hits} hits / "
            f"{stats.cache.misses} misses"
            + (f" ({hit_rate:.0%} hit rate)" if hit_rate is not None else "")
        )
        print()
        print("per-plan metrics (least recently used first):")
        for report in stats.plans:
            snap = report.metrics
            mean = snap.mean_seconds
            mean_text = f"{mean * 1e6:8.1f} µs/eval" if mean else "     (unused)"
            print(
                f"  {report.fingerprint}  {report.backend:<16} "
                f"{snap.evaluations:4d} evals {mean_text}"
            )
    # leaving the with-block closed every prepared solver (warm SQL
    # connections included) — the session lifecycle in one screenful.


if __name__ == "__main__":
    main()
