#!/usr/bin/env python3
"""Serving a mixed certainty workload through the plan-caching engine.

Simulates the production loop the engine targets: a stream of
``(q, FK, instances)`` requests mixing all three Theorem 12 classes —
FO-rewritable problems, the Proposition 16/17 polynomial problems, and
coNP-hard stragglers — with popular problems recurring.  One
:class:`~repro.engine.CertaintyEngine` serves the whole stream; the report
shows which backend each request was routed to and how much work the plan
cache saved.

Run:  PYTHONPATH=src python examples/engine_serving.py
"""

from repro.engine import CertaintyEngine
from repro.workloads import StreamParams, mixed_problem_stream


def main() -> None:
    engine = CertaintyEngine()
    params = StreamParams(
        n_problems=16, instances_per_problem=5, seed=11, repeat_rate=0.35
    )

    print("=== serving a mixed problem stream ===")
    header = f"{'request':<10} {'verdict':<8} {'backend':<16} {'answers':<10}"
    print(header)
    print("-" * len(header))
    total = 0
    for item in mixed_problem_stream(params):
        result = engine.decide_batch(item.query, item.fks, item.instances)
        total += result.size
        answers = f"{result.certain_count}/{result.size} certain"
        print(
            f"{item.label:<10} {item.verdict.name:<8} "
            f"{result.backend:<16} {answers:<10}"
        )

    print()
    print("=== engine statistics ===")
    stats = engine.stats()
    hit_rate = stats.cache.hit_rate
    print(f"instances served:  {total}")
    print(f"distinct plans:    {stats.cache.size}")
    print(
        f"plan cache:        {stats.cache.hits} hits / "
        f"{stats.cache.misses} misses"
        + (f" ({hit_rate:.0%} hit rate)" if hit_rate is not None else "")
    )
    print()
    print("per-plan metrics (least recently used first):")
    for report in stats.plans:
        snap = report.metrics
        mean = snap.mean_seconds
        mean_text = f"{mean * 1e6:8.1f} µs/eval" if mean else "     (unused)"
        print(
            f"  {report.fingerprint}  {report.backend:<16} "
            f"{snap.evaluations:4d} evals {mean_text}"
        )


if __name__ == "__main__":
    main()
