#!/usr/bin/env python3
"""Auditing a dirty bibliography with CQA instead of cleaning it first.

The paper's pitch (Section 1): while data cleaning is still deciding which
repair is the right one, consistent query answering already returns the
answers that hold in *every* repair.  This example generates a synthetic
bibliography with duplicate author rows and dangling authorship facts and
audits a set of yes/no questions three ways:

* naive evaluation on the dirty data (what a plain SQL engine would say),
* the consistent answer via the constructed FO rewriting,
* the fraction of subset repairs supporting the answer (a data-quality
  signal in the spirit of the approximation work cited as [19]).

Run:  python examples/referential_integrity_audit.py
"""

from repro import consistent_rewriting, parse_query
from repro.core.foreign_keys import fk_set
from repro.db import satisfies
from repro.fo import evaluate
from repro.repairs import frequency_of_satisfaction
from repro.workloads import BibliographyParams, synthetic_bibliography


def audit_questions():
    """(label, query, fks) triples over the bibliographic schema."""
    questions = []
    for year in ("2015", "2016"):
        for first in ("Jeff", "Ada"):
            q = parse_query(
                f"DOCS(x | t, '{year}')",
                "R(x, y |)",
                f"AUTHORS(y | '{first}', z)",
            )
            questions.append(
                (
                    f"some {year} paper by a '{first}'",
                    q,
                    fk_set(q, "R[1]->DOCS", "R[2]->AUTHORS"),
                )
            )
    return questions


def main() -> None:
    params = BibliographyParams(
        n_docs=12, n_authors=10, n_authorships=25,
        duplicate_author_rate=0.4, dangling_rate=0.3,
    )
    db = synthetic_bibliography(params, seed=7)
    n_violating_blocks = len(db.key_violations())
    print(
        f"bibliography: {db.size} facts, "
        f"{n_violating_blocks} key-violating blocks"
    )
    print()
    header = f"{'question':34s} {'dirty':>6s} {'certain':>8s} {'support':>9s}"
    print(header)
    print("-" * len(header))
    for label, query, fks in audit_questions():
        dirty = satisfies(query, db)
        rewriting = consistent_rewriting(query, fks)
        certain_answer = evaluate(rewriting.formula, db)
        satisfying, total = frequency_of_satisfaction(query, db, limit=4096)
        support = satisfying / total if total else 0.0
        print(
            f"{label:34s} {str(dirty):>6s} {str(certain_answer):>8s} "
            f"{support:8.0%}"
        )
    print()
    print(
        "Reading: 'dirty' can overreport (it may rely on facts every repair"
        " deletes);\n'certain' only claims what survives all repairs;"
        " 'support' is the fraction of\nsubset repairs agreeing with the"
        " dirty answer — a cleaning-priority signal."
    )


if __name__ == "__main__":
    main()
