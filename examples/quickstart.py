#!/usr/bin/env python3
"""Quickstart: consistent query answering on the paper's Fig. 1 database.

Walks the introduction of the paper end to end:

1. build the inconsistent bibliographic database of Fig. 1,
2. inspect its primary-key and foreign-key violations,
3. classify ``CERTAINTY(q0, FK0)`` with Theorem 12,
4. construct and print the consistent first-order rewriting,
5. answer the query consistently, and cross-check with the ⊕-repair oracle,
6. do it all again in three lines through the `repro.api` session facade.

Run:  python examples/quickstart.py
"""

from repro import certain, classify, consistent_rewriting, render
from repro.api import Problem, connect
from repro.db import violation_report
from repro.fo import evaluate
from repro.repairs import certain_answer
from repro.workloads import fig1_instance, intro_query_q0, intro_query_q1


def main() -> None:
    db = fig1_instance()
    print("=== Fig. 1 database ===")
    print(db.pretty())
    print()

    query, fks = intro_query_q0()
    print("=== Constraint violations ===")
    print(violation_report(db, fks))
    print()

    print("=== q0: does some 2016 paper have an author named Jeff? ===")
    classification = classify(query, fks)
    print(classification.explain())
    print()

    rewriting = consistent_rewriting(query, fks)
    print("consistent FO rewriting:")
    print(" ", render(rewriting.formula))
    print("reduction trace:", " → ".join(rewriting.lemma_trace) or "(none)")
    print()

    answer = evaluate(rewriting.formula, db)
    print(f"consistent answer on Fig. 1: {answer}")
    oracle = certain_answer(query, fks, db)
    print(f"⊕-repair oracle agrees:     {oracle.certain}")
    if oracle.falsifying_repair is not None:
        print("a falsifying ⊕-repair:")
        print(oracle.falsifying_repair.pretty())
    print()

    print("=== q1: did o1 publish in 2016? (note the guarding third atom) ===")
    query1, fks1 = intro_query_q1()
    print(classify(query1, fks1).explain())
    print(f"consistent answer on Fig. 1: {certain(query1, fks1, db)}")
    print()

    print("=== the same, through the repro.api session facade ===")
    with connect() as session:
        decision = session.decide(Problem(query, fks, name="q0"), db)
    print(
        f"certain={decision.certain} via backend={decision.backend} "
        f"(verdict={decision.verdict}, {decision.wall_seconds * 1e3:.2f} ms)"
    )


if __name__ == "__main__":
    main()
