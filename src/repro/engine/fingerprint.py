"""Canonical fingerprints of ``(q, FK)`` problems.

The plan cache must recognise that two problems are *the same problem* even
when they were built independently — parsed from different CLI invocations,
drawn twice by a workload generator, or written with different variable
names.  The fingerprint therefore canonicalises the query up to

* atom order (atoms are sorted by relation name — well-defined because the
  queries are self-join-free), and
* variable renaming (variables are renamed ``v0, v1, …`` in order of first
  occurrence over the sorted atoms),

and appends the sorted foreign-key set.  Constants and parameters are kept
verbatim: they are semantic.  Two alpha-equivalent problems share a
fingerprint; problems differing in a constant, a key size, or a foreign key
do not.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..core.atoms import Atom
from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Parameter, Term, Variable


@dataclass(frozen=True, slots=True)
class Fingerprint:
    """A canonical, hashable identity of one ``CERTAINTY(q, FK)`` problem."""

    text: str
    digest: str

    def __str__(self) -> str:
        return self.digest

    def __repr__(self) -> str:
        return f"Fingerprint({self.digest})"


def canonical_atoms(query: ConjunctiveQuery) -> tuple[Atom, ...]:
    """The query's atoms, sorted by relation and alpha-renamed.

    Variables become ``v0, v1, …`` in order of first occurrence across the
    sorted atom sequence; constants, parameters and key sizes are preserved.
    """
    renaming: dict[Variable, Variable] = {}
    atoms: list[Atom] = []
    for atom in sorted(query.atoms, key=lambda a: a.relation):
        terms: list[Term] = []
        for term in atom.terms:
            if isinstance(term, Variable):
                if term not in renaming:
                    renaming[term] = Variable(f"v{len(renaming)}")
                terms.append(renaming[term])
            else:
                terms.append(term)
        atoms.append(Atom(atom.relation, tuple(terms), atom.key_size))
    return tuple(atoms)


def _term_text(term: Term) -> str:
    if isinstance(term, Constant):
        if isinstance(term.value, str):
            return "'" + term.value + "'"
        return repr(term.value)
    if isinstance(term, Parameter):
        return f"${term.name}"
    return term.name  # canonical variable


def _atom_text(atom: Atom) -> str:
    key = ",".join(_term_text(t) for t in atom.key_terms)
    rest = ",".join(_term_text(t) for t in atom.nonkey_terms)
    return f"{atom.relation}({key}|{rest})"


def problem_fingerprint(
    query: ConjunctiveQuery, fks: ForeignKeySet
) -> Fingerprint:
    """The canonical fingerprint of ``CERTAINTY(q, FK)``."""
    atoms = " ∧ ".join(_atom_text(a) for a in canonical_atoms(query))
    keys = ", ".join(sorted(repr(fk) for fk in fks))
    text = f"{atoms} ## {keys}"
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
    return Fingerprint(text=text, digest=digest)
