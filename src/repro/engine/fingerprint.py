"""Canonical fingerprints of ``(q, FK)`` problems.

The plan cache must recognise that two problems are *the same problem* even
when they were built independently — parsed from different CLI invocations,
drawn twice by a workload generator, written with different variable names,
or spelled with different relation names.  A :class:`Fingerprint` therefore
carries two identities:

* ``digest``/``text`` — the **class fingerprint**: the problem canonicalized
  up to relation renaming *and* variable renaming
  (:mod:`repro.engine.canonical`).  This is the plan-cache key and the
  shard-ring key: all renaming-isomorphic spellings agree on it and share
  one prepared plan.
* ``raw``/``raw_text`` — the **spelling fingerprint**: the historical
  digest (atoms sorted by relation name, variables alpha-renamed, relation
  names verbatim), kept byte-identical for cache/wire compatibility and
  reported in decision provenance next to the class digest.

Constants, parameters, key sizes and foreign-key structure are semantic in
both: problems differing in any of them never share either digest.

:func:`canonical_atoms` orders atoms by a renaming-invariant key — arity,
key size, term pattern (:func:`repro.engine.canonical.atom_shape_key`) —
with the relation name only as the final tie-break, so the *sequence of
shapes* two isomorphic spellings present is identical; the raw text still
spells relation names verbatim, which is exactly what makes it a spelling
fingerprint rather than a class one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.atoms import Atom
from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Parameter, Term, Variable


@dataclass(frozen=True, slots=True)
class Fingerprint:
    """Class + spelling identity of one ``CERTAINTY(q, FK)`` problem."""

    text: str        # canonical class text (relation-renaming invariant)
    digest: str      # class digest — the cache and shard-ring key
    raw_text: str    # spelling-level text (relation names verbatim)
    raw_digest: str  # spelling digest — the historical wire identity

    @property
    def raw(self) -> str:
        """The pre-canonicalization digest (wire/cache compatibility)."""
        return self.raw_digest

    def __str__(self) -> str:
        return self.digest

    def __repr__(self) -> str:
        return f"Fingerprint({self.digest}, raw={self.raw_digest})"


def _alpha_renamed(ordered: list[Atom]) -> tuple[Atom, ...]:
    """*ordered* with variables renamed ``v0, v1, …`` in order of first
    occurrence across the sequence (constants/parameters preserved)."""
    renaming: dict[Variable, Variable] = {}
    atoms: list[Atom] = []
    for atom in ordered:
        terms: list[Term] = []
        for term in atom.terms:
            if isinstance(term, Variable):
                if term not in renaming:
                    renaming[term] = Variable(f"v{len(renaming)}")
                terms.append(renaming[term])
            else:
                terms.append(term)
        atoms.append(Atom(atom.relation, tuple(terms), atom.key_size))
    return tuple(atoms)


def canonical_atoms(query: ConjunctiveQuery) -> tuple[Atom, ...]:
    """The query's atoms in renaming-invariant order, alpha-renamed.

    Atoms are sorted by ``(arity, key size, term pattern)`` — a key a
    relation renaming cannot move — with the relation name as deterministic
    tie-break; variables become ``v0, v1, …`` in order of first occurrence
    across the sorted sequence; constants, parameters and key sizes are
    preserved.
    """
    from .canonical import atom_shape_key

    return _alpha_renamed(
        sorted(query.atoms, key=lambda a: (atom_shape_key(a), a.relation))
    )


def _term_text(term: Term) -> str:
    if isinstance(term, Constant):
        if isinstance(term.value, str):
            return "'" + term.value + "'"
        return repr(term.value)
    if isinstance(term, Parameter):
        return f"${term.name}"
    return term.name  # canonical variable


def _atom_text(atom: Atom) -> str:
    key = ",".join(_term_text(t) for t in atom.key_terms)
    rest = ",".join(_term_text(t) for t in atom.nonkey_terms)
    return f"{atom.relation}({key}|{rest})"


def raw_encoding(query: ConjunctiveQuery, fks: ForeignKeySet) -> str:
    """The spelling-level canonical text (historical fingerprint format).

    Atoms sorted by relation name and alpha-renamed — byte-identical to the
    pre-canonicalization fingerprint text, so raw digests stay stable
    across the class-fingerprint redesign.
    """
    atoms = _alpha_renamed(sorted(query.atoms, key=lambda a: a.relation))
    parts = [_atom_text(atom) for atom in atoms]
    keys = ", ".join(sorted(repr(fk) for fk in fks))
    return " ∧ ".join(parts) + " ## " + keys


def problem_fingerprint(
    query: ConjunctiveQuery, fks: ForeignKeySet
) -> Fingerprint:
    """The canonical fingerprint of ``CERTAINTY(q, FK)`` (class + raw).

    Delegates to :func:`repro.engine.canonical.canonicalize` so there is
    exactly one producer of fingerprints — cache keys computed here and
    via ``Problem.canonical`` can never drift apart — and shares its memo.
    """
    from ..api.problem import Problem
    from .canonical import canonicalize

    return canonicalize(Problem(query, fks)).fingerprint
