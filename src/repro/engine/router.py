"""Backend selection: the trichotomy, read as a query optimizer.

Theorem 12 is not only a complexity classification — operationally it tells
the engine which decision procedure is cheapest for a given ``(q, FK)``:

* **FO** — evaluate the consistent first-order rewriting, either with the
  in-memory relational evaluator or as precompiled SQL over a warm
  connection (:class:`~repro.solvers.rewriting_solver.SqlRewritingSolver`,
  SQLite by default; a DuckDB dialect registers when the module imports);
* **not in FO, but a known polynomial island** — the Proposition 16
  (graph reachability) and Proposition 17 (dual-Horn SAT) problems are
  recognised structurally **up to relation-renaming isomorphism** on the
  canonical form and routed to their dedicated linear/polynomial solvers,
  parameterized by which canonical relations play ``N`` and ``O``;
* **everything else** — exhaustive repair enumeration: classical subset
  repairs when ``FK = ∅``, the canonical ⊕-repair oracle otherwise.

Since the canonical-class redesign every built-in is a **recognizer** over
the :class:`~repro.engine.canonical.CanonicalForm`
(:meth:`~repro.engine.registry.BackendSpec.recognize`): it inspects the
canonicalized problem and returns a
:class:`~repro.engine.registry.Recognition` whose factory prepares the
solver against the canonical spelling — the same prepared plan then serves
every isomorphic spelling through instance transport.  Routing runs exactly
once per problem class; the recognition is cached with the plan.
"""

from __future__ import annotations

from enum import Enum

from ..core.classify import Classification
from ..core.foreign_keys import ForeignKey, ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..solvers.base import CertaintySolver
from ..solvers.brute_force import OplusOracleSolver, SubsetRepairSolver
from ..solvers.dual_horn import DualHornSolver
from ..solvers.reachability import ReachabilitySolver
from ..solvers.rewriting_solver import (
    RewritingSolver,
    SqlRewritingSolver,
    duckdb_dialect,
)
from ..solvers.sat import SatRepairSolver
from .canonical import CanonicalForm
from .registry import BackendRegistry, BackendSpec, Recognition, RouteOptions


class Backend(Enum):
    """The built-in decision procedures (canonical registry names).

    Kept for compatibility with pre-registry code; plans now carry the
    backend *name* (a string), so compare against ``Backend.X.value`` or
    use the string literals directly.
    """

    FO_REWRITING = "fo-rewriting"
    FO_SQL = "fo-sql"
    FO_DUCKDB = "fo-duckdb"
    REACHABILITY = "nl-reachability"
    DUAL_HORN = "p-dual-horn"
    SAT_REPAIRS = "sat-repairs"
    SUBSET_REPAIRS = "subset-repairs"
    OPLUS_ORACLE = "oplus-oracle"

    @property
    def polynomial(self) -> bool:
        """Polynomial per-instance cost (the exhaustive backends are not)."""
        return self not in (
            Backend.SAT_REPAIRS,
            Backend.SUBSET_REPAIRS,
            Backend.OPLUS_ORACLE,
        )


def matches_proposition16(
    query: ConjunctiveQuery, fks: ForeignKeySet
) -> tuple[str, str] | None:
    """The ``(N, O)`` relation binding when ``(q, FK)`` is the Proposition
    16 problem ``{N(x,x), O(x)}, N[2]→O`` **up to relation renaming** (and
    variable renaming), else ``None``.

    The binding names which of the query's relations plays ``N`` and which
    plays ``O`` — the reduction reads them off the instance through it.
    """
    if len(query) != 2 or len(fks.foreign_keys) != 1:
        return None
    atoms = {a.arity: a for a in query.atoms}
    n, o = atoms.get(2), atoms.get(1)
    if n is None or o is None:
        return None
    if (n.arity, n.key_size) != (2, 1) or (o.arity, o.key_size) != (1, 1):
        return None
    if fks.foreign_keys != frozenset(
        {ForeignKey(n.relation, 2, o.relation)}
    ):
        return None
    x = n.term_at(1)
    if not (
        isinstance(x, Variable) and n.term_at(2) == x and o.term_at(1) == x
    ):
        return None
    return n.relation, o.relation


def match_dual_horn_island(
    query: ConjunctiveQuery, fks: ForeignKeySet
) -> tuple[object, str, str] | None:
    """The ``(c, N, O)`` binding when ``(q, FK)`` is the Proposition 17
    problem ``{N(x, c, y), O(y)}, N[3]→O`` up to relation renaming, the
    choice of variables, and the choice of the constant ``c``."""
    if len(query) != 2 or len(fks.foreign_keys) != 1:
        return None
    atoms = {a.arity: a for a in query.atoms}
    n, o = atoms.get(3), atoms.get(1)
    if n is None or o is None:
        return None
    if (n.arity, n.key_size) != (3, 1) or (o.arity, o.key_size) != (1, 1):
        return None
    if fks.foreign_keys != frozenset(
        {ForeignKey(n.relation, 3, o.relation)}
    ):
        return None
    x, c, y = n.terms
    if not (isinstance(x, Variable) and isinstance(y, Variable) and x != y):
        return None
    if not isinstance(c, Constant):
        return None
    if o.term_at(1) != y:
        return None
    return c.value, n.relation, o.relation


def matches_proposition17(
    query: ConjunctiveQuery, fks: ForeignKeySet
) -> object | None:
    """The distinguished constant when ``(q, FK)`` is the Proposition 17
    problem (up to relation and variable renaming), else ``None``."""
    match = match_dual_horn_island(query, fks)
    return None if match is None else match[0]


# -- built-in backend recognizers ----------------------------------------------
#
# Priorities: the FO rewritings (100) beat everything — when a consistent
# rewriting exists it is the cheapest procedure; the polynomial islands (50)
# beat the exhaustive fallbacks; subset repairs (10) beat the ⊕-oracle (0),
# which accepts everything and anchors the chain.  Every factory builds
# against `form.problem` (the canonical spelling); evidence strings report
# the binding in the *raw* names of the spelling that triggered routing.


def _recognize_fo(form: CanonicalForm, options: RouteOptions, backend: str,
                  make) -> Recognition | None:
    if options.fo_backend != backend or not form.classification.in_fo:
        return None
    return Recognition(
        factory=lambda: make(form.problem.query, form.problem.fks),
        evidence="attack graph acyclic, no block-interference: consistent "
                 "FO rewriting exists",
    )


def _recognize_reachability(
    form: CanonicalForm, options: RouteOptions
) -> Recognition | None:
    binding = matches_proposition16(form.problem.query, form.problem.fks)
    if binding is None:
        return None
    n, o = binding
    return Recognition(
        factory=lambda: ReachabilitySolver(n_relation=n, o_relation=o),
        evidence=(
            "Proposition 16 shape up to renaming: "
            f"N≔{form.restore_relation(n)}, O≔{form.restore_relation(o)}"
        ),
    )


def _recognize_dual_horn(
    form: CanonicalForm, options: RouteOptions
) -> Recognition | None:
    match = match_dual_horn_island(form.problem.query, form.problem.fks)
    if match is None:
        return None
    constant, n, o = match
    return Recognition(
        factory=lambda: DualHornSolver(
            constant, n_relation=n, o_relation=o
        ),
        evidence=(
            "Proposition 17 shape up to renaming: "
            f"N≔{form.restore_relation(n)}, O≔{form.restore_relation(o)}, "
            f"c={constant!r}"
        ),
    )


def _recognize_sat_repairs(
    form: CanonicalForm, options: RouteOptions
) -> Recognition | None:
    if not options.sat_fallback:
        return None  # opt-in: the enumeration fallbacks stay the default
    if form.classification.in_fo or len(form.problem.fks) != 0:
        return None
    return Recognition(
        factory=lambda: SatRepairSolver(form.problem.query),
        evidence="outside FO with FK = ∅ and sat_fallback enabled: "
                 "falsifying-repair CNF refuted by DPLL",
    )


def _recognize_subset_repairs(
    form: CanonicalForm, options: RouteOptions
) -> Recognition | None:
    if form.classification.in_fo or len(form.problem.fks) != 0:
        return None
    return Recognition(
        factory=lambda: SubsetRepairSolver(form.problem.query),
        evidence="outside FO with FK = ∅: classical subset repairs apply",
    )


def _recognize_oplus(
    form: CanonicalForm, options: RouteOptions
) -> Recognition | None:
    return Recognition(
        factory=lambda: OplusOracleSolver(
            form.problem.query, form.problem.fks
        ),
        evidence="universal fallback: exact canonical ⊕-repair search",
    )


BUILTIN_BACKENDS: tuple[BackendSpec, ...] = (
    BackendSpec(
        name=Backend.FO_SQL.value,
        priority=100,
        recognize=lambda f, o: _recognize_fo(
            f, o, "sql",
            lambda query, fks: SqlRewritingSolver(query, fks),
        ),
        description="consistent FO rewriting compiled to SQL over a warm "
                    "SQLite connection",
    ),
    BackendSpec(
        name=Backend.FO_REWRITING.value,
        priority=100,
        recognize=lambda f, o: _recognize_fo(
            f, o, "memory",
            lambda query, fks: RewritingSolver(query, fks),
        ),
        description="consistent FO rewriting on the in-memory evaluator",
    ),
    BackendSpec(
        name=Backend.REACHABILITY.value,
        priority=50,
        recognize=_recognize_reachability,
        description="Proposition 16 reachability (NL), matched up to "
                    "relation renaming",
    ),
    BackendSpec(
        name=Backend.DUAL_HORN.value,
        priority=50,
        recognize=_recognize_dual_horn,
        description="Proposition 17 dual-Horn SAT (P), matched up to "
                    "relation renaming",
    ),
    BackendSpec(
        name=Backend.SAT_REPAIRS.value,
        priority=20,
        polynomial=False,
        recognize=_recognize_sat_repairs,
        description="falsifying-repair CNF via DPLL (FK = ∅, opt-in "
                    "through RouteOptions.sat_fallback)",
    ),
    BackendSpec(
        name=Backend.SUBSET_REPAIRS.value,
        priority=10,
        polynomial=False,
        recognize=_recognize_subset_repairs,
        description="exhaustive subset-repair enumeration (FK = ∅)",
    ),
    BackendSpec(
        name=Backend.OPLUS_ORACLE.value,
        priority=0,
        polynomial=False,
        recognize=_recognize_oplus,
        description="exact canonical ⊕-repair oracle (fallback)",
    ),
)


def duckdb_backend_spec() -> BackendSpec | None:
    """The optional ``fo-duckdb`` spec, or ``None`` when DuckDB is absent.

    Gated on ``import duckdb`` succeeding so the stdlib-only container
    registers nothing and every routing path stays importable.
    """
    dialect = duckdb_dialect()
    if dialect is None:
        return None
    return BackendSpec(
        name=Backend.FO_DUCKDB.value,
        priority=100,
        recognize=lambda f, o: _recognize_fo(
            f, o, "duckdb",
            lambda query, fks: SqlRewritingSolver(
                query, fks, name=Backend.FO_DUCKDB.value, dialect=dialect
            ),
        ),
        description="consistent FO rewriting compiled to SQL over a warm "
                    "DuckDB connection",
    )


def register_builtin_backends(registry: BackendRegistry) -> BackendRegistry:
    """Register every built-in backend spec into *registry* (idempotent).

    The optional DuckDB backend joins the built-ins whenever its import
    gate passes.
    """
    for spec in BUILTIN_BACKENDS:
        registry.register(spec, override=True)
    duckdb_spec = duckdb_backend_spec()
    if duckdb_spec is not None:
        registry.register(duckdb_spec, override=True)
    return registry


def select_backend(
    classification: Classification,
    fo_backend: str = "memory",
    registry: BackendRegistry | None = None,
) -> tuple[BackendSpec, CertaintySolver]:
    """Pick the cheapest backend for a classified problem and *prepare* its
    solver (legacy entry point).

    The canonical-class pipeline superseded this, but the contract stays:
    the returned solver answers instances spelled like *classification*'s
    query.  Internally the solver is prepared against the canonical
    spelling and wrapped in a
    :class:`~repro.engine.canonical.TransportingSolver` that renames each
    instance on the way in.
    """
    from .registry import default_registry

    options = RouteOptions(fo_backend=fo_backend)
    registry = registry or default_registry()
    # select() hands back the winning spec with legacy supports/factory
    # callables synthesized when the spec is recognize-only, so both the
    # returned spec and the solver honor the pre-redesign contract
    spec = registry.select(classification, options)
    return spec, spec.factory(classification, options)
