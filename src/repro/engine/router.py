"""Backend selection: the trichotomy, read as a query optimizer.

Theorem 12 is not only a complexity classification — operationally it tells
the engine which decision procedure is cheapest for a given ``(q, FK)``:

* **FO** — evaluate the consistent first-order rewriting, either with the
  in-memory relational evaluator or as precompiled SQL over SQLite
  (:class:`~repro.solvers.rewriting_solver.SqlRewritingSolver`);
* **not in FO, but a known polynomial special case** — the fixed problems of
  Proposition 16 (graph reachability) and Proposition 17 (dual-Horn SAT)
  are recognised structurally, up to variable renaming, and routed to their
  dedicated linear/polynomial solvers;
* **everything else** — exhaustive repair enumeration: classical subset
  repairs when ``FK = ∅``, the canonical ⊕-repair oracle otherwise.

The router runs exactly once per plan; its verdict is cached with the plan.
"""

from __future__ import annotations

from enum import Enum

from ..core.classify import Classification
from ..core.foreign_keys import ForeignKey, ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..solvers.base import CertaintySolver
from ..solvers.brute_force import OplusOracleSolver, SubsetRepairSolver
from ..solvers.dual_horn import DualHornSolver
from ..solvers.reachability import ReachabilitySolver
from ..solvers.rewriting_solver import RewritingSolver, SqlRewritingSolver


class Backend(Enum):
    """The decision procedures the router can select among."""

    FO_REWRITING = "fo-rewriting"
    FO_SQL = "fo-sql"
    REACHABILITY = "nl-reachability"
    DUAL_HORN = "p-dual-horn"
    SUBSET_REPAIRS = "subset-repairs"
    OPLUS_ORACLE = "oplus-oracle"

    @property
    def polynomial(self) -> bool:
        """Polynomial per-instance cost (the exhaustive backends are not)."""
        return self not in (Backend.SUBSET_REPAIRS, Backend.OPLUS_ORACLE)


def matches_proposition16(
    query: ConjunctiveQuery, fks: ForeignKeySet
) -> bool:
    """Is ``(q, FK)`` the Proposition 16 problem ``{N(x,x), O(x)}, N[2]→O``?

    Matching is up to variable renaming; the relation names ``N`` and ``O``
    are fixed because the reduction reads them off the instance.
    """
    if fks.foreign_keys != frozenset({ForeignKey("N", 2, "O")}):
        return False
    if len(query) != 2:
        return False
    if not (query.has_relation("N") and query.has_relation("O")):
        return False
    n, o = query.atom("N"), query.atom("O")
    if (n.arity, n.key_size) != (2, 1) or (o.arity, o.key_size) != (1, 1):
        return False
    x = n.term_at(1)
    return (
        isinstance(x, Variable)
        and n.term_at(2) == x
        and o.term_at(1) == x
    )


def matches_proposition17(
    query: ConjunctiveQuery, fks: ForeignKeySet
) -> object | None:
    """The distinguished constant when ``(q, FK)`` is the Proposition 17
    problem ``{N(x, c, y), O(y)}, N[3]→O`` (up to variable renaming and the
    choice of ``c``), else ``None``."""
    if fks.foreign_keys != frozenset({ForeignKey("N", 3, "O")}):
        return None
    if len(query) != 2:
        return None
    if not (query.has_relation("N") and query.has_relation("O")):
        return None
    n, o = query.atom("N"), query.atom("O")
    if (n.arity, n.key_size) != (3, 1) or (o.arity, o.key_size) != (1, 1):
        return None
    x, c, y = n.terms
    if not (isinstance(x, Variable) and isinstance(y, Variable) and x != y):
        return None
    if not isinstance(c, Constant):
        return None
    if o.term_at(1) != y:
        return None
    return c.value


def select_backend(
    classification: Classification,
    fo_backend: str = "memory",
) -> tuple[Backend, CertaintySolver]:
    """Pick the cheapest backend for a classified problem and build its
    solver.

    *fo_backend* chooses how FO problems are evaluated: ``"memory"`` for the
    in-memory evaluator, ``"sql"`` for precompiled SQLite.  Construction
    cost (rewriting pipeline, SQL compilation) is paid here, once per plan.
    """
    query, fks = classification.query, classification.fks
    if classification.in_fo:
        if fo_backend == "sql":
            return Backend.FO_SQL, SqlRewritingSolver(query, fks)
        if fo_backend == "memory":
            return Backend.FO_REWRITING, RewritingSolver(query, fks)
        raise ValueError(
            f"unknown fo_backend {fo_backend!r} (expected 'memory' or 'sql')"
        )
    if matches_proposition16(query, fks):
        return Backend.REACHABILITY, ReachabilitySolver()
    constant = matches_proposition17(query, fks)
    if constant is not None:
        return Backend.DUAL_HORN, DualHornSolver(constant)
    if len(fks) == 0:
        return Backend.SUBSET_REPAIRS, SubsetRepairSolver(query)
    return Backend.OPLUS_ORACLE, OplusOracleSolver(query, fks)
