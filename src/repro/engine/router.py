"""Backend selection: the trichotomy, read as a query optimizer.

Theorem 12 is not only a complexity classification — operationally it tells
the engine which decision procedure is cheapest for a given ``(q, FK)``:

* **FO** — evaluate the consistent first-order rewriting, either with the
  in-memory relational evaluator or as precompiled SQL over a warm SQLite
  connection (:class:`~repro.solvers.rewriting_solver.SqlRewritingSolver`);
* **not in FO, but a known polynomial special case** — the fixed problems of
  Proposition 16 (graph reachability) and Proposition 17 (dual-Horn SAT)
  are recognised structurally, up to variable renaming, and routed to their
  dedicated linear/polynomial solvers;
* **everything else** — exhaustive repair enumeration: classical subset
  repairs when ``FK = ∅``, the canonical ⊕-repair oracle otherwise.

Since the `repro.api` redesign the dispatch itself lives in a
:class:`~repro.engine.registry.BackendRegistry`: this module defines the
built-in :class:`~repro.engine.registry.BackendSpec`s (structural matchers +
prepared-solver factories) and registers them into the default registry.
Routing runs exactly once per plan; the selected spec is cached with it.
"""

from __future__ import annotations

from enum import Enum

from ..core.classify import Classification
from ..core.foreign_keys import ForeignKey, ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..solvers.base import CertaintySolver
from ..solvers.brute_force import OplusOracleSolver, SubsetRepairSolver
from ..solvers.dual_horn import DualHornSolver
from ..solvers.reachability import ReachabilitySolver
from ..solvers.rewriting_solver import RewritingSolver, SqlRewritingSolver
from .registry import BackendRegistry, BackendSpec, RouteOptions


class Backend(Enum):
    """The built-in decision procedures (canonical registry names).

    Kept for compatibility with pre-registry code; plans now carry the
    backend *name* (a string), so compare against ``Backend.X.value`` or
    use the string literals directly.
    """

    FO_REWRITING = "fo-rewriting"
    FO_SQL = "fo-sql"
    REACHABILITY = "nl-reachability"
    DUAL_HORN = "p-dual-horn"
    SUBSET_REPAIRS = "subset-repairs"
    OPLUS_ORACLE = "oplus-oracle"

    @property
    def polynomial(self) -> bool:
        """Polynomial per-instance cost (the exhaustive backends are not)."""
        return self not in (Backend.SUBSET_REPAIRS, Backend.OPLUS_ORACLE)


def matches_proposition16(
    query: ConjunctiveQuery, fks: ForeignKeySet
) -> bool:
    """Is ``(q, FK)`` the Proposition 16 problem ``{N(x,x), O(x)}, N[2]→O``?

    Matching is up to variable renaming; the relation names ``N`` and ``O``
    are fixed because the reduction reads them off the instance.
    """
    if fks.foreign_keys != frozenset({ForeignKey("N", 2, "O")}):
        return False
    if len(query) != 2:
        return False
    if not (query.has_relation("N") and query.has_relation("O")):
        return False
    n, o = query.atom("N"), query.atom("O")
    if (n.arity, n.key_size) != (2, 1) or (o.arity, o.key_size) != (1, 1):
        return False
    x = n.term_at(1)
    return (
        isinstance(x, Variable)
        and n.term_at(2) == x
        and o.term_at(1) == x
    )


def matches_proposition17(
    query: ConjunctiveQuery, fks: ForeignKeySet
) -> object | None:
    """The distinguished constant when ``(q, FK)`` is the Proposition 17
    problem ``{N(x, c, y), O(y)}, N[3]→O`` (up to variable renaming and the
    choice of ``c``), else ``None``."""
    if fks.foreign_keys != frozenset({ForeignKey("N", 3, "O")}):
        return None
    if len(query) != 2:
        return None
    if not (query.has_relation("N") and query.has_relation("O")):
        return None
    n, o = query.atom("N"), query.atom("O")
    if (n.arity, n.key_size) != (3, 1) or (o.arity, o.key_size) != (1, 1):
        return None
    x, c, y = n.terms
    if not (isinstance(x, Variable) and isinstance(y, Variable) and x != y):
        return None
    if not isinstance(c, Constant):
        return None
    if o.term_at(1) != y:
        return None
    return c.value


# -- built-in backend specs ----------------------------------------------------
#
# Priorities: the FO rewritings (100) beat everything — when a consistent
# rewriting exists it is the cheapest procedure; the polynomial islands (50)
# beat the exhaustive fallbacks; subset repairs (10) beat the ⊕-oracle (0),
# which accepts everything and anchors the chain.

BUILTIN_BACKENDS: tuple[BackendSpec, ...] = (
    BackendSpec(
        name=Backend.FO_SQL.value,
        priority=100,
        supports=lambda c, o: c.in_fo and o.fo_backend == "sql",
        factory=lambda c, o: SqlRewritingSolver(c.query, c.fks),
        description="consistent FO rewriting compiled to SQL over a warm "
                    "SQLite connection",
    ),
    BackendSpec(
        name=Backend.FO_REWRITING.value,
        priority=100,
        supports=lambda c, o: c.in_fo and o.fo_backend == "memory",
        factory=lambda c, o: RewritingSolver(c.query, c.fks),
        description="consistent FO rewriting on the in-memory evaluator",
    ),
    BackendSpec(
        name=Backend.REACHABILITY.value,
        priority=50,
        supports=lambda c, o: matches_proposition16(c.query, c.fks),
        factory=lambda c, o: ReachabilitySolver(),
        description="Proposition 16 reachability (NL)",
    ),
    BackendSpec(
        name=Backend.DUAL_HORN.value,
        priority=50,
        supports=lambda c, o: matches_proposition17(c.query, c.fks) is not None,
        # the matcher runs again to extract the distinguished constant; it
        # is an O(1) structural check paid once per plan compile, dwarfed
        # by the classification that precedes routing
        factory=lambda c, o: DualHornSolver(
            matches_proposition17(c.query, c.fks)
        ),
        description="Proposition 17 dual-Horn SAT (P)",
    ),
    BackendSpec(
        name=Backend.SUBSET_REPAIRS.value,
        priority=10,
        polynomial=False,
        supports=lambda c, o: not c.in_fo and len(c.fks) == 0,
        factory=lambda c, o: SubsetRepairSolver(c.query),
        description="exhaustive subset-repair enumeration (FK = ∅)",
    ),
    BackendSpec(
        name=Backend.OPLUS_ORACLE.value,
        priority=0,
        polynomial=False,
        supports=lambda c, o: True,
        factory=lambda c, o: OplusOracleSolver(c.query, c.fks),
        description="exact canonical ⊕-repair oracle (fallback)",
    ),
)


def register_builtin_backends(registry: BackendRegistry) -> BackendRegistry:
    """Register every built-in backend spec into *registry* (idempotent)."""
    for spec in BUILTIN_BACKENDS:
        registry.register(spec, override=True)
    return registry


def select_backend(
    classification: Classification,
    fo_backend: str = "memory",
    registry: BackendRegistry | None = None,
) -> tuple[BackendSpec, CertaintySolver]:
    """Pick the cheapest backend for a classified problem and *prepare* its
    solver.

    *fo_backend* chooses how FO problems are evaluated: ``"memory"`` for the
    in-memory evaluator, ``"sql"`` for precompiled SQLite.  Construction
    cost (rewriting pipeline, SQL compilation, connection warm-up) is paid
    here, once per plan; the returned solver is a prepared solver — reuse it
    across instances and ``close()`` it when the plan is dropped.
    """
    from .registry import default_registry

    options = RouteOptions(fo_backend=fo_backend)
    registry = registry or default_registry()
    spec = registry.select(classification, options)
    return spec, spec.factory(classification, options)
