"""The certainty engine: plan cache + recognizer router + batch executor.

:class:`CertaintyEngine` is the single entry point for high-volume
consistent query answering.  Every ``decide``/``decide_batch`` call

1. canonicalizes the problem up to relation-renaming isomorphism
   (:mod:`repro.engine.canonical`) — the class fingerprint is the cache
   key, so isomorphic spellings share one plan,
2. fetches or compiles the plan (classification + recognizer routing +
   prepared-solver construction against the canonical spelling, paid once
   per distinct *class*),
3. transports the instance(s) into the canonical spelling and executes the
   plan's prepared solver, accumulating per-plan metrics.

The engine is safe to share across threads and is a context manager:
``close()`` (or ``clear()``) releases every cached plan's prepared solver
— warm SQL connections included.  Higher-level code should prefer the
:class:`repro.api.Session` facade, which wraps an engine and returns
structured :class:`~repro.api.Decision`s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from ..api.problem import Problem, as_problem
from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..db.instance import DatabaseInstance
from .cache import CacheStats, PlanCache
from .canonical import CanonicalForm
from .executor import BatchExecutor, BatchResult, ExecutorConfig
from .metrics import (
    LATENCY_BUCKET_BOUNDS,
    MetricsSnapshot,
    merge_snapshots,
)
from .plan import CertaintyPlan, compile_plan
from .registry import BackendRegistry


@dataclass(frozen=True)
class EngineConfig:
    """Engine-wide knobs."""

    plan_cache_size: int = 128
    fo_backend: str = "memory"  # or "sql" / "duckdb"
    #: Opt-in: route the coNP-hard FK = ∅ residue to the ``sat-repairs``
    #: CNF backend instead of subset-repair enumeration.
    sat_fallback: bool = False
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    registry: BackendRegistry | None = None  # None: the default registry
    #: Decides slower than this log a ``decide.slow`` WARNING (0 disables).
    slow_decide_seconds: float = 1.0

    def __post_init__(self) -> None:
        from .registry import RouteOptions

        # RouteOptions owns fo_backend validation (allowed values + the
        # duckdb import gate); fail at config time with the same errors
        RouteOptions(fo_backend=self.fo_backend,
                     sat_fallback=self.sat_fallback)


@dataclass(frozen=True)
class PlanReport:
    """One cached plan's identity and accumulated metrics."""

    fingerprint: str  # the class digest
    backend: str
    verdict: str
    metrics: MetricsSnapshot
    spellings: int = 1  # distinct isomorphic spellings served

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "backend": self.backend,
            "verdict": self.verdict,
            "spellings": self.spellings,
            "metrics": self.metrics.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlanReport":
        return cls(
            fingerprint=str(data.get("fingerprint", "")),
            backend=str(data.get("backend", "")),
            verdict=str(data.get("verdict", "")),
            metrics=MetricsSnapshot.from_dict(data.get("metrics") or {}),
            spellings=int(data.get("spellings", 1)),
        )


@dataclass(frozen=True)
class BackendReport:
    """One backend's aggregate over every cached plan routed to it."""

    backend: str
    plans: int
    metrics: MetricsSnapshot

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "plans": self.plans,
            "metrics": self.metrics.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BackendReport":
        return cls(
            backend=str(data.get("backend", "")),
            plans=int(data.get("plans", 0)),
            metrics=MetricsSnapshot.from_dict(data.get("metrics") or {}),
        )


def _aggregate_backends(
    plans: tuple[PlanReport, ...],
) -> tuple[BackendReport, ...]:
    """Merge per-plan metrics into one report per backend (sorted by name)."""
    grouped: dict[str, list[PlanReport]] = {}
    for plan in plans:
        grouped.setdefault(plan.backend, []).append(plan)
    return tuple(
        BackendReport(
            backend=backend,
            plans=len(grouped[backend]),
            metrics=merge_snapshots(p.metrics for p in grouped[backend]),
        )
        for backend in sorted(grouped)
    )


@dataclass(frozen=True)
class TierReport:
    """One SLO complexity tier's aggregate over the plans binned into it.

    Tiers are the recognizer-verdict buckets of :mod:`repro.obs.slo`
    (fo / p16 / p17 / sat / oracle): the unit a latency objective can
    meaningfully attach to, since the trichotomy makes one engine-wide
    p99 a blend of microsecond FO probes and exponential oracle runs.
    """

    tier: str
    plans: int
    metrics: MetricsSnapshot

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "plans": self.plans,
            "metrics": self.metrics.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TierReport":
        return cls(
            tier=str(data.get("tier", "")),
            plans=int(data.get("plans", 0)),
            metrics=MetricsSnapshot.from_dict(data.get("metrics") or {}),
        )


def _aggregate_tiers(
    plans: tuple[PlanReport, ...],
) -> tuple[TierReport, ...]:
    """Merge per-plan metrics into one report per SLO tier.

    Derived from the plan table (not stored independently), so merged
    stats — shards, fleet workers — re-derive consistent tiers for free.
    """
    from ..obs.slo import tier_for, tier_sort_key

    grouped: dict[str, list[PlanReport]] = {}
    for plan in plans:
        grouped.setdefault(tier_for(plan.verdict, plan.backend), []).append(
            plan
        )
    return tuple(
        TierReport(
            tier=tier,
            plans=len(grouped[tier]),
            metrics=merge_snapshots(p.metrics for p in grouped[tier]),
        )
        for tier in sorted(grouped, key=tier_sort_key)
    )


def _prom_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_prom_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def prom_exposition(
    entries: "Iterable[tuple[Mapping[str, str] | None, EngineStats]]",
) -> str:
    """One valid Prometheus text page over any number of engines.

    *entries* pairs a label set (e.g. ``{"shard": "0"}``) with that
    engine's stats.  ``# HELP``/``# TYPE`` are emitted exactly once per
    metric family with every engine's samples grouped under them — the
    format strict scrapers require, which naive per-engine concatenation
    violates.
    """
    snapshot = [(dict(labels or {}), stats) for labels, stats in entries]
    lines: list[str] = []

    def header(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP repro_{name} {help_text}")
        lines.append(f"# TYPE repro_{name} {kind}")

    def sample(
        name: str, base: Mapping[str, str], value,
        extra: Mapping[str, str] | None = None,
    ) -> None:
        lines.append(
            f"repro_{name}{_prom_labels({**base, **(extra or {})})} {value}"
        )

    for name, kind, help_text, read in (
        ("plan_cache_hits_total", "counter", "Plan cache hits.",
         lambda s: s.cache.hits),
        ("plan_cache_misses_total", "counter", "Plan cache misses.",
         lambda s: s.cache.misses),
        ("plan_cache_evictions_total", "counter", "Plan cache evictions.",
         lambda s: s.cache.evictions),
        ("plan_cache_size", "gauge", "Cached plans right now.",
         lambda s: s.cache.size),
        ("plan_cache_capacity", "gauge", "Plan cache capacity.",
         lambda s: s.cache.capacity),
    ):
        header(name, kind, help_text)
        for base, stats in snapshot:
            sample(name, base, read(stats))

    header(
        "class_spellings", "gauge",
        "Distinct isomorphic spellings served per cached plan class.",
    )
    for base, stats in snapshot:
        for plan in stats.plans:
            sample(
                "class_spellings", base, plan.spellings,
                {"fingerprint": plan.fingerprint, "backend": plan.backend},
            )

    header("backend_plans", "gauge", "Cached plans per backend.")
    for base, stats in snapshot:
        for aggregate in stats.backends:
            sample(
                "backend_plans", base, aggregate.plans,
                {"backend": aggregate.backend},
            )

    header(
        "backend_evaluations_total", "counter",
        "Instances decided per backend.",
    )
    for base, stats in snapshot:
        for aggregate in stats.backends:
            sample(
                "backend_evaluations_total", base,
                aggregate.metrics.evaluations,
                {"backend": aggregate.backend},
            )

    header(
        "backend_latency_seconds", "histogram",
        "Decision latency per backend.",
    )
    for base, stats in snapshot:
        for aggregate in stats.backends:
            tag = {"backend": aggregate.backend}
            cumulative = 0
            for bound, count in zip(
                LATENCY_BUCKET_BOUNDS, aggregate.metrics.histogram
            ):
                cumulative += count
                sample(
                    "backend_latency_seconds_bucket", base, cumulative,
                    {**tag, "le": repr(bound)},
                )
            cumulative += aggregate.metrics.histogram[-1]
            sample(
                "backend_latency_seconds_bucket", base, cumulative,
                {**tag, "le": "+Inf"},
            )
            sample(
                "backend_latency_seconds_sum", base,
                aggregate.metrics.total_seconds, tag,
            )
            sample(
                "backend_latency_seconds_count", base,
                aggregate.metrics.evaluations, tag,
            )

    header("tier_plans", "gauge", "Cached plans per SLO complexity tier.")
    for base, stats in snapshot:
        for tier in stats.tiers:
            sample("tier_plans", base, tier.plans, {"tier": tier.tier})

    header(
        "tier_evaluations_total", "counter",
        "Instances decided per SLO complexity tier.",
    )
    for base, stats in snapshot:
        for tier in stats.tiers:
            sample(
                "tier_evaluations_total", base,
                tier.metrics.evaluations, {"tier": tier.tier},
            )

    header(
        "tier_errors_total", "counter",
        "Failed decides per SLO complexity tier.",
    )
    for base, stats in snapshot:
        for tier in stats.tiers:
            sample(
                "tier_errors_total", base,
                tier.metrics.errors, {"tier": tier.tier},
            )

    header(
        "tier_timeouts_total", "counter",
        "Timed-out decides per SLO complexity tier.",
    )
    for base, stats in snapshot:
        for tier in stats.tiers:
            sample(
                "tier_timeouts_total", base,
                tier.metrics.timeouts, {"tier": tier.tier},
            )

    for quantile, name in ((0.50, "tier_p50_seconds"),
                           (0.99, "tier_p99_seconds")):
        header(
            name, "gauge",
            f"Estimated p{int(quantile * 100)} decision latency per SLO "
            "complexity tier (histogram interpolation).",
        )
        for base, stats in snapshot:
            for tier in stats.tiers:
                estimate = tier.metrics.quantile(quantile)
                if estimate is not None:
                    sample(name, base, estimate, {"tier": tier.tier})

    header(
        "tier_latency_seconds", "histogram",
        "Decision latency per SLO complexity tier.",
    )
    for base, stats in snapshot:
        for tier in stats.tiers:
            tag = {"tier": tier.tier}
            cumulative = 0
            for bound, count in zip(
                LATENCY_BUCKET_BOUNDS, tier.metrics.histogram
            ):
                cumulative += count
                sample(
                    "tier_latency_seconds_bucket", base, cumulative,
                    {**tag, "le": repr(bound)},
                )
            cumulative += tier.metrics.histogram[-1]
            sample(
                "tier_latency_seconds_bucket", base, cumulative,
                {**tag, "le": "+Inf"},
            )
            sample(
                "tier_latency_seconds_sum", base,
                tier.metrics.total_seconds, tag,
            )
            sample(
                "tier_latency_seconds_count", base,
                tier.metrics.evaluations, tag,
            )
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class EngineStats:
    """A point-in-time view of the engine's cache, plans, backends and
    SLO tiers."""

    cache: CacheStats
    plans: tuple[PlanReport, ...]
    backends: tuple[BackendReport, ...] = ()
    tiers: tuple[TierReport, ...] = ()

    def to_dict(self) -> dict:
        """A plain-JSON view (`stats` wire verb, ``repro engine --stats``)."""
        return {
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "size": self.cache.size,
                "capacity": self.cache.capacity,
                "hit_rate": self.cache.hit_rate,
            },
            "plans": [plan.to_dict() for plan in self.plans],
            "backends": [backend.to_dict() for backend in self.backends],
            "tiers": [tier.to_dict() for tier in self.tiers],
        }

    def to_prom(self, labels: Mapping[str, str] | None = None) -> str:
        """Prometheus text exposition of the same counters.

        Served by the ``metrics`` wire verb and ``repro engine --stats
        --format prom``; *labels* (e.g. ``{"shard": "0"}``) are attached
        to every sample.  A multi-engine deployment must emit one page for
        the fleet via :func:`prom_exposition` (``# HELP``/``# TYPE`` may
        appear only once per metric family).
        """
        return prom_exposition([(labels, self)])

    @classmethod
    def from_dict(cls, data: dict) -> "EngineStats":
        """Rebuild stats from :meth:`to_dict` output.

        Accepts the ``stats`` wire verb's per-shard entries verbatim
        (unknown keys such as the shard index are ignored; derived fields
        like ``hit_rate`` are recomputed).  This is what lets a fleet
        front merge and re-export worker stats it only ever saw as JSON.
        """
        cache = data.get("cache") or {}
        plans = tuple(
            PlanReport.from_dict(entry)
            for entry in data.get("plans") or ()
        )
        return cls(
            cache=CacheStats(
                hits=int(cache.get("hits", 0)),
                misses=int(cache.get("misses", 0)),
                evictions=int(cache.get("evictions", 0)),
                size=int(cache.get("size", 0)),
                capacity=int(cache.get("capacity", 0)),
            ),
            plans=plans,
            backends=tuple(
                BackendReport.from_dict(entry)
                for entry in data.get("backends") or ()
            ),
            # tiers are *derived* from the plan table, not trusted from
            # the document — a front and its workers then always agree
            tiers=_aggregate_tiers(plans),
        )


def merge_engine_stats(entries: "Iterable[EngineStats]") -> EngineStats:
    """One fleet-wide :class:`EngineStats` over per-engine snapshots.

    Cache counters and capacities sum (aggregate capacity is the point of
    sharding); plans of the same canonical class — possible when a resize
    remapped a class between workers — merge their metrics, keeping the
    larger spelling count (spelling sets may overlap across workers, so the
    sum would overcount); backends are re-aggregated from the merged plans.
    """
    stats = list(entries)
    merged_cache = CacheStats(
        hits=sum(s.cache.hits for s in stats),
        misses=sum(s.cache.misses for s in stats),
        evictions=sum(s.cache.evictions for s in stats),
        size=sum(s.cache.size for s in stats),
        capacity=sum(s.cache.capacity for s in stats),
    )
    grouped: dict[str, list[PlanReport]] = {}
    order: list[str] = []
    for snapshot in stats:
        for plan in snapshot.plans:
            if plan.fingerprint not in grouped:
                order.append(plan.fingerprint)
            grouped.setdefault(plan.fingerprint, []).append(plan)
    plans = tuple(
        PlanReport(
            fingerprint=digest,
            backend=grouped[digest][0].backend,
            verdict=grouped[digest][0].verdict,
            metrics=merge_snapshots(p.metrics for p in grouped[digest]),
            spellings=max(p.spellings for p in grouped[digest]),
        )
        for digest in order
    )
    return EngineStats(
        cache=merged_cache,
        plans=plans,
        backends=_aggregate_backends(plans),
        tiers=_aggregate_tiers(plans),
    )


class CertaintyEngine:
    """Plan-caching, auto-routing decision engine for ``CERTAINTY(q, FK)``.

    Every problem-taking method accepts either a :class:`repro.api.Problem`
    or the historical ``(query, fks)`` pair.
    """

    def __init__(self, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        self._cache = PlanCache(self.config.plan_cache_size)
        self._executor = BatchExecutor(self.config.executor)

    # -- planning -----------------------------------------------------------

    def route(
        self,
        query: ConjunctiveQuery | Problem,
        fks: ForeignKeySet | None = None,
    ) -> tuple[CertaintyPlan, bool, CanonicalForm]:
        """The class plan, the cache-hit flag, and the request's form.

        The form carries the relation renaming the caller must transport
        instances through (``decide``/``run_batch`` take it directly).
        """
        problem = as_problem(query, fks)
        form = problem.canonical
        plan, hit = self._cache.entry(
            form.fingerprint,
            lambda: compile_plan(
                form=form,
                fo_backend=self.config.fo_backend,
                registry=self.config.registry,
                sat_fallback=self.config.sat_fallback,
            ),
        )
        plan.note_spelling(form.fingerprint.raw)
        return plan, hit, form

    def plan_entry(
        self,
        query: ConjunctiveQuery | Problem,
        fks: ForeignKeySet | None = None,
    ) -> tuple[CertaintyPlan, bool]:
        """The compiled plan plus whether the lookup hit the cache.

        When the request's spelling differs from the compiling one, the
        returned plan is a lightweight view of the shared plan (same
        prepared solver, same metrics) whose default transport is the
        *request's* renaming — so ``plan.decide(db)`` keeps answering
        instances spelled like the caller's problem.
        """
        plan, hit, form = self.route(query, fks)
        if form.relation_renaming != plan.form.relation_renaming:
            # the view's raw provenance must be the *request's* spelling,
            # not the compiling one (the class half is identical)
            plan = replace(plan, form=form, fingerprint=form.fingerprint)
        return plan, hit

    def plan_for(
        self,
        query: ConjunctiveQuery | Problem,
        fks: ForeignKeySet | None = None,
    ) -> CertaintyPlan:
        """The compiled plan for the problem, from cache when possible."""
        return self.plan_entry(query, fks)[0]

    def explain(
        self,
        query: ConjunctiveQuery | Problem,
        fks: ForeignKeySet | None = None,
    ) -> str:
        """The plan summary for the problem (compiling it if necessary)."""
        plan, _, form = self.route(query, fks)
        summary = plan.describe()
        if form.relation_renaming != plan.form.relation_renaming:
            summary += f"\n  spelling: {form.describe_renaming()}"
        return summary

    # -- execution ----------------------------------------------------------

    def decide(
        self,
        query: ConjunctiveQuery | Problem,
        fks: ForeignKeySet | DatabaseInstance | None = None,
        db: DatabaseInstance | None = None,
    ) -> bool:
        """The certain answer on one instance.

        Call as ``decide(problem, db)`` or ``decide(query, fks, db)``
        (positionally or by keyword).
        """
        if isinstance(query, Problem):
            if fks is not None and db is not None:
                raise TypeError("decide(problem, db) takes no separate fks")
            problem, instance = query, db if db is not None else fks
        else:
            problem, instance = as_problem(query, fks), db
        if not isinstance(instance, DatabaseInstance):
            raise TypeError("decide needs a DatabaseInstance to answer on")
        plan, _, form = self.route(problem)
        return plan.decide(instance, form=form)

    def decide_batch(
        self,
        query: ConjunctiveQuery | Problem,
        fks: ForeignKeySet | Iterable[DatabaseInstance] | None = None,
        dbs: Iterable[DatabaseInstance] | None = None,
        executor: ExecutorConfig | None = None,
    ) -> BatchResult:
        """The certain answers over an instance stream, through one plan.

        Call as ``decide_batch(problem, dbs)`` or
        ``decide_batch(query, fks, dbs)`` (positionally or by keyword).
        """
        if isinstance(query, Problem):
            if fks is not None and dbs is not None:
                raise TypeError(
                    "decide_batch(problem, dbs) takes no separate fks"
                )
            problem, instances = query, dbs if dbs is not None else fks
        else:
            problem, instances = as_problem(query, fks), dbs
        if instances is None:
            raise TypeError("decide_batch needs an iterable of instances")
        plan, _, form = self.route(problem)
        return self.run_batch(plan, instances, executor, form=form)

    def run_batch(
        self,
        plan: CertaintyPlan,
        dbs: Iterable[DatabaseInstance],
        executor: ExecutorConfig | None = None,
        form: CanonicalForm | None = None,
    ) -> BatchResult:
        """Execute an already-compiled plan over *dbs* (no cache lookup).

        Instances are transported through *form* (the plan's compiling
        spelling by default) before execution, so the executor pools see
        canonical instances only.
        """
        transport = (form or plan.form).transport_instance
        runner = (
            self._executor if executor is None else BatchExecutor(executor)
        )
        return runner.run(plan, (transport(db) for db in dbs))

    # -- introspection ------------------------------------------------------

    def cache_stats(self) -> CacheStats:
        return self._cache.stats()

    def cached_plan(self, fingerprint) -> CertaintyPlan | None:
        """The cached plan for a class fingerprint (or bare class digest),
        without compiling, reordering, or counting the lookup.

        The serving layer uses this to attribute per-request spelling
        provenance to a plan it executed through the session facade.
        """
        return self._cache.peek(fingerprint)

    def stats(self) -> EngineStats:
        """Cache counters plus one report per cached plan (LRU order) and
        one aggregate per backend."""
        reports = tuple(
            PlanReport(
                fingerprint=plan.fingerprint.digest,
                backend=plan.backend,
                verdict=plan.classification.verdict.name,
                metrics=plan.metrics.snapshot(),
                spellings=plan.spellings,
            )
            for plan in self._cache.plans()
        )
        return EngineStats(
            cache=self._cache.stats(),
            plans=reports,
            backends=_aggregate_backends(reports),
            tiers=_aggregate_tiers(reports),
        )

    # -- lifecycle ----------------------------------------------------------

    def clear(self) -> None:
        """Drop every cached plan, closing its prepared solver (counters
        are kept)."""
        self._cache.clear()

    def close(self) -> None:
        """Release all plan resources; the engine stays usable (plans are
        recompiled on demand)."""
        self._cache.clear()

    def __enter__(self) -> "CertaintyEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class EngineSolver:
    """Adapter: a :class:`CertaintyEngine` behind the fixed-problem solver
    interface, so the benchmark harness can drive the engine like any other
    :class:`~repro.solvers.base.PreparedSolver`."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    engine: CertaintyEngine = field(default_factory=CertaintyEngine)
    name: str = "engine"

    def decide(self, db: DatabaseInstance) -> bool:
        """Route through the engine's cached plan for this problem."""
        return self.engine.decide(self.query, self.fks, db)

    def close(self) -> None:
        """Release the engine's cached plans (prepared solvers included)."""
        self.engine.close()

    def __enter__(self) -> "EngineSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
