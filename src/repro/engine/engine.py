"""The certainty engine: plan cache + router + batch executor in one facade.

:class:`CertaintyEngine` is the single entry point for high-volume
consistent query answering.  Every ``decide``/``decide_batch`` call

1. fingerprints the problem (:mod:`repro.engine.fingerprint`),
2. fetches or compiles the plan (classification + registry routing +
   prepared-solver construction, paid once per distinct problem),
3. executes the plan's prepared solver over the instance(s), accumulating
   per-plan metrics.

The engine is safe to share across threads and is a context manager:
``close()`` (or ``clear()``) releases every cached plan's prepared solver
— warm SQL connections included.  Higher-level code should prefer the
:class:`repro.api.Session` facade, which wraps an engine and returns
structured :class:`~repro.api.Decision`s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..api.problem import Problem, as_problem
from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..db.instance import DatabaseInstance
from .cache import CacheStats, PlanCache
from .executor import BatchExecutor, BatchResult, ExecutorConfig
from .metrics import MetricsSnapshot, merge_histograms
from .plan import CertaintyPlan, compile_plan
from .registry import BackendRegistry


@dataclass(frozen=True)
class EngineConfig:
    """Engine-wide knobs."""

    plan_cache_size: int = 128
    fo_backend: str = "memory"  # or "sql"
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    registry: BackendRegistry | None = None  # None: the default registry

    def __post_init__(self) -> None:
        if self.fo_backend not in ("memory", "sql"):
            raise ValueError(
                f"unknown fo_backend {self.fo_backend!r} "
                "(expected 'memory' or 'sql')"
            )


@dataclass(frozen=True)
class PlanReport:
    """One cached plan's identity and accumulated metrics."""

    fingerprint: str
    backend: str
    verdict: str
    metrics: MetricsSnapshot

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "backend": self.backend,
            "verdict": self.verdict,
            "metrics": self.metrics.to_dict(),
        }


@dataclass(frozen=True)
class BackendReport:
    """One backend's aggregate over every cached plan routed to it."""

    backend: str
    plans: int
    metrics: MetricsSnapshot

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "plans": self.plans,
            "metrics": self.metrics.to_dict(),
        }


def _aggregate_backends(
    plans: tuple[PlanReport, ...],
) -> tuple[BackendReport, ...]:
    """Merge per-plan metrics into one report per backend (sorted by name)."""
    grouped: dict[str, list[PlanReport]] = {}
    for plan in plans:
        grouped.setdefault(plan.backend, []).append(plan)
    reports = []
    for backend in sorted(grouped):
        members = grouped[backend]
        snaps = [p.metrics for p in members]
        mins = [s.min_seconds for s in snaps if s.min_seconds is not None]
        maxs = [s.max_seconds for s in snaps if s.max_seconds is not None]
        reports.append(
            BackendReport(
                backend=backend,
                plans=len(members),
                metrics=MetricsSnapshot(
                    evaluations=sum(s.evaluations for s in snaps),
                    batches=sum(s.batches for s in snaps),
                    total_seconds=sum(s.total_seconds for s in snaps),
                    min_seconds=min(mins) if mins else None,
                    max_seconds=max(maxs) if maxs else None,
                    histogram=merge_histograms(s.histogram for s in snaps),
                ),
            )
        )
    return tuple(reports)


@dataclass(frozen=True)
class EngineStats:
    """A point-in-time view of the engine's cache, plans, and backends."""

    cache: CacheStats
    plans: tuple[PlanReport, ...]
    backends: tuple[BackendReport, ...] = ()

    def to_dict(self) -> dict:
        """A plain-JSON view (`stats` wire verb, ``repro engine --stats``)."""
        return {
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "size": self.cache.size,
                "capacity": self.cache.capacity,
                "hit_rate": self.cache.hit_rate,
            },
            "plans": [plan.to_dict() for plan in self.plans],
            "backends": [backend.to_dict() for backend in self.backends],
        }


class CertaintyEngine:
    """Plan-caching, auto-routing decision engine for ``CERTAINTY(q, FK)``.

    Every problem-taking method accepts either a :class:`repro.api.Problem`
    or the historical ``(query, fks)`` pair.
    """

    def __init__(self, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        self._cache = PlanCache(self.config.plan_cache_size)
        self._executor = BatchExecutor(self.config.executor)

    # -- planning -----------------------------------------------------------

    def plan_entry(
        self,
        query: ConjunctiveQuery | Problem,
        fks: ForeignKeySet | None = None,
    ) -> tuple[CertaintyPlan, bool]:
        """The compiled plan plus whether the lookup hit the cache."""
        problem = as_problem(query, fks)
        fingerprint = problem.fingerprint
        return self._cache.entry(
            fingerprint,
            lambda: compile_plan(
                problem,
                fo_backend=self.config.fo_backend,
                fingerprint=fingerprint,
                registry=self.config.registry,
            ),
        )

    def plan_for(
        self,
        query: ConjunctiveQuery | Problem,
        fks: ForeignKeySet | None = None,
    ) -> CertaintyPlan:
        """The compiled plan for the problem, from cache when possible."""
        return self.plan_entry(query, fks)[0]

    def explain(
        self,
        query: ConjunctiveQuery | Problem,
        fks: ForeignKeySet | None = None,
    ) -> str:
        """The plan summary for the problem (compiling it if necessary)."""
        return self.plan_for(query, fks).describe()

    # -- execution ----------------------------------------------------------

    def decide(
        self,
        query: ConjunctiveQuery | Problem,
        fks: ForeignKeySet | DatabaseInstance | None = None,
        db: DatabaseInstance | None = None,
    ) -> bool:
        """The certain answer on one instance.

        Call as ``decide(problem, db)`` or ``decide(query, fks, db)``
        (positionally or by keyword).
        """
        if isinstance(query, Problem):
            if fks is not None and db is not None:
                raise TypeError("decide(problem, db) takes no separate fks")
            problem, instance = query, db if db is not None else fks
        else:
            problem, instance = as_problem(query, fks), db
        if not isinstance(instance, DatabaseInstance):
            raise TypeError("decide needs a DatabaseInstance to answer on")
        return self.plan_for(problem).decide(instance)

    def decide_batch(
        self,
        query: ConjunctiveQuery | Problem,
        fks: ForeignKeySet | Iterable[DatabaseInstance] | None = None,
        dbs: Iterable[DatabaseInstance] | None = None,
        executor: ExecutorConfig | None = None,
    ) -> BatchResult:
        """The certain answers over an instance stream, through one plan.

        Call as ``decide_batch(problem, dbs)`` or
        ``decide_batch(query, fks, dbs)`` (positionally or by keyword).
        """
        if isinstance(query, Problem):
            if fks is not None and dbs is not None:
                raise TypeError(
                    "decide_batch(problem, dbs) takes no separate fks"
                )
            problem, instances = query, dbs if dbs is not None else fks
        else:
            problem, instances = as_problem(query, fks), dbs
        if instances is None:
            raise TypeError("decide_batch needs an iterable of instances")
        return self.run_batch(self.plan_for(problem), instances, executor)

    def run_batch(
        self,
        plan: CertaintyPlan,
        dbs: Iterable[DatabaseInstance],
        executor: ExecutorConfig | None = None,
    ) -> BatchResult:
        """Execute an already-compiled plan over *dbs* (no cache lookup)."""
        runner = (
            self._executor if executor is None else BatchExecutor(executor)
        )
        return runner.run(plan, dbs)

    # -- introspection ------------------------------------------------------

    def cache_stats(self) -> CacheStats:
        return self._cache.stats()

    def stats(self) -> EngineStats:
        """Cache counters plus one report per cached plan (LRU order) and
        one aggregate per backend."""
        reports = tuple(
            PlanReport(
                fingerprint=plan.fingerprint.digest,
                backend=plan.backend,
                verdict=plan.classification.verdict.name,
                metrics=plan.metrics.snapshot(),
            )
            for plan in self._cache.plans()
        )
        return EngineStats(
            cache=self._cache.stats(),
            plans=reports,
            backends=_aggregate_backends(reports),
        )

    # -- lifecycle ----------------------------------------------------------

    def clear(self) -> None:
        """Drop every cached plan, closing its prepared solver (counters
        are kept)."""
        self._cache.clear()

    def close(self) -> None:
        """Release all plan resources; the engine stays usable (plans are
        recompiled on demand)."""
        self._cache.clear()

    def __enter__(self) -> "CertaintyEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class EngineSolver:
    """Adapter: a :class:`CertaintyEngine` behind the fixed-problem solver
    interface, so the benchmark harness can drive the engine like any other
    :class:`~repro.solvers.base.PreparedSolver`."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    engine: CertaintyEngine = field(default_factory=CertaintyEngine)
    name: str = "engine"

    def decide(self, db: DatabaseInstance) -> bool:
        """Route through the engine's cached plan for this problem."""
        return self.engine.decide(self.query, self.fks, db)

    def close(self) -> None:
        """Release the engine's cached plans (prepared solvers included)."""
        self.engine.close()

    def __enter__(self) -> "EngineSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
