"""The certainty engine: plan cache + router + batch executor in one facade.

:class:`CertaintyEngine` is the single entry point for high-volume
consistent query answering.  Every ``decide``/``decide_batch`` call

1. fingerprints the problem (:mod:`repro.engine.fingerprint`),
2. fetches or compiles the plan (classification + routing + rewriting
   construction, paid once per distinct problem),
3. executes the plan's solver over the instance(s), accumulating per-plan
   metrics.

The engine is safe to share across threads; later scaling work (sharding,
async serving, multi-backend fan-out) plugs in behind this interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..db.instance import DatabaseInstance
from .cache import CacheStats, PlanCache
from .executor import BatchExecutor, BatchResult, ExecutorConfig
from .fingerprint import problem_fingerprint
from .metrics import MetricsSnapshot
from .plan import CertaintyPlan, compile_plan


@dataclass(frozen=True)
class EngineConfig:
    """Engine-wide knobs."""

    plan_cache_size: int = 128
    fo_backend: str = "memory"  # or "sql"
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)

    def __post_init__(self) -> None:
        if self.fo_backend not in ("memory", "sql"):
            raise ValueError(
                f"unknown fo_backend {self.fo_backend!r} "
                "(expected 'memory' or 'sql')"
            )


@dataclass(frozen=True)
class PlanReport:
    """One cached plan's identity and accumulated metrics."""

    fingerprint: str
    backend: str
    verdict: str
    metrics: MetricsSnapshot


@dataclass(frozen=True)
class EngineStats:
    """A point-in-time view of the engine's cache and plans."""

    cache: CacheStats
    plans: tuple[PlanReport, ...]


class CertaintyEngine:
    """Plan-caching, auto-routing decision engine for ``CERTAINTY(q, FK)``."""

    def __init__(self, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        self._cache = PlanCache(self.config.plan_cache_size)
        self._executor = BatchExecutor(self.config.executor)

    # -- planning -----------------------------------------------------------

    def plan_for(
        self, query: ConjunctiveQuery, fks: ForeignKeySet
    ) -> CertaintyPlan:
        """The compiled plan for ``(q, FK)``, from cache when possible."""
        fingerprint = problem_fingerprint(query, fks)
        return self._cache.get_or_build(
            fingerprint,
            lambda: compile_plan(
                query, fks,
                fo_backend=self.config.fo_backend,
                fingerprint=fingerprint,
            ),
        )

    def explain(self, query: ConjunctiveQuery, fks: ForeignKeySet) -> str:
        """The plan summary for ``(q, FK)`` (compiling it if necessary)."""
        return self.plan_for(query, fks).describe()

    # -- execution ----------------------------------------------------------

    def decide(
        self,
        query: ConjunctiveQuery,
        fks: ForeignKeySet,
        db: DatabaseInstance,
    ) -> bool:
        """The certain answer on one instance."""
        return self.plan_for(query, fks).decide(db)

    def decide_batch(
        self,
        query: ConjunctiveQuery,
        fks: ForeignKeySet,
        dbs: Iterable[DatabaseInstance],
        executor: ExecutorConfig | None = None,
    ) -> BatchResult:
        """The certain answers over an instance stream, through one plan."""
        plan = self.plan_for(query, fks)
        runner = (
            self._executor if executor is None else BatchExecutor(executor)
        )
        return runner.run(plan, dbs)

    # -- introspection ------------------------------------------------------

    def cache_stats(self) -> CacheStats:
        return self._cache.stats()

    def stats(self) -> EngineStats:
        """Cache counters plus one report per cached plan (LRU order)."""
        reports = tuple(
            PlanReport(
                fingerprint=plan.fingerprint.digest,
                backend=plan.backend.value,
                verdict=plan.classification.verdict.name,
                metrics=plan.metrics.snapshot(),
            )
            for plan in self._cache.plans()
        )
        return EngineStats(cache=self._cache.stats(), plans=reports)

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        self._cache.clear()


@dataclass
class EngineSolver:
    """Adapter: a :class:`CertaintyEngine` behind the fixed-problem solver
    interface, so the benchmark harness can drive the engine like any other
    :class:`~repro.solvers.base.CertaintySolver`."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    engine: CertaintyEngine = field(default_factory=CertaintyEngine)
    name: str = "engine"

    def decide(self, db: DatabaseInstance) -> bool:
        """Route through the engine's cached plan for this problem."""
        return self.engine.decide(self.query, self.fks, db)
