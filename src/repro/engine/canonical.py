"""Canonical problem classes: ``CERTAINTY(q, FK)`` up to renaming isomorphism.

The trichotomy assigns complexity to a problem's *shape*, not its spelling:
two problems that differ only by a consistent renaming of relations (and
variables) are the same island, admit the same decision procedure, and —
operationally — should share one compiled plan.  This module computes that
shape as a value object:

* :func:`class_encoding` produces a renaming-invariant canonical text for a
  ``(q, FK)`` pair, together with the relation renaming that realises it —
  the **class fingerprint** all isomorphic spellings agree on;
* :func:`canonicalize` lifts the encoding to a full :class:`CanonicalForm`:
  the canonical :class:`~repro.api.Problem` spelling (relations ``~0, ~1,
  …``, variables ``v0, v1, …``), the invertible relation/variable
  renamings, the combined class+raw :class:`~repro.engine.fingerprint
  .Fingerprint`, and the lazily-cached Theorem 12 classification of the
  canonical problem;
* :meth:`CanonicalForm.transport_instance` renames a raw-spelling database
  instance into the canonical spelling so one prepared solver — built once
  against the canonical form — answers every isomorphic spelling.

Canonicalization is graph canonicalization in miniature: atoms get a
renaming-invariant base colour ``(arity, key size, local term pattern)``,
colours are refined with the variable-sharing and foreign-key structure
(Weisfeiler–Leman style), and residual symmetric groups are broken by
taking the lexicographically least encoding over their orderings.  The
search is budgeted: at most :data:`MAX_ORDERINGS` total orderings are
enumerated across all tie groups (the *product* of group permutation
counts is bounded, so a query with several symmetric groups cannot stall
fingerprinting); groups that would exceed the remaining budget fall back
to a deterministic spelling-dependent tie-break.  Twins may then miss
each other's plans, but no two *distinct* classes ever collide — the
encoding is a faithful serialization of the renamed problem.

Canonical relation names use the ``~i`` alphabet, which the atom parser
rejects, so a parsed raw spelling can never collide with a canonical one.
"""

from __future__ import annotations

import hashlib
import itertools
import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Iterable, Mapping

from ..core.atoms import Atom
from ..core.classify import Classification, classify
from ..core.foreign_keys import ForeignKey, ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.terms import Parameter, Variable
from ..db.instance import DatabaseInstance
from ..solvers.base import close_solver

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api -> engine)
    from ..api.problem import Problem
    from .fingerprint import Fingerprint

#: Total orderings budget for the least-encoding search, across *all*
#: colour classes (their permutation counts multiply); groups that would
#: blow the remaining budget degrade to a raw-relation-name tie-break.
MAX_ORDERINGS = 720


def canonical_relation_name(index: int) -> str:
    """The *index*-th canonical relation name (``~0``, ``~1``, …)."""
    return f"~{index}"


def is_canonical_relation_name(name: str) -> bool:
    return name.startswith("~") and name[1:].isdigit()


# -- the renaming-invariant encoding ------------------------------------------


def _term_key(term: object) -> tuple:
    """A renaming-invariant, orderable key for a non-variable term."""
    if isinstance(term, Parameter):
        return ("p", term.name)
    value = term.value  # Constant
    return ("c", type(value).__name__, repr(value))


def atom_shape_key(atom: Atom) -> tuple:
    """The renaming-invariant base colour of one atom.

    ``(arity, key size, term pattern)``: variables are numbered by first
    occurrence *within the atom*, constants and parameters kept verbatim —
    exactly the data a relation renaming cannot touch.
    """
    seen: dict[Variable, int] = {}
    pattern = []
    for term in atom.terms:
        if isinstance(term, Variable):
            if term not in seen:
                seen[term] = len(seen)
            pattern.append(("v", seen[term]))
        else:
            pattern.append(_term_key(term))
    return (atom.arity, atom.key_size, tuple(pattern))


def _refine_colors(
    atoms: tuple[Atom, ...], fks: ForeignKeySet
) -> dict[str, str]:
    """Stable per-atom colours refined with sharing and foreign-key links.

    Colours are hex digests, so ordering colour classes by colour is
    deterministic *and* renaming-invariant.
    """

    def digest(payload: object) -> str:
        return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()

    colors = {a.relation: digest(atom_shape_key(a)) for a in atoms}
    for _ in range(max(1, len(atoms))):
        refined: dict[str, str] = {}
        for atom in atoms:
            links: list[tuple] = []
            for position in range(1, atom.arity + 1):
                term = atom.term_at(position)
                if not isinstance(term, Variable):
                    continue
                for other in atoms:
                    if other.relation == atom.relation:
                        continue
                    for j in other.positions_of(term):
                        links.append(
                            ("var", position, j, colors[other.relation])
                        )
            for fk in fks:
                if fk.source == atom.relation:
                    links.append(("fk-out", fk.position, colors[fk.target]))
                if fk.target == atom.relation:
                    links.append(("fk-in", fk.position, colors[fk.source]))
            refined[atom.relation] = digest(
                (colors[atom.relation], tuple(sorted(links)))
            )
        if _partition(refined, atoms) == _partition(colors, atoms):
            break
        colors = refined
    return colors


def _partition(
    colors: Mapping[str, str], atoms: tuple[Atom, ...]
) -> frozenset[frozenset[str]]:
    groups: dict[str, set[str]] = {}
    for atom in atoms:
        groups.setdefault(colors[atom.relation], set()).add(atom.relation)
    return frozenset(frozenset(g) for g in groups.values())


def _encode_ordering(
    ordered: tuple[Atom, ...], fks: ForeignKeySet
) -> tuple[str, dict[str, str], dict[Variable, Variable]]:
    """The canonical text of one atom ordering, plus its renamings."""
    from .fingerprint import _atom_text

    relation_map = {
        atom.relation: canonical_relation_name(i)
        for i, atom in enumerate(ordered)
    }
    variable_map: dict[Variable, Variable] = {}
    parts = []
    for atom in ordered:
        terms = []
        for term in atom.terms:
            if isinstance(term, Variable):
                if term not in variable_map:
                    variable_map[term] = Variable(f"v{len(variable_map)}")
                terms.append(variable_map[term])
            else:
                terms.append(term)
        parts.append(
            _atom_text(
                Atom(relation_map[atom.relation], tuple(terms), atom.key_size)
            )
        )
    keys = ", ".join(
        sorted(
            f"{relation_map[fk.source]}[{fk.position}]"
            f"->{relation_map[fk.target]}"
            for fk in fks
        )
    )
    return " ∧ ".join(parts) + " ## " + keys, relation_map, variable_map


def class_encoding(
    query: ConjunctiveQuery, fks: ForeignKeySet
) -> tuple[str, dict[str, str], dict[Variable, Variable]]:
    """The renaming-invariant canonical text of ``(q, FK)``.

    Returns ``(text, relation_renaming, variable_renaming)`` where the
    renamings map raw names onto the canonical alphabet realising *text*.
    """
    atoms = query.atoms
    colors = _refine_colors(atoms, fks)
    groups: dict[str, list[Atom]] = {}
    for atom in atoms:
        groups.setdefault(colors[atom.relation], []).append(atom)
    ordered_groups = [groups[color] for color in sorted(groups)]

    budget = MAX_ORDERINGS

    def orderings(group: list[Atom]) -> Iterable[tuple[Atom, ...]]:
        nonlocal budget
        if len(group) <= 1:
            return [tuple(group)]
        permutations = math.factorial(len(group))
        if permutations > budget:
            # degrade to a deterministic (spelling-dependent) tie-break
            return [tuple(sorted(group, key=lambda a: a.relation))]
        budget //= permutations
        return itertools.permutations(group)

    best: tuple[str, dict[str, str], dict[Variable, Variable]] | None = None
    for combo in itertools.product(*(orderings(g) for g in ordered_groups)):
        ordered = tuple(atom for group in combo for atom in group)
        candidate = _encode_ordering(ordered, fks)
        if best is None or candidate[0] < best[0]:
            best = candidate
    assert best is not None  # queries have at least zero atoms; "" is valid
    return best


# -- the canonical form --------------------------------------------------------


@dataclass(frozen=True, eq=False)
class CanonicalForm:
    """One problem's renaming-isomorphism class, with the way back.

    ``problem`` is the canonical spelling every isomorphic twin maps to;
    ``relation_renaming``/``variable_renaming`` record how *source* reached
    it (both invertible — canonicalization never merges names);
    ``fingerprint`` carries the class digest (primary identity) and the
    spelling-level raw digest of *source*.
    """

    source: "Problem"
    problem: "Problem"
    relation_renaming: dict[str, str]
    variable_renaming: dict[Variable, Variable]
    fingerprint: "Fingerprint"

    @cached_property
    def inverse(self) -> dict[str, str]:
        """Canonical relation name → the source spelling's name."""
        return {new: old for old, new in self.relation_renaming.items()}

    @cached_property
    def classification(self) -> Classification:
        """The Theorem 12 outcome of the canonical problem (lazy, cached).

        Classification is renaming-invariant, so this is the classification
        of every spelling in the class — recognizers read it off the form
        instead of re-running the decision procedure per spelling.
        """
        return classify(self.problem.query, self.problem.fks)

    @cached_property
    def source_classification(self) -> Classification:
        """The Theorem 12 outcome spelled like :attr:`source`.

        Same verdict as :attr:`classification` (classification is
        renaming-invariant); witnesses and relation names are the source
        spelling's.  This is what legacy ``supports`` predicates receive,
        so predicates matching literal relation names keep working.
        """
        return classify(self.source.query, self.source.fks)

    def transport_instance(self, db: DatabaseInstance) -> DatabaseInstance:
        """Rename *db* from the source spelling into the canonical one.

        Facts of relations outside the renaming (not mentioned by the
        query) pass through verbatim — except relations spelled in the
        reserved canonical alphabet (``~i``), which are **dropped**: such
        names cannot come from a parsed spelling, and letting a wire
        instance smuggle them in would merge stray facts into the renamed
        query relations (flipping answers, or crashing on arity
        mismatches).  Irrelevant relations never influence the certain
        answer, so dropping them is semantics-preserving.  Transporting an
        already-canonical instance through the canonical problem's own
        (identity) form is the identity — its query relations are in the
        renaming's domain — so the serving layer's double transport is
        harmless.
        """
        reserved = [
            relation
            for relation in db.relations
            if relation not in self.relation_renaming
            and is_canonical_relation_name(relation)
        ]
        if reserved:
            db = db.restrict_relations(db.relations - frozenset(reserved))
        return rename_instance(db, self.relation_renaming)

    def restore_relation(self, name: str) -> str:
        """Map a canonical relation name back to the source spelling."""
        return self.inverse.get(name, name)

    def describe_renaming(self) -> str:
        """The relation legend, e.g. ``"AUTHORS≔~0, DOCS≔~1"``."""
        return ", ".join(
            f"{old}≔{new}"
            for old, new in sorted(self.relation_renaming.items())
        )

    def __repr__(self) -> str:
        return (
            f"CanonicalForm({self.fingerprint.digest}, "
            f"{self.describe_renaming()})"
        )


#: Bounded memo of canonicalizations, keyed by the spelling-level raw
#: text (cheap to compute, and two problems sharing it have identical
#: relation names and structure, hence the same canonical problem and
#: relation renaming).  Serving decodes a fresh ``Problem`` per request,
#: so without this every request would re-pay the colour refinement and
#: the least-encoding search.
_MEMO_CAPACITY = 1024
_memo: "OrderedDict[str, tuple]" = OrderedDict()
_memo_lock = threading.Lock()


def canonicalize(problem: "Problem") -> "CanonicalForm":
    """The :class:`CanonicalForm` of *problem* (see the module docstring)."""
    from .fingerprint import Fingerprint, raw_encoding

    raw_text = raw_encoding(problem.query, problem.fks)
    with _memo_lock:
        cached = _memo.get(raw_text)
        if cached is not None:
            _memo.move_to_end(raw_text)
    if cached is not None:
        canonical_problem, relation_map, fingerprint = cached
        return CanonicalForm(
            source=problem,
            problem=canonical_problem,
            relation_renaming=dict(relation_map),
            variable_renaming=_variable_renaming_for(problem, relation_map),
            fingerprint=fingerprint,
        )
    form = _canonicalize_uncached(problem, raw_text)
    with _memo_lock:
        _memo[raw_text] = (
            form.problem, form.relation_renaming, form.fingerprint
        )
        while len(_memo) > _MEMO_CAPACITY:
            _memo.popitem(last=False)
    return form


def _variable_renaming_for(
    problem: "Problem", relation_map: Mapping[str, str]
) -> dict[Variable, Variable]:
    """Rebuild the variable renaming for a memo hit: walk the atoms in
    canonical order (read off the relation map) and alpha-rename."""
    ordered = sorted(
        problem.query.atoms,
        key=lambda atom: int(relation_map[atom.relation][1:]),
    )
    renaming: dict[Variable, Variable] = {}
    for atom in ordered:
        for term in atom.terms:
            if isinstance(term, Variable) and term not in renaming:
                renaming[term] = Variable(f"v{len(renaming)}")
    return renaming


def _canonicalize_uncached(
    problem: "Problem", raw_text: str
) -> "CanonicalForm":
    from ..api.problem import Problem
    from .fingerprint import Fingerprint, raw_encoding

    text, relation_map, variable_map = class_encoding(
        problem.query, problem.fks
    )
    atoms = [
        Atom(
            relation_map[atom.relation],
            tuple(
                variable_map[t] if isinstance(t, Variable) else t
                for t in atom.terms
            ),
            atom.key_size,
        )
        for atom in problem.query.atoms
    ]
    query = ConjunctiveQuery(atoms)
    fks = ForeignKeySet(
        (
            ForeignKey(
                relation_map[fk.source], fk.position, relation_map[fk.target]
            )
            for fk in problem.fks
        ),
        query.schema(),
    )
    canonical_problem = Problem(query, fks)
    fingerprint = Fingerprint(
        text=text,
        digest=_digest(text),
        raw_text=raw_text,
        raw_digest=_digest(raw_text),
    )
    # Pre-seed the canonical spelling's own fingerprint and its identity
    # self-form: same class text by construction, its own raw text — the
    # serving layer routes batches through the canonical problem, which
    # must not pay the least-encoding search a second time per flush.
    canonical_raw = raw_encoding(query, fks)
    canonical_problem.__dict__["fingerprint"] = Fingerprint(
        text=text,
        digest=_digest(text),
        raw_text=canonical_raw,
        raw_digest=_digest(canonical_raw),
    )
    canonical_problem.__dict__["canonical"] = CanonicalForm(
        source=canonical_problem,
        problem=canonical_problem,
        relation_renaming={name: name for name in relation_map.values()},
        variable_renaming={
            variable: variable for variable in variable_map.values()
        },
        fingerprint=canonical_problem.__dict__["fingerprint"],
    )
    return CanonicalForm(
        source=problem,
        problem=canonical_problem,
        relation_renaming=dict(relation_map),
        variable_renaming=dict(variable_map),
        fingerprint=fingerprint,
    )


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# -- renaming utilities --------------------------------------------------------


def rename_instance(
    db: DatabaseInstance, renaming: Mapping[str, str]
) -> DatabaseInstance:
    """A copy of *db* with relations renamed per *renaming* (others kept).

    Returns *db* itself when the renaming is the identity on every
    relation present — the already-canonical fast path the serving layer
    leans on.
    """
    from ..db.facts import Fact

    if all(
        renaming.get(relation, relation) == relation
        for relation in db.relations
    ):
        return db
    return DatabaseInstance(
        Fact(renaming.get(f.relation, f.relation), f.values, f.key_size)
        for f in db.facts
    )


def rename_problem(
    problem: "Problem", renaming: Mapping[str, str]
) -> "Problem":
    """*problem* under a consistent relation renaming — its isomorphic twin.

    The test suite's twin generator; *renaming* must be injective on the
    problem's relations (missing names are kept).
    """
    from ..api.problem import Problem

    atoms = [
        Atom(renaming.get(a.relation, a.relation), a.terms, a.key_size)
        for a in problem.query.atoms
    ]
    query = ConjunctiveQuery(atoms)
    fks = ForeignKeySet(
        (
            ForeignKey(
                renaming.get(fk.source, fk.source),
                fk.position,
                renaming.get(fk.target, fk.target),
            )
            for fk in problem.fks
        ),
        query.schema(),
    )
    return Problem(query, fks, name=problem.name)


class RenamingSolver:
    """A prepared solver that renames each instance's relations through a
    fixed mapping before delegating.  Everything else (``sql``,
    ``rewriting``, ``connections_opened``, …) delegates to the wrapped
    solver."""

    def __init__(self, inner, renaming: Mapping[str, str]):
        self._inner = inner
        self._renaming = dict(renaming)

    @property
    def name(self) -> str:
        return self._inner.name

    def _prepare_instance(self, db: DatabaseInstance) -> DatabaseInstance:
        return rename_instance(db, self._renaming)

    def decide(self, db: DatabaseInstance) -> bool:
        return self._inner.decide(self._prepare_instance(db))

    def close(self) -> None:
        close_solver(self._inner)

    def __getattr__(self, attribute: str):
        # guard against recursion while unpickling: pickle probes
        # __setstate__ and friends via getattr before __init__ has run,
        # when self._inner does not exist yet
        if attribute.startswith("__") and attribute.endswith("__"):
            raise AttributeError(attribute)
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(attribute)
        return getattr(inner, attribute)

    def __enter__(self) -> "RenamingSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TransportingSolver(RenamingSolver):
    """A prepared solver built against a canonical form, answering raw
    spellings: every ``decide`` transports the instance through the form's
    renaming first (reserved-alphabet strays dropped)."""

    def __init__(self, inner, form: CanonicalForm):
        super().__init__(inner, form.relation_renaming)
        self._form = form

    @property
    def form(self) -> CanonicalForm:
        return self._form

    def _prepare_instance(self, db: DatabaseInstance) -> DatabaseInstance:
        return self._form.transport_instance(db)
