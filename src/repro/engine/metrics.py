"""Per-plan execution metrics.

Every :class:`~repro.engine.plan.CertaintyPlan` carries a
:class:`PlanMetrics` that accumulates evaluation counts, wall-clock
latency, and a fixed-bucket latency histogram.  Single-instance calls
record per-call latencies; batch runs record one aggregate sample per
batch (the executor cannot observe per-call times inside a process pool)
whose per-evaluation mean is attributed to the histogram so bucket counts
always sum to the evaluation count.  Recording is thread-safe so the
thread-pool executor and the sharded server can share one plan across
workers.

The histogram buckets are logarithmic upper bounds in seconds
(:data:`LATENCY_BUCKET_BOUNDS`), with a final overflow bucket: the spread
from microsecond-scale in-memory FO evaluation to the exhaustive
fallbacks' worst cases fits no linear scale.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field

#: Upper bounds (inclusive), in seconds, of the latency histogram buckets.
#: A sample lands in the first bucket whose bound it does not exceed; the
#: implicit final bucket collects everything slower than the last bound.
LATENCY_BUCKET_BOUNDS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
)

_N_BUCKETS = len(LATENCY_BUCKET_BOUNDS) + 1


def bucket_labels() -> tuple[str, ...]:
    """Human-readable labels, one per histogram bucket (CLI/stats views)."""

    def _fmt(bound: float) -> str:
        if bound >= 1.0:
            return f"{bound:.0f}s"
        if bound >= 1e-3:
            return f"{bound * 1e3:.0f}ms"
        return f"{bound * 1e6:.0f}µs"

    labels = [f"≤{_fmt(b)}" for b in LATENCY_BUCKET_BOUNDS]
    labels.append(f">{_fmt(LATENCY_BUCKET_BOUNDS[-1])}")
    return tuple(labels)


def _empty_histogram() -> tuple[int, ...]:
    return (0,) * _N_BUCKETS


def merge_histograms(histograms) -> tuple[int, ...]:
    """Sum bucket counts across *histograms* (aggregate/backend views)."""
    totals = [0] * _N_BUCKETS
    for histogram in histograms:
        for index, count in enumerate(histogram):
            totals[index] += count
    return tuple(totals)


def merge_snapshots(snapshots) -> "MetricsSnapshot":
    """One snapshot summing *snapshots*: counters add, the extrema widen,
    histograms merge bucket-wise (per-backend aggregates, fleet stats)."""
    snaps = list(snapshots)
    mins = [s.min_seconds for s in snaps if s.min_seconds is not None]
    maxs = [s.max_seconds for s in snaps if s.max_seconds is not None]
    return MetricsSnapshot(
        evaluations=sum(s.evaluations for s in snaps),
        batches=sum(s.batches for s in snaps),
        total_seconds=sum(s.total_seconds for s in snaps),
        min_seconds=min(mins) if mins else None,
        max_seconds=max(maxs) if maxs else None,
        histogram=merge_histograms(s.histogram for s in snaps),
        errors=sum(s.errors for s in snaps),
        timeouts=sum(s.timeouts for s in snaps),
    )


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """An immutable view of one plan's accumulated metrics."""

    evaluations: int
    batches: int
    total_seconds: float
    min_seconds: float | None
    max_seconds: float | None
    histogram: tuple[int, ...] = field(default_factory=_empty_histogram)
    errors: int = 0
    timeouts: int = 0

    @property
    def mean_seconds(self) -> float | None:
        if self.evaluations == 0:
            return None
        return self.total_seconds / self.evaluations

    @property
    def per_second(self) -> float | None:
        if self.total_seconds <= 0 or self.evaluations == 0:
            return None
        return self.evaluations / self.total_seconds

    def quantile(self, q: float) -> float | None:
        """Estimate the *q*-quantile latency from the histogram.

        Linear interpolation inside the owning bucket (lower bound 0 for
        the first), clamped to the observed extrema — interpolation must
        not report a quantile above the real maximum.  The open-ended
        overflow bucket is pinned to ``max_seconds`` when available — the
        histogram alone cannot bound it.  ``None`` with no recorded
        evaluations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = sum(self.histogram)
        if total == 0:
            return None
        target = q * total
        cumulative = 0
        lower = 0.0
        value = None
        for bound, count in zip(LATENCY_BUCKET_BOUNDS, self.histogram):
            cumulative += count
            if cumulative >= target and count > 0:
                fraction = (target - (cumulative - count)) / count
                value = lower + (bound - lower) * max(fraction, 0.0)
                break
            lower = bound
        if value is None:
            if self.max_seconds is not None and self.max_seconds > lower:
                return self.max_seconds
            return lower
        if self.max_seconds is not None:
            value = min(value, self.max_seconds)
        if self.min_seconds is not None:
            value = max(value, self.min_seconds)
        return value

    @property
    def p50_seconds(self) -> float | None:
        return self.quantile(0.50)

    @property
    def p99_seconds(self) -> float | None:
        return self.quantile(0.99)

    def to_dict(self) -> dict:
        """A plain-JSON view (the `stats` wire verb and ``--stats`` CLI)."""
        return {
            "evaluations": self.evaluations,
            "batches": self.batches,
            "total_seconds": self.total_seconds,
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
            "mean_seconds": self.mean_seconds,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "histogram": {
                label: count
                for label, count in zip(bucket_labels(), self.histogram)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output (wire `stats`
        documents; derived fields like ``mean_seconds`` are recomputed)."""
        histogram = data.get("histogram") or {}
        minimum = data.get("min_seconds")
        maximum = data.get("max_seconds")
        return cls(
            evaluations=int(data.get("evaluations", 0)),
            batches=int(data.get("batches", 0)),
            total_seconds=float(data.get("total_seconds", 0.0)),
            min_seconds=None if minimum is None else float(minimum),
            max_seconds=None if maximum is None else float(maximum),
            histogram=tuple(
                int(histogram.get(label, 0)) for label in bucket_labels()
            ),
            errors=int(data.get("errors", 0)),
            timeouts=int(data.get("timeouts", 0)),
        )


class PlanMetrics:
    """Mutable accumulator behind a lock; snapshot for reading."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._evaluations = 0
        self._batches = 0
        self._total_seconds = 0.0
        self._min_seconds: float | None = None
        self._max_seconds: float | None = None
        self._histogram = [0] * _N_BUCKETS
        self._errors = 0
        self._timeouts = 0

    def record(self, seconds: float, evaluations: int = 1) -> None:
        """Add *evaluations* answers produced in *seconds* of wall clock.

        With ``evaluations > 1`` the sample is a batch: it contributes to
        totals and the batch count but not to the per-call min/max, and its
        per-evaluation mean is attributed to the histogram *evaluations*
        times (so bucket counts stay comparable to evaluation counts).
        """
        with self._lock:
            self._evaluations += evaluations
            self._total_seconds += seconds
            if evaluations == 1:
                if self._min_seconds is None or seconds < self._min_seconds:
                    self._min_seconds = seconds
                if self._max_seconds is None or seconds > self._max_seconds:
                    self._max_seconds = seconds
                self._histogram[
                    bisect_left(LATENCY_BUCKET_BOUNDS, seconds)
                ] += 1
            else:
                self._batches += 1
                if evaluations > 0:
                    mean = seconds / evaluations
                    self._histogram[
                        bisect_left(LATENCY_BUCKET_BOUNDS, mean)
                    ] += evaluations

    def record_error(self, *, timeout: bool = False) -> None:
        """Count one failed evaluation (a timeout is also an error)."""
        with self._lock:
            self._errors += 1
            if timeout:
                self._timeouts += 1

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                evaluations=self._evaluations,
                batches=self._batches,
                total_seconds=self._total_seconds,
                min_seconds=self._min_seconds,
                max_seconds=self._max_seconds,
                histogram=tuple(self._histogram),
                errors=self._errors,
                timeouts=self._timeouts,
            )

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"PlanMetrics(evaluations={snap.evaluations}, "
            f"batches={snap.batches}, total={snap.total_seconds:.6f}s)"
        )
