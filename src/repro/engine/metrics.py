"""Per-plan execution metrics.

Every :class:`~repro.engine.plan.CertaintyPlan` carries a
:class:`PlanMetrics` that accumulates evaluation counts and wall-clock
latency.  Single-instance calls record per-call latencies; batch runs record
one aggregate sample per batch (the executor cannot observe per-call times
inside a process pool).  Recording is thread-safe so the thread-pool
executor can share one plan across workers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """An immutable view of one plan's accumulated metrics."""

    evaluations: int
    batches: int
    total_seconds: float
    min_seconds: float | None
    max_seconds: float | None

    @property
    def mean_seconds(self) -> float | None:
        if self.evaluations == 0:
            return None
        return self.total_seconds / self.evaluations

    @property
    def per_second(self) -> float | None:
        if self.total_seconds <= 0 or self.evaluations == 0:
            return None
        return self.evaluations / self.total_seconds


class PlanMetrics:
    """Mutable accumulator behind a lock; snapshot for reading."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._evaluations = 0
        self._batches = 0
        self._total_seconds = 0.0
        self._min_seconds: float | None = None
        self._max_seconds: float | None = None

    def record(self, seconds: float, evaluations: int = 1) -> None:
        """Add *evaluations* answers produced in *seconds* of wall clock.

        With ``evaluations > 1`` the sample is a batch: it contributes to
        totals and the batch count but not to the per-call min/max.
        """
        with self._lock:
            self._evaluations += evaluations
            self._total_seconds += seconds
            if evaluations == 1:
                if self._min_seconds is None or seconds < self._min_seconds:
                    self._min_seconds = seconds
                if self._max_seconds is None or seconds > self._max_seconds:
                    self._max_seconds = seconds
            else:
                self._batches += 1

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                evaluations=self._evaluations,
                batches=self._batches,
                total_seconds=self._total_seconds,
                min_seconds=self._min_seconds,
                max_seconds=self._max_seconds,
            )

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"PlanMetrics(evaluations={snap.evaluations}, "
            f"batches={snap.batches}, total={snap.total_seconds:.6f}s)"
        )
