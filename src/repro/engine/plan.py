"""Compiled certainty plans.

A :class:`CertaintyPlan` is the unit the engine caches and executes: one
:class:`~repro.api.Problem` taken through classification and routing, with
every per-problem cost already paid — the Theorem 12 decision procedure has
run, the consistent rewriting (and its SQL compilation, for the SQL
backend) has been constructed, and the chosen **prepared solver** is ready
to answer any number of instances.  Deciding an instance through a plan
does no per-problem work; dropping a plan must go through :meth:`close`
so the prepared solver releases its resources (the cache does this on
eviction and ``clear()``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..api.problem import Problem, as_problem
from ..core.classify import Classification, classify
from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.rewriting import RewritingResult
from ..db.instance import DatabaseInstance
from ..solvers.base import CertaintySolver, close_solver
from .fingerprint import Fingerprint, problem_fingerprint
from .metrics import PlanMetrics
from .registry import BackendRegistry, BackendSpec
from .router import select_backend


@dataclass
class CertaintyPlan:
    """One problem, classified, routed, and compiled for repeated execution."""

    fingerprint: Fingerprint
    problem: Problem
    classification: Classification
    spec: BackendSpec
    solver: CertaintySolver
    construction_seconds: float = 0.0
    metrics: PlanMetrics = field(default_factory=PlanMetrics, repr=False)

    @property
    def query(self) -> ConjunctiveQuery:
        return self.problem.query

    @property
    def fks(self) -> ForeignKeySet:
        return self.problem.fks

    @property
    def backend(self) -> str:
        """The selected backend's registry name (e.g. ``"fo-sql"``)."""
        return self.spec.name

    @property
    def rewriting(self) -> RewritingResult | None:
        """The compiled FO rewriting, when the backend has one."""
        return getattr(self.solver, "rewriting", None)

    @property
    def sql(self) -> str | None:
        """The compiled SQL text, when the backend is SQL-based."""
        return getattr(self.solver, "sql", None)

    def decide(self, db: DatabaseInstance) -> bool:
        """Answer ``CERTAINTY(q, FK)`` on *db*, recording latency."""
        start = time.perf_counter()
        answer = self.solver.decide(db)
        self.metrics.record(time.perf_counter() - start)
        return answer

    def decide_many(self, dbs) -> list[bool]:
        """Answer a sequence of instances serially through this plan."""
        return [self.decide(db) for db in dbs]

    def close(self) -> None:
        """Release the prepared solver's resources (idempotent)."""
        close_solver(self.solver)

    def __enter__(self) -> "CertaintyPlan":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        """A short multi-line plan summary (CLI ``engine --explain``)."""
        lines = [
            f"plan {self.fingerprint.digest}",
            f"  problem:  {self.fingerprint.text}",
            f"  verdict:  {self.classification.verdict.value}",
            f"  backend:  {self.backend}",
            f"  compile:  {self.construction_seconds * 1e3:.2f} ms",
        ]
        if self.sql is not None:
            lines.append("  sql:      " + self.sql.replace("\n", " "))
        snap = self.metrics.snapshot()
        if snap.evaluations:
            lines.append(
                f"  executed: {snap.evaluations} evaluations in "
                f"{snap.total_seconds * 1e3:.2f} ms"
            )
        return "\n".join(lines)


def compile_plan(
    query: ConjunctiveQuery | Problem,
    fks: ForeignKeySet | None = None,
    fo_backend: str = "memory",
    fingerprint: Fingerprint | None = None,
    registry: BackendRegistry | None = None,
) -> CertaintyPlan:
    """Classify and route a problem, paying all per-problem cost now.

    Accepts either a :class:`~repro.api.Problem` or the historical
    ``(query, fks)`` pair.  Pass *fingerprint* when the caller already
    computed it (the engine computes it as the cache key) to avoid
    re-canonicalizing the query; pass *registry* to route through a custom
    backend registry.
    """
    problem = as_problem(query, fks)
    start = time.perf_counter()
    classification = classify(problem.query, problem.fks)
    spec, solver = select_backend(
        classification, fo_backend=fo_backend, registry=registry
    )
    return CertaintyPlan(
        fingerprint=fingerprint or problem.fingerprint,
        problem=problem,
        classification=classification,
        spec=spec,
        solver=solver,
        construction_seconds=time.perf_counter() - start,
    )
