"""Compiled certainty plans.

A :class:`CertaintyPlan` is the unit the engine caches and executes: one
**canonical problem class** (:mod:`repro.engine.canonical`) taken through
classification and recognizer routing, with every per-class cost already
paid — the Theorem 12 decision procedure has run, the consistent rewriting
(and its SQL compilation, for the SQL backends) has been constructed
**against the canonical spelling**, and the chosen prepared solver is
ready to answer any number of instances of *any isomorphic spelling*:
instances are renamed into the canonical spelling on the way in
(:meth:`CanonicalForm.transport_instance`), decisions travel back with
both the class and the spelling fingerprints.

Deciding an instance through a plan does no per-problem work beyond the
transport; dropping a plan must go through :meth:`close` so the prepared
solver releases its resources (the cache does this on eviction and
``clear()``).
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field

from ..api.problem import Problem, as_problem
from ..core.classify import Classification
from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.rewriting import RewritingResult
from ..db.instance import DatabaseInstance
from ..obs.log import get_logger, log_event
from ..solvers.base import CertaintySolver, close_solver
from .canonical import CanonicalForm, canonicalize
from .fingerprint import Fingerprint
from .metrics import PlanMetrics
from .registry import BackendRegistry, Recognition, RouteOptions

_logger = get_logger("engine.plan")


@dataclass
class CertaintyPlan:
    """One problem class, classified, recognized, and compiled for repeated
    execution across every spelling in the class."""

    fingerprint: Fingerprint
    problem: Problem  # the canonical spelling the solver is built against
    form: CanonicalForm  # the compiling request's form (default transport)
    classification: Classification
    recognition: Recognition
    solver: CertaintySolver
    construction_seconds: float = 0.0
    metrics: PlanMetrics = field(default_factory=PlanMetrics, repr=False)
    _spellings: set = field(default_factory=set, repr=False)
    _spellings_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    @property
    def query(self) -> ConjunctiveQuery:
        return self.problem.query

    @property
    def fks(self) -> ForeignKeySet:
        return self.problem.fks

    @property
    def backend(self) -> str:
        """The recognized backend's registry name (e.g. ``"fo-sql"``)."""
        return self.recognition.backend

    @property
    def rewriting(self) -> RewritingResult | None:
        """The compiled FO rewriting, when the backend has one."""
        return getattr(self.solver, "rewriting", None)

    @property
    def sql(self) -> str | None:
        """The compiled SQL text, when the backend is SQL-based."""
        return getattr(self.solver, "sql", None)

    # -- spelling bookkeeping ------------------------------------------------

    #: Distinct raw digests remembered per plan; beyond it the sharing
    #: counter saturates so a long-lived server with adversarially many
    #: spellings of one class cannot grow plan memory without bound.
    MAX_TRACKED_SPELLINGS = 4096

    def note_spelling(self, raw_digest: str) -> None:
        """Record that a spelling with *raw_digest* routed to this plan.

        The canonical spelling itself is bookkeeping, not a caller — the
        serving layer routes batches through it — so it never counts.
        """
        if raw_digest == self.problem.fingerprint.raw:
            return
        with self._spellings_lock:
            if len(self._spellings) < self.MAX_TRACKED_SPELLINGS:
                self._spellings.add(raw_digest)

    @property
    def spellings(self) -> int:
        """How many distinct spellings this plan has served (class sharing)."""
        with self._spellings_lock:
            return len(self._spellings)

    # -- execution -----------------------------------------------------------

    def decide(
        self, db: DatabaseInstance, form: CanonicalForm | None = None
    ) -> bool:
        """Answer ``CERTAINTY(q, FK)`` on *db*, recording latency.

        *db* is spelled like *form*'s source problem (the compiling
        spelling by default); it is transported into the canonical
        spelling before the prepared solver runs.
        """
        return self.decide_canonical(
            (form or self.form).transport_instance(db)
        )

    def decide_canonical(self, db: DatabaseInstance) -> bool:
        """Answer on an instance already in the canonical spelling."""
        start = time.perf_counter()
        answer = self.solver.decide(db)
        self.metrics.record(time.perf_counter() - start)
        return answer

    def decide_many(
        self, dbs, form: CanonicalForm | None = None
    ) -> list[bool]:
        """Answer a sequence of instances serially through this plan."""
        transport = (form or self.form).transport_instance
        return [self.decide_canonical(transport(db)) for db in dbs]

    def decide_many_canonical(self, dbs) -> list[bool]:
        """Serial answers over instances already in canonical spelling."""
        return [self.decide_canonical(db) for db in dbs]

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the prepared solver's resources (idempotent)."""
        close_solver(self.solver)

    def __enter__(self) -> "CertaintyPlan":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        """A short multi-line plan summary (CLI ``engine --explain``)."""
        lines = [
            f"plan {self.fingerprint.digest}",
            f"  class:    {self.fingerprint.text}",
            f"  problem:  {self.fingerprint.raw_text}",
            f"  renaming: {self.form.describe_renaming() or '(none)'}",
            f"  verdict:  {self.classification.verdict.value}",
            f"  backend:  {self.backend}",
            f"  matched:  {self.recognition.evidence or '(no evidence)'}",
            f"  compile:  {self.construction_seconds * 1e3:.2f} ms",
        ]
        if self.sql is not None:
            lines.append("  sql:      " + self.sql.replace("\n", " "))
        snap = self.metrics.snapshot()
        if snap.evaluations:
            lines.append(
                f"  executed: {snap.evaluations} evaluations in "
                f"{snap.total_seconds * 1e3:.2f} ms"
                f" ({self.spellings} spelling(s))"
            )
        return "\n".join(lines)


def compile_plan(
    query: ConjunctiveQuery | Problem | None = None,
    fks: ForeignKeySet | None = None,
    fo_backend: str = "memory",
    fingerprint: Fingerprint | None = None,
    registry: BackendRegistry | None = None,
    form: CanonicalForm | None = None,
    sat_fallback: bool = False,
) -> CertaintyPlan:
    """Canonicalize, classify and recognize a problem, paying all per-class
    cost now.

    Accepts a :class:`~repro.api.Problem`, the historical ``(query, fks)``
    pair, or a pre-computed :class:`CanonicalForm` (the engine passes the
    form it keyed the cache with, avoiding re-canonicalization).  The
    returned plan's solver is built **against the canonical spelling**;
    its default instance transport is the compiling spelling's.
    """
    from .registry import default_registry

    if form is None:
        if query is None:
            raise TypeError("compile_plan needs a problem or a form")
        form = canonicalize(as_problem(query, fks))
    start = time.perf_counter()
    classification = form.classification
    options = RouteOptions(fo_backend=fo_backend, sat_fallback=sat_fallback)
    recognition = (registry or default_registry()).recognize(form, options)
    solver = recognition.factory()
    plan = CertaintyPlan(
        fingerprint=fingerprint or form.fingerprint,
        problem=form.problem,
        form=form,
        classification=classification,
        recognition=recognition,
        solver=solver,
        construction_seconds=time.perf_counter() - start,
    )
    plan.note_spelling(form.fingerprint.raw)
    log_event(
        _logger, logging.DEBUG, "plan.compile",
        fingerprint=plan.fingerprint.digest,
        backend=plan.backend,
        verdict=plan.classification.verdict.name,
        compile_ms=round(plan.construction_seconds * 1e3, 3),
    )
    return plan
