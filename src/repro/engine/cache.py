"""The LRU plan cache.

Keys are problem fingerprints (:mod:`repro.engine.fingerprint`), stored by
their **class digest**: two renaming-isomorphic spellings carry distinct
:class:`Fingerprint` values (their raw halves differ) but the same class
digest, so they hit the same entry and share one compiled plan.  A hit
skips classification, recognition and rewriting construction entirely —
the point of the engine.  The cache is thread-safe; compilation happens
outside the lock so a slow build never blocks hits on other problems (two
racing builders of the same class both compile; the first insertion wins).
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from ..obs.log import get_logger, log_event
from .fingerprint import Fingerprint
from .plan import CertaintyPlan

_logger = get_logger("engine.cache")


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Counters of one cache's lifetime."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float | None:
        total = self.hits + self.misses
        if total == 0:
            return None
        return self.hits / total


def _key(fingerprint: Fingerprint | str) -> str:
    """The cache key: the class digest (accepts a bare digest string)."""
    if isinstance(fingerprint, Fingerprint):
        return fingerprint.digest
    return fingerprint


class PlanCache:
    """A bounded LRU mapping of class digests to compiled plans."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._plans: OrderedDict[str, CertaintyPlan] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get_or_build(
        self,
        fingerprint: Fingerprint | str,
        build: Callable[[], CertaintyPlan],
    ) -> CertaintyPlan:
        """The cached plan for *fingerprint*, compiling via *build* on miss."""
        return self.entry(fingerprint, build)[0]

    def entry(
        self,
        fingerprint: Fingerprint | str,
        build: Callable[[], CertaintyPlan],
    ) -> tuple[CertaintyPlan, bool]:
        """Like :meth:`get_or_build`, plus whether the lookup was a hit.

        The flag feeds :class:`~repro.api.Decision` provenance; a racing
        builder that loses the insertion race still reports a miss (it did
        compile).
        """
        key = _key(fingerprint)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._hits += 1
                self._plans.move_to_end(key)
                return plan, True
            self._misses += 1
        built = build()  # outside the lock: don't block unrelated hits
        evicted: list[CertaintyPlan] = []
        with self._lock:
            winner = self._plans.get(key)
            if winner is not None:
                result = winner  # a racing builder inserted first
                evicted.append(built)  # the loser's solver is never used
            else:
                self._plans[key] = built
                result = built
                while len(self._plans) > self._capacity:
                    _, old = self._plans.popitem(last=False)
                    self._evictions += 1
                    evicted.append(old)
                    log_event(
                        _logger, logging.DEBUG, "plan.evict",
                        fingerprint=old.fingerprint.digest,
                        backend=old.backend,
                        capacity=self._capacity,
                    )
        for plan in evicted:  # outside the lock: close may do real work
            plan.close()
        return result, False

    def peek(self, fingerprint: Fingerprint | str) -> CertaintyPlan | None:
        """The cached plan without affecting order or counters."""
        with self._lock:
            return self._plans.get(_key(fingerprint))

    def plans(self) -> list[CertaintyPlan]:
        """All cached plans, least recently used first."""
        with self._lock:
            return list(self._plans.values())

    def clear(self) -> None:
        """Drop every cached plan, closing each prepared solver."""
        with self._lock:
            dropped = list(self._plans.values())
            self._plans.clear()
        for plan in dropped:
            plan.close()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._plans),
                capacity=self._capacity,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, fingerprint: Fingerprint | str) -> bool:
        with self._lock:
            return _key(fingerprint) in self._plans
