"""Batch execution of one plan over many instances.

The executor amortizes a compiled plan across an instance stream with a
configurable execution mode:

* ``serial`` — a plain loop, no pool overhead (the default; right for the
  microsecond-scale FO evaluations);
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; useful
  when the backend releases the GIL (the SQLite backend) or does I/O;
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`; true
  parallelism for CPU-bound backends, at pickling cost (solver and
  instances are value objects and pickle cleanly).

Per-call latencies are recorded serially; pooled modes record one aggregate
sample per batch on the plan's metrics (child processes cannot update the
parent's counters).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..db.instance import DatabaseInstance
from ..solvers.base import CertaintySolver
from .plan import CertaintyPlan

_MODES = ("serial", "thread", "process")


@dataclass(frozen=True, slots=True)
class ExecutorConfig:
    """Knobs of the batch executor."""

    mode: str = "serial"
    max_workers: int | None = None
    chunksize: int = 8

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown executor mode {self.mode!r} (expected one of {_MODES})"
            )
        if self.chunksize < 1:
            raise ValueError(f"chunksize must be positive, got {self.chunksize}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(
                f"max_workers must be a positive integer or None "
                f"(auto), got {self.max_workers}"
            )


@dataclass(frozen=True)
class BatchResult:
    """Answers plus timing of one batch run."""

    answers: tuple[bool, ...]
    elapsed_seconds: float
    mode: str
    backend: str

    @property
    def size(self) -> int:
        return len(self.answers)

    @property
    def certain_count(self) -> int:
        return sum(self.answers)

    @property
    def per_second(self) -> float | None:
        if self.elapsed_seconds <= 0 or not self.answers:
            return None
        return len(self.answers) / self.elapsed_seconds


# The per-process solver, installed once by the pool initializer so that a
# batch of n instances pickles the compiled solver once per worker rather
# than once per task.
_WORKER_SOLVER: CertaintySolver | None = None


def _install_worker_solver(solver: CertaintySolver) -> None:
    global _WORKER_SOLVER
    _WORKER_SOLVER = solver


def _decide_in_worker(db: DatabaseInstance) -> bool:
    assert _WORKER_SOLVER is not None, "pool initializer did not run"
    return _WORKER_SOLVER.decide(db)


class BatchExecutor:
    """Evaluate one compiled plan over many instances."""

    def __init__(self, config: ExecutorConfig | None = None):
        self.config = config or ExecutorConfig()

    def run(
        self, plan: CertaintyPlan, dbs: Iterable[DatabaseInstance]
    ) -> BatchResult:
        """All certain answers of *plan* over *dbs*, in input order.

        The result's ``mode`` reports what actually executed: batches of at
        most one instance short-circuit to serial regardless of the
        configured pool.

        Instances must already be in the plan's canonical spelling — the
        engine's :meth:`~repro.engine.CertaintyEngine.run_batch` transports
        them before handing over, so pooled workers never re-rename.
        """
        instances: Sequence[DatabaseInstance] = list(dbs)
        serial = self.config.mode == "serial" or len(instances) <= 1
        start = time.perf_counter()
        if serial:
            answers = plan.decide_many_canonical(instances)  # per-call stats
        else:
            answers = self._pooled(plan, instances)
        elapsed = time.perf_counter() - start
        if not serial:
            plan.metrics.record(elapsed, evaluations=len(instances))
        return BatchResult(
            answers=tuple(answers),
            elapsed_seconds=elapsed,
            mode="serial" if serial else self.config.mode,
            backend=plan.backend,
        )

    def _pooled(
        self, plan: CertaintyPlan, instances: Sequence[DatabaseInstance]
    ) -> list[bool]:
        if self.config.mode == "thread":
            with ThreadPoolExecutor(self.config.max_workers) as pool:
                return list(pool.map(plan.solver.decide, instances))
        with ProcessPoolExecutor(
            max_workers=self.config.max_workers,
            initializer=_install_worker_solver,
            initargs=(plan.solver,),
        ) as pool:
            return list(
                pool.map(
                    _decide_in_worker, instances,
                    chunksize=self.config.chunksize,
                )
            )
