"""The pluggable backend registry: name → solver factory, with priorities.

Routing used to be a hard-coded ``if``-chain in :mod:`repro.engine.router`;
the registry turns it into data so that new polynomial-island recognizers
and alternative SQL engines register declaratively::

    registry = default_registry().copy()
    registry.register(BackendSpec(
        name="my-island",
        priority=60,                      # beats the exhaustive fallbacks
        supports=lambda cls, opts: my_matcher(cls.query, cls.fks),
        factory=lambda cls, opts: MyPreparedSolver(cls.query, cls.fks),
    ))
    session = Session(EngineConfig(registry=registry))

Selection walks the registered specs by descending ``priority`` (ties
broken by registration order) and picks the first whose ``supports``
predicate accepts the classified problem; its ``factory`` then *prepares*
the solver — pays all per-problem construction cost and returns an object
with ``decide(db)``/``close()``.  The built-in trichotomy backends are
registered by :mod:`repro.engine.router` into :func:`default_registry`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..exceptions import BackendRegistryError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.classify import Classification
    from ..solvers.base import CertaintySolver


@dataclass(frozen=True, slots=True)
class RouteOptions:
    """Per-engine routing knobs threaded into predicates and factories."""

    fo_backend: str = "memory"  # or "sql"

    def __post_init__(self) -> None:
        if self.fo_backend not in ("memory", "sql"):
            raise ValueError(
                f"unknown fo_backend {self.fo_backend!r} "
                "(expected 'memory' or 'sql')"
            )


@dataclass(frozen=True)
class BackendSpec:
    """One registered decision backend.

    ``supports(classification, options)`` says whether this backend can
    decide the classified problem; ``factory(classification, options)``
    prepares its solver.  ``polynomial`` documents per-instance cost (the
    exhaustive fallbacks are the only non-polynomial built-ins).
    """

    name: str
    factory: "Callable[[Classification, RouteOptions], CertaintySolver]"
    supports: "Callable[[Classification, RouteOptions], bool]"
    priority: int = 0
    polynomial: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise BackendRegistryError("backend name must be non-empty")


class BackendRegistry:
    """A thread-safe, priority-ordered collection of :class:`BackendSpec`s."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._specs: dict[str, BackendSpec] = {}
        self._order: dict[str, int] = {}
        self._counter = 0

    def register(self, spec: BackendSpec, *, override: bool = False) -> BackendSpec:
        """Add *spec*; re-registering a name requires ``override=True``.

        An override keeps the original registration order slot, so a
        replacement backend inherits its predecessor's tie-breaking rank.
        Returns the spec so it can be used as a decorator-style helper.
        """
        with self._lock:
            if spec.name in self._specs and not override:
                raise BackendRegistryError(
                    f"backend {spec.name!r} is already registered "
                    "(pass override=True to replace it)"
                )
            if spec.name not in self._order:
                self._order[spec.name] = self._counter
                self._counter += 1
            self._specs[spec.name] = spec
            return spec

    def unregister(self, name: str) -> BackendSpec:
        """Remove and return the spec registered under *name*."""
        with self._lock:
            try:
                self._order.pop(name, None)
                return self._specs.pop(name)
            except KeyError:
                raise BackendRegistryError(
                    f"backend {name!r} is not registered"
                ) from None

    def get(self, name: str) -> BackendSpec:
        with self._lock:
            try:
                return self._specs[name]
            except KeyError:
                raise BackendRegistryError(
                    f"backend {name!r} is not registered"
                ) from None

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._specs

    def __len__(self) -> int:
        with self._lock:
            return len(self._specs)

    def specs(self) -> list[BackendSpec]:
        """All specs in selection order (priority desc, registration asc)."""
        with self._lock:
            return sorted(
                self._specs.values(),
                key=lambda s: (-s.priority, self._order[s.name]),
            )

    def names(self) -> list[str]:
        return [spec.name for spec in self.specs()]

    def select(
        self, classification: "Classification", options: RouteOptions
    ) -> BackendSpec:
        """The highest-priority spec whose predicate accepts the problem."""
        for spec in self.specs():
            if spec.supports(classification, options):
                return spec
        raise BackendRegistryError(
            f"no registered backend supports "
            f"CERTAINTY({classification.query!r}, {classification.fks!r})"
        )

    def copy(self) -> "BackendRegistry":
        """An independent registry with the same specs and ordering."""
        clone = BackendRegistry()
        for spec in self.specs():
            clone.register(spec)
        return clone

    def __repr__(self) -> str:
        return f"BackendRegistry({', '.join(self.names())})"


_default_registry: BackendRegistry | None = None
_default_lock = threading.Lock()


def default_registry() -> BackendRegistry:
    """The process-wide registry pre-populated with the built-in backends.

    Engines/sessions use it unless their config carries a custom registry.
    Mutating it (registering a new island recognizer) affects every engine
    built afterwards; use :meth:`BackendRegistry.copy` for local overrides.
    """
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            from .router import register_builtin_backends

            registry = BackendRegistry()
            register_builtin_backends(registry)
            _default_registry = registry
        return _default_registry
