"""The pluggable backend registry: recognizers over canonical classes.

Routing is a two-stage **recognize → transport** pipeline since the
canonical-class redesign.  A backend registers a *recognizer* that inspects
a :class:`~repro.engine.canonical.CanonicalForm` — the problem
canonicalized up to relation renaming — and either declines (``None``) or
returns a :class:`Recognition`: the island verdict's evidence, and a
zero-argument plan factory that builds the prepared solver **against the
canonical form**.  Instances are renamed into the canonical spelling on
the way in (the transport half lives in the engine/session), so one
prepared plan serves every isomorphic spelling::

    registry = default_registry().copy()

    def recognize(form, options):
        binding = my_matcher(form.problem.query, form.problem.fks)
        if binding is None:
            return None
        return Recognition(
            factory=lambda: MyPreparedSolver(*binding),
            evidence=f"matched my island with {binding}",
        )

    registry.register(BackendSpec(
        name="my-island",
        priority=60,                      # beats the exhaustive fallbacks
        recognize=recognize,
    ))

Selection walks the registered specs by descending ``priority`` (ties
broken by registration order) and takes the first recognition.

**Deprecation shim**: pre-redesign specs carrying a boolean ``supports``
predicate plus a ``factory`` over the classification keep working — the
registry wraps them into a recognizer that feeds both callables the
classification **spelled like the request** and renames canonical
instances back before the solver decides, so even predicates matching
literal relation names behave as before.  One caveat of class-shared
plans: a name-sensitive predicate makes recognition spelling-dependent,
so whichever spelling of a class compiles first picks the backend its
twins ride (answers are unaffected); migrate to ``recognize`` for
spelling-invariant routing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from ..exceptions import BackendRegistryError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.classify import Classification
    from ..solvers.base import CertaintySolver
    from .canonical import CanonicalForm

_FO_BACKENDS = ("memory", "sql", "duckdb")


@dataclass(frozen=True, slots=True)
class RouteOptions:
    """Per-engine routing knobs threaded into recognizers and factories."""

    fo_backend: str = "memory"  # or "sql" / "duckdb"
    #: Opt-in: route the coNP-hard FK = ∅ residue to the falsifying-repair
    #: CNF solver (``sat-repairs``) instead of subset-repair enumeration.
    sat_fallback: bool = False

    def __post_init__(self) -> None:
        if self.fo_backend not in _FO_BACKENDS:
            raise ValueError(
                f"unknown fo_backend {self.fo_backend!r} "
                f"(expected one of {_FO_BACKENDS})"
            )
        if self.fo_backend == "duckdb":
            from ..solvers.rewriting_solver import duckdb_dialect

            # fail loudly here: with no fo-duckdb spec registered, an FO
            # problem would otherwise fall through to the exponential
            # ⊕-oracle fallback without a word
            if duckdb_dialect() is None:
                raise ValueError(
                    "fo_backend 'duckdb' needs the duckdb package, which "
                    "is not importable in this environment"
                )


@dataclass(frozen=True)
class Recognition:
    """A backend's positive verdict on one canonical problem class.

    ``factory`` is zero-argument and already bound to the canonical form:
    calling it *prepares* the solver (pays all per-class construction
    cost).  ``evidence`` is the human-readable reason the recognizer
    matched — surfaced by ``repro engine --explain``.  ``backend``,
    ``priority`` and ``polynomial`` are filled in from the winning spec by
    the registry; recognizers may leave them at their defaults.
    """

    factory: "Callable[[], CertaintySolver]"
    evidence: str = ""
    backend: str = ""
    priority: int = 0
    polynomial: bool = True


@dataclass(frozen=True)
class BackendSpec:
    """One registered decision backend.

    New-style specs provide ``recognize(form, options) -> Recognition |
    None``; legacy specs provide ``supports(classification, options) ->
    bool`` plus ``factory(classification, options) -> solver`` and are
    shimmed (see the module docstring).  ``polynomial`` documents
    per-instance cost (the exhaustive fallbacks are the only
    non-polynomial built-ins).
    """

    name: str
    recognize: (
        "Callable[[CanonicalForm, RouteOptions], Recognition | None] | None"
    ) = None
    factory: (
        "Callable[[Classification, RouteOptions], CertaintySolver] | None"
    ) = None
    supports: (
        "Callable[[Classification, RouteOptions], bool] | None"
    ) = None
    priority: int = 0
    polynomial: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise BackendRegistryError("backend name must be non-empty")
        if self.recognize is None and (
            self.supports is None or self.factory is None
        ):
            raise BackendRegistryError(
                f"backend {self.name!r} must provide either a recognizer "
                "or the legacy supports+factory pair"
            )

    def recognition(
        self, form: "CanonicalForm", options: RouteOptions
    ) -> Recognition | None:
        """This spec's verdict on *form*, legacy shim included.

        Legacy ``supports`` predicates receive the classification spelled
        like the *request* (``form.source_classification``), so predicates
        matching literal relation names keep working; the legacy factory
        builds against the same spelling and is wrapped to rename each
        canonical instance back before deciding.  Note that name-sensitive
        predicates make recognition spelling-dependent while plans stay
        shared per class: whichever spelling compiles first picks the
        backend for its twins (answers are unaffected).
        """
        if self.recognize is not None:
            outcome = self.recognize(form, options)
        elif self.supports(form.source_classification, options):

            def build():
                from .canonical import RenamingSolver

                solver = self.factory(form.source_classification, options)
                # the engine hands this plan canonical instances; rename
                # them back into the spelling the solver was built for
                return RenamingSolver(solver, form.inverse)

            outcome = Recognition(
                factory=build,
                evidence="legacy predicate accepted the classified problem",
            )
        else:
            outcome = None
        if outcome is None:
            return None
        return replace(
            outcome,
            backend=self.name,
            priority=self.priority,
            polynomial=self.polynomial,
        )


def _form_of(classification: "Classification") -> "CanonicalForm":
    from ..api.problem import Problem
    from .canonical import canonicalize

    return canonicalize(Problem(classification.query, classification.fks))


class _LegacySupports:
    """``supports(classification, options)`` synthesized for a
    recognize-only spec (see :meth:`BackendRegistry.select`)."""

    def __init__(self, spec: "BackendSpec"):
        self._spec = spec

    def __call__(self, classification, options) -> bool:
        return (
            self._spec.recognition(_form_of(classification), options)
            is not None
        )


class _LegacyFactory:
    """``factory(classification, options)`` synthesized for a
    recognize-only spec: prepares against the canonical spelling and wraps
    the solver so raw-spelling instances keep working."""

    def __init__(self, spec: "BackendSpec"):
        self._spec = spec

    def __call__(self, classification, options):
        from .canonical import TransportingSolver

        form = _form_of(classification)
        recognition = self._spec.recognition(form, options)
        if recognition is None:
            raise BackendRegistryError(
                f"backend {self._spec.name!r} does not recognize "
                f"CERTAINTY({classification.query!r}, "
                f"{classification.fks!r})"
            )
        return TransportingSolver(recognition.factory(), form)


class BackendRegistry:
    """A thread-safe, priority-ordered collection of :class:`BackendSpec`s."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._specs: dict[str, BackendSpec] = {}
        self._order: dict[str, int] = {}
        self._counter = 0

    def register(self, spec: BackendSpec, *, override: bool = False) -> BackendSpec:
        """Add *spec*; re-registering a name requires ``override=True``.

        An override keeps the original registration order slot, so a
        replacement backend inherits its predecessor's tie-breaking rank.
        Returns the spec so it can be used as a decorator-style helper.
        """
        with self._lock:
            if spec.name in self._specs and not override:
                raise BackendRegistryError(
                    f"backend {spec.name!r} is already registered "
                    "(pass override=True to replace it)"
                )
            if spec.name not in self._order:
                self._order[spec.name] = self._counter
                self._counter += 1
            self._specs[spec.name] = spec
            return spec

    def unregister(self, name: str) -> BackendSpec:
        """Remove and return the spec registered under *name*."""
        with self._lock:
            try:
                self._order.pop(name, None)
                return self._specs.pop(name)
            except KeyError:
                raise BackendRegistryError(
                    f"backend {name!r} is not registered"
                ) from None

    def get(self, name: str) -> BackendSpec:
        with self._lock:
            try:
                return self._specs[name]
            except KeyError:
                raise BackendRegistryError(
                    f"backend {name!r} is not registered"
                ) from None

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._specs

    def __len__(self) -> int:
        with self._lock:
            return len(self._specs)

    def specs(self) -> list[BackendSpec]:
        """All specs in selection order (priority desc, registration asc)."""
        with self._lock:
            return sorted(
                self._specs.values(),
                key=lambda s: (-s.priority, self._order[s.name]),
            )

    def names(self) -> list[str]:
        return [spec.name for spec in self.specs()]

    def recognize(
        self, form: "CanonicalForm", options: RouteOptions
    ) -> Recognition:
        """The highest-priority recognition of the canonical class.

        The heart of the recognize → transport pipeline: the returned
        recognition's factory prepares a solver against ``form.problem``;
        callers transport instances through ``form`` when executing it.
        """
        for spec in self.specs():
            recognition = spec.recognition(form, options)
            if recognition is not None:
                return recognition
        raise BackendRegistryError(
            f"no registered backend recognizes the problem class "
            f"{form.fingerprint.digest} ({form.fingerprint.text})"
        )

    def select(
        self, classification: "Classification", options: RouteOptions
    ) -> BackendSpec:
        """The winning spec for a classified problem (legacy entry point).

        Canonicalizes ``(query, fks)`` behind the scenes and runs the
        recognizer pipeline; prefer :meth:`recognize` in new code — it
        hands back the bound factory too.  Recognize-only specs come back
        with synthesized ``supports``/``factory`` callables, so the
        pre-redesign pattern ``spec.factory(classification, options)``
        keeps working: the synthesized factory canonicalizes, prepares the
        solver against the canonical spelling, and wraps it in a
        :class:`~repro.engine.canonical.TransportingSolver` so callers
        keep passing instances in their own spelling.
        """
        form = _form_of(classification)
        for spec in self.specs():
            if spec.recognition(form, options) is not None:
                if spec.factory is not None:
                    return spec
                return replace(
                    spec,
                    supports=_LegacySupports(spec),
                    factory=_LegacyFactory(spec),
                )
        raise BackendRegistryError(
            f"no registered backend supports "
            f"CERTAINTY({classification.query!r}, {classification.fks!r})"
        )

    def copy(self) -> "BackendRegistry":
        """An independent registry with the same specs and ordering."""
        clone = BackendRegistry()
        for spec in self.specs():
            clone.register(spec)
        return clone

    def __repr__(self) -> str:
        return f"BackendRegistry({', '.join(self.names())})"


_default_registry: BackendRegistry | None = None
_default_lock = threading.Lock()


def default_registry() -> BackendRegistry:
    """The process-wide registry pre-populated with the built-in backends.

    Engines/sessions use it unless their config carries a custom registry.
    Mutating it (registering a new island recognizer) affects every engine
    built afterwards; use :meth:`BackendRegistry.copy` for local overrides.
    """
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            from .router import register_builtin_backends

            registry = BackendRegistry()
            register_builtin_backends(registry)
            _default_registry = registry
        return _default_registry
