"""repro.engine — plan-caching, auto-routing certainty engine.

The production-facing layer over the reproduction: compile a
``CERTAINTY(q, FK)`` problem once into a :class:`CertaintyPlan` (Theorem 12
classification + registry-based backend routing + prepared-solver
construction), cache plans by canonical problem fingerprint, and amortize
each plan over arbitrarily many instances with serial, thread-pool, or
process-pool batch execution and per-plan metrics.

Most callers should use the :class:`repro.api.Session` facade on top of
this engine; direct use::

    from repro.engine import CertaintyEngine

    with CertaintyEngine() as engine:
        answer = engine.decide(query, fks, db)          # plan cached
        batch = engine.decide_batch(query, fks, dbs)    # one plan, many dbs
        print(engine.explain(query, fks))               # backend provenance

Backends are pluggable: see :class:`~repro.engine.registry.BackendRegistry`
and the built-in specs in :mod:`repro.engine.router`.
"""

from .cache import CacheStats, PlanCache
from .canonical import (
    CanonicalForm,
    RenamingSolver,
    TransportingSolver,
    canonicalize,
    class_encoding,
    rename_instance,
    rename_problem,
)
from .engine import (
    BackendReport,
    CertaintyEngine,
    EngineConfig,
    EngineSolver,
    EngineStats,
    PlanReport,
    TierReport,
    merge_engine_stats,
    prom_exposition,
)
from .executor import BatchExecutor, BatchResult, ExecutorConfig
from .fingerprint import (
    Fingerprint,
    canonical_atoms,
    problem_fingerprint,
    raw_encoding,
)
from .metrics import (
    LATENCY_BUCKET_BOUNDS,
    MetricsSnapshot,
    PlanMetrics,
    bucket_labels,
    merge_histograms,
    merge_snapshots,
)
from .plan import CertaintyPlan, compile_plan
from .registry import (
    BackendRegistry,
    BackendSpec,
    Recognition,
    RouteOptions,
    default_registry,
)
from .router import (
    BUILTIN_BACKENDS,
    Backend,
    duckdb_backend_spec,
    match_dual_horn_island,
    matches_proposition16,
    matches_proposition17,
    register_builtin_backends,
    select_backend,
)

__all__ = [
    "BUILTIN_BACKENDS", "Backend", "BackendRegistry", "BackendReport",
    "BackendSpec", "BatchExecutor", "BatchResult", "CacheStats",
    "CanonicalForm", "CertaintyEngine", "CertaintyPlan", "EngineConfig",
    "EngineSolver", "EngineStats", "ExecutorConfig", "Fingerprint",
    "LATENCY_BUCKET_BOUNDS", "MetricsSnapshot", "PlanCache", "PlanMetrics",
    "PlanReport", "Recognition", "RenamingSolver", "RouteOptions",
    "TierReport", "TransportingSolver",
    "bucket_labels", "canonical_atoms", "canonicalize", "class_encoding",
    "compile_plan", "default_registry", "duckdb_backend_spec",
    "match_dual_horn_island", "matches_proposition16",
    "matches_proposition17", "merge_engine_stats", "merge_histograms",
    "merge_snapshots", "problem_fingerprint",
    "prom_exposition", "raw_encoding", "register_builtin_backends",
    "rename_instance", "rename_problem", "select_backend",
]
