"""repro.engine — plan-caching, auto-routing certainty engine.

The production-facing layer over the reproduction: compile a
``CERTAINTY(q, FK)`` problem once into a :class:`CertaintyPlan` (Theorem 12
classification + cheapest-backend routing + rewriting/SQL construction),
cache plans by canonical problem fingerprint, and amortize each plan over
arbitrarily many instances with serial, thread-pool, or process-pool batch
execution and per-plan metrics.

Quick use::

    from repro.engine import CertaintyEngine

    engine = CertaintyEngine()
    answer = engine.decide(query, fks, db)          # plan cached
    batch = engine.decide_batch(query, fks, dbs)    # one plan, many instances
    print(engine.explain(query, fks))               # backend provenance
"""

from .cache import CacheStats, PlanCache
from .engine import (
    CertaintyEngine,
    EngineConfig,
    EngineSolver,
    EngineStats,
    PlanReport,
)
from .executor import BatchExecutor, BatchResult, ExecutorConfig
from .fingerprint import Fingerprint, canonical_atoms, problem_fingerprint
from .metrics import MetricsSnapshot, PlanMetrics
from .plan import CertaintyPlan, compile_plan
from .router import (
    Backend,
    matches_proposition16,
    matches_proposition17,
    select_backend,
)

__all__ = [
    "Backend", "BatchExecutor", "BatchResult", "CacheStats", "CertaintyEngine",
    "CertaintyPlan", "EngineConfig", "EngineSolver", "EngineStats",
    "ExecutorConfig", "Fingerprint", "MetricsSnapshot", "PlanCache",
    "PlanMetrics", "PlanReport", "canonical_atoms", "compile_plan",
    "matches_proposition16", "matches_proposition17", "problem_fingerprint",
    "select_backend",
]
