"""Synthetic request populations for the load harness.

A load run needs a *population* of requests matching serving reality:

* a handful of problem **classes** (drawn through
  :func:`repro.workloads.streams.mixed_problem_stream`, so all three
  trichotomy regimes plus the pinned Proposition 16/17 problems appear)
  with **zipfian popularity** — class at popularity rank *r* drawn with
  weight ``1 / (r + 1)**s``, the skew every production trace shows and
  the reason the plan cache and class-digest sharding pay off;
* **multi-tenant** mixes: tenant *t*'s popularity ranking is the base
  ranking rotated by *t* hotset offsets, so tenants are hot on
  *different* classes (uniform tenant traffic over shared-hot classes
  would be the easy case for a shared cache);
* an **instance-size distribution**: each request carries a fresh-ish
  instance drawn from per-``(class, size)`` pools, sizes weighted by
  ``instance_size_weights`` — a long tail of big instances is what
  pushes oracle-tier latency around.

The whole population and every draw are deterministic in
``profile.seed``: two runs of the same profile offer byte-identical
request sequences, so A/B comparisons (admission on vs off, 1 worker
vs autoscaled) differ only in the server under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..api.problem import Problem
from ..db.instance import DatabaseInstance
from ..obs.slo import tier_for
from ..workloads.graphs import proposition16_instance
from ..workloads.random_instances import (
    RandomInstanceParams,
    random_instances_for_query,
)
from ..workloads.streams import StreamParams, mixed_problem_stream
from .profile import LoadProfile

#: Instances pre-drawn per (class, size) pool; requests cycle over them.
_POOL_DEPTH = 2


@dataclass(frozen=True)
class LoadRequest:
    """One scheduled request: who sends what."""

    tenant: int
    label: str  # problem-class label (stream label)
    tier: str  # expected SLO tier (from the recognizer verdict)
    size: int  # instance size (blocks per relation)
    problem: Problem
    db: DatabaseInstance


def zipf_weights(n: int, s: float) -> list[float]:
    """Normalized zipfian weights for *n* ranks (``s=0`` is uniform)."""
    if n < 1:
        raise ValueError(f"need at least one rank, got {n}")
    raw = [1.0 / (rank + 1) ** s for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


class SyntheticWorkload:
    """The pre-drawn request population of one :class:`LoadProfile`."""

    def __init__(self, profile: LoadProfile):
        self.profile = profile
        self._rng = random.Random(profile.seed ^ 0x5EED10AD)
        self._classes = self._synthesize_classes(profile)
        self._weights = zipf_weights(len(self._classes), profile.zipf_s)
        # tenant t draws from the base ranking rotated by t offsets, so
        # each tenant's hotset leads with a different class
        offset = max(1, len(self._classes) // profile.tenants)
        self._tenant_rankings = [
            [
                self._classes[(rank + tenant * offset) % len(self._classes)]
                for rank in range(len(self._classes))
            ]
            for tenant in range(profile.tenants)
        ]

    def _synthesize_classes(self, profile: LoadProfile):
        """Problem classes plus per-size instance pools.

        Returns ``[(label, tier, problem, {size: [instances]}), ...]``.
        The stream's own instances are discarded — pools are re-drawn
        per configured size so the size distribution is the profile's,
        not the stream default's.
        """
        stream = mixed_problem_stream(
            StreamParams(
                n_problems=profile.n_classes,
                instances_per_problem=1,
                seed=profile.seed,
            )
        )
        classes = []
        for item in stream:
            pools: dict[int, list[DatabaseInstance]] = {}
            for size in profile.instance_sizes:
                if item.label == "prop16":
                    pools[size] = [
                        proposition16_instance(
                            2 + size, self._rng, marked_fraction=0.5
                        )
                        for _ in range(_POOL_DEPTH)
                    ]
                else:
                    pools[size] = list(
                        random_instances_for_query(
                            item.query,
                            item.fks,
                            _POOL_DEPTH,
                            seed=self._rng.randrange(2**32),
                            params=RandomInstanceParams(
                                blocks_per_relation=size,
                                max_block_size=3,
                                domain_size=2 * size + 2,
                            ),
                        )
                    )
            # expected tier: the pinned islands are their backends;
            # everything else bins by recognizer verdict alone
            if item.label == "prop16":
                tier = "p16"
            elif item.label == "prop17":
                tier = "p17"
            else:
                tier = tier_for(item.verdict.name, "")
            classes.append((item.label, tier, item.problem, pools))
        return classes

    @property
    def class_labels(self) -> list[str]:
        return [label for label, _, _, _ in self._classes]

    def draw(self) -> LoadRequest:
        """One weighted request draw (deterministic in construction
        order — the harness draws exactly once per arrival)."""
        rng = self._rng
        tenant = rng.randrange(self.profile.tenants)
        ranking = self._tenant_rankings[tenant]
        label, tier, problem, pools = rng.choices(
            ranking, weights=self._weights
        )[0]
        size = rng.choices(
            self.profile.instance_sizes,
            weights=self.profile.instance_size_weights,
        )[0]
        return LoadRequest(
            tenant=tenant,
            label=label,
            tier=tier,
            size=size,
            problem=problem,
            db=rng.choice(pools[size]),
        )

    def plan(self, n: int) -> list[LoadRequest]:
        """The next *n* request draws as a list (one per arrival)."""
        return [self.draw() for _ in range(n)]
