"""Load profiles and open-loop arrival schedules.

The defining property of an **open-loop** generator is that arrival
times are fixed *before* the first request is sent: a slow server does
not slow the offered load down, it grows the server's queue — exactly
how traffic from millions of independent users behaves, and exactly
what a closed-loop bench (send, wait, send) can never show.  So this
module's output is a plain list of arrival offsets in seconds; the
harness replays them against the wall clock.

Three synthetic schedules (all inhomogeneous Poisson processes, drawn
with per-gap exponential sampling at the instantaneous rate):

``steady``
    constant rate — the calibration baseline;
``burst``
    constant rate with a ``burst_factor``× window in the middle
    (``burst_start``..``burst_end`` as fractions of the duration) — the
    overload experiment and the autoscaler's reason to exist;
``diurnal``
    a sinusoidal day: the rate swings between near-zero and ``2×`` the
    mean over ``diurnal_cycles`` cycles — the slow swell autoscaling
    should track without flapping.

Plus **recorded-trace replay**: :func:`arrivals_from_trace` reads a
span-sink JSON-lines file (``repro serve --span-log``, one
``Span.to_dict()`` per line), takes each trace's earliest span start as
its arrival instant, and returns the normalized offsets — production
traffic's own gaps, replayable at ``speed``×.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import ReproError

SCHEDULES = ("steady", "burst", "diurnal")


@dataclass(frozen=True)
class LoadProfile:
    """Knobs of one synthetic open-loop run."""

    duration_seconds: float = 5.0
    rate_rps: float = 50.0  # mean offered arrival rate
    schedule: str = "steady"  # one of SCHEDULES
    burst_factor: float = 4.0  # burst window rate multiplier
    burst_start: float = 0.4  # burst window, as fractions of the duration
    burst_end: float = 0.7
    diurnal_cycles: float = 1.0  # sine cycles across the duration
    n_classes: int = 8  # problem classes in the mix
    zipf_s: float = 1.1  # class-popularity exponent (0: uniform)
    tenants: int = 1  # tenants with rotated class hotsets
    instance_sizes: tuple[int, ...] = (2, 3, 5)  # blocks per relation
    instance_size_weights: tuple[float, ...] = (0.6, 0.3, 0.1)
    connections: int = 4  # client connections the harness spreads over
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ValueError(
                f"duration_seconds must be positive, got "
                f"{self.duration_seconds}"
            )
        if self.rate_rps <= 0:
            raise ValueError(
                f"rate_rps must be positive, got {self.rate_rps}"
            )
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; expected one of "
                f"{SCHEDULES}"
            )
        if self.burst_factor < 1:
            raise ValueError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if not 0 <= self.burst_start < self.burst_end <= 1:
            raise ValueError(
                f"need 0 <= burst_start < burst_end <= 1, got "
                f"[{self.burst_start}, {self.burst_end}]"
            )
        if self.n_classes < 1:
            raise ValueError(
                f"n_classes must be positive, got {self.n_classes}"
            )
        if self.zipf_s < 0:
            raise ValueError(
                f"zipf_s must be non-negative, got {self.zipf_s}"
            )
        if self.tenants < 1:
            raise ValueError(
                f"tenants must be positive, got {self.tenants}"
            )
        if not self.instance_sizes:
            raise ValueError("instance_sizes must not be empty")
        if any(size < 1 for size in self.instance_sizes):
            raise ValueError(
                f"instance_sizes must be positive, got "
                f"{self.instance_sizes}"
            )
        if len(self.instance_size_weights) != len(self.instance_sizes):
            raise ValueError(
                "instance_size_weights must match instance_sizes "
                f"({len(self.instance_size_weights)} != "
                f"{len(self.instance_sizes)})"
            )
        if any(w <= 0 for w in self.instance_size_weights):
            raise ValueError(
                f"instance_size_weights must be positive, got "
                f"{self.instance_size_weights}"
            )
        if self.connections < 1:
            raise ValueError(
                f"connections must be positive, got {self.connections}"
            )

    def rate_at(self, t: float) -> float:
        """The instantaneous arrival rate at offset *t* seconds."""
        if self.schedule == "steady":
            return self.rate_rps
        if self.schedule == "burst":
            fraction = t / self.duration_seconds
            if self.burst_start <= fraction < self.burst_end:
                return self.rate_rps * self.burst_factor
            return self.rate_rps
        # diurnal: mean-preserving sine in [~0, 2 * rate], starting at
        # the trough (the "overnight" lull) so the swell is visible even
        # in a single-cycle run
        phase = 2 * math.pi * self.diurnal_cycles * t / self.duration_seconds
        return self.rate_rps * (1.0 - math.cos(phase)) + 1e-9


def arrival_times(profile: LoadProfile) -> list[float]:
    """Open-loop arrival offsets in ``[0, duration)`` (sorted).

    An inhomogeneous Poisson draw: each inter-arrival gap is exponential
    at the *current* instantaneous rate — accurate when the rate changes
    slowly against the gap length, which every schedule here satisfies.
    Deterministic in ``profile.seed``.
    """
    rng = random.Random(profile.seed)
    arrivals: list[float] = []
    t = rng.expovariate(profile.rate_at(0.0))
    while t < profile.duration_seconds:
        arrivals.append(t)
        t += rng.expovariate(profile.rate_at(t))
    return arrivals


def arrivals_from_trace(
    path: str | Path, *, speed: float = 1.0
) -> list[float]:
    """Arrival offsets recovered from a span-sink JSON-lines file.

    Each line is one ``Span.to_dict()`` document (the ``repro serve
    --span-log`` format); a trace's arrival instant is its earliest
    span's ``start``.  Offsets are normalized to the first arrival and
    divided by *speed* (``speed=2`` replays twice as fast).  Lines that
    are not valid span documents are skipped — a live sink may have a
    torn final line.
    """
    if speed <= 0:
        raise ReproError(f"replay speed must be positive, got {speed}")
    starts: dict[str, float] = {}
    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ReproError(
            f"cannot read span log {str(path)!r}: {error}"
        ) from error
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            span = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail line of a live sink
        if not isinstance(span, dict):
            continue
        trace_id = span.get("trace_id")
        start = span.get("start")
        if not isinstance(trace_id, str) or not isinstance(
            start, (int, float)
        ):
            continue
        if trace_id not in starts or start < starts[trace_id]:
            starts[trace_id] = float(start)
    if not starts:
        raise ReproError(
            f"span log {str(path)!r} holds no replayable spans "
            "(need trace_id + start fields)"
        )
    base = min(starts.values())
    return sorted((start - base) / speed for start in starts.values())
