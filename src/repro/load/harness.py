"""The open-loop load harness: fire arrivals, account outcomes.

The runner replays a pre-computed arrival schedule against the wall
clock, firing each request as an independent task over a small pool of
pipelined :class:`~repro.serve.client.AsyncServeClient` connections and
**never waiting for a response before the next arrival** — the open
loop.  A server that falls behind sees its queue (or its shed counter)
grow; the harness keeps offering load on schedule either way.

Accounting reuses the serving stack's own SLO machinery, not a parallel
stats path: each completed ``decide``'s client-observed latency is
recorded into a per-tier :class:`~repro.engine.metrics.PlanMetrics`
(tier from :func:`repro.obs.slo.tier_for` on the decision's verdict and
backend), and :meth:`LoadReport.render` formats the result through
:func:`repro.obs.slo.format_slo_report` — the same table ``repro slo``
prints for the server side, so client-observed and server-observed
tiers line up column for column.

Outcome taxonomy:

``ok``
    a decision came back;
``overloaded``
    the server shed the request at admission (``overloaded`` envelope)
    — counted, *never* recorded as tier latency (a shed is not a slow
    answer, and folding it in would poison the percentiles);
``errors``
    any other envelope or transport failure;
``incomplete``
    still unanswered when the post-run drain window closed — the
    signature of an unbounded queue under overload.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from ..engine.metrics import MetricsSnapshot, PlanMetrics
from ..exceptions import RemoteError, ServeProtocolError
from ..obs.slo import format_slo_report, tier_for, tier_sort_key
from ..serve.backoff import BackoffPolicy
from ..serve.client import AsyncServeClient
from .profile import LoadProfile, arrival_times
from .workload import LoadRequest, SyntheticWorkload

__all__ = ["LoadReport", "run_loadgen", "run_loadgen_async"]


@dataclass(frozen=True)
class _TierRow:
    """Adapter matching ``format_slo_report``'s row protocol."""

    tier: str
    plans: int  # distinct problem classes observed in this tier
    metrics: MetricsSnapshot


@dataclass
class LoadReport:
    """What one load run offered and what came back."""

    schedule: str
    offered: int  # arrivals in the schedule
    sent: int
    ok: int
    overloaded: int
    errors: int
    incomplete: int
    duration_seconds: float  # first arrival to last settled response
    offered_rps: float
    retry_after_ms_max: int = 0  # largest overloaded-envelope hint seen
    tier_metrics: dict[str, MetricsSnapshot] = field(default_factory=dict)
    tier_classes: dict[str, int] = field(default_factory=dict)
    tenants: dict[str, int] = field(default_factory=dict)

    @property
    def completed_rps(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.ok / self.duration_seconds

    @property
    def shed_rate(self) -> float:
        return self.overloaded / self.sent if self.sent else 0.0

    def tier_rows(self) -> list[_TierRow]:
        return [
            _TierRow(
                tier=tier,
                plans=self.tier_classes.get(tier, 0),
                metrics=snapshot,
            )
            for tier, snapshot in sorted(
                self.tier_metrics.items(),
                key=lambda item: tier_sort_key(item[0]),
            )
        ]

    def render(self) -> str:
        """The human-facing run summary (the ``repro loadgen`` output)."""
        lines = [
            f"schedule={self.schedule} offered={self.offered} "
            f"({self.offered_rps:.1f} rps) sent={self.sent}",
            f"ok={self.ok} overloaded={self.overloaded} "
            f"errors={self.errors} incomplete={self.incomplete} "
            f"shed_rate={self.shed_rate:.1%} "
            f"completed={self.completed_rps:.1f} rps "
            f"in {self.duration_seconds:.2f}s",
            "",
            "client-observed latency by tier:",
            format_slo_report(self.tier_rows()),
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schedule": self.schedule,
            "offered": self.offered,
            "sent": self.sent,
            "ok": self.ok,
            "overloaded": self.overloaded,
            "errors": self.errors,
            "incomplete": self.incomplete,
            "duration_seconds": self.duration_seconds,
            "offered_rps": self.offered_rps,
            "retry_after_ms_max": self.retry_after_ms_max,
            "completed_rps": self.completed_rps,
            "shed_rate": self.shed_rate,
            "tenants": dict(self.tenants),
            "tiers": {
                tier: {
                    "classes": self.tier_classes.get(tier, 0),
                    **snapshot.to_dict(),
                }
                for tier, snapshot in self.tier_metrics.items()
            },
        }


class _Accounting:
    """Mutable run counters (single event loop — no locking)."""

    def __init__(self) -> None:
        self.ok = 0
        self.overloaded = 0
        self.retry_after_ms_max = 0
        self.errors = 0
        self.tier_metrics: dict[str, PlanMetrics] = {}
        self.tier_labels: dict[str, set[str]] = {}
        self.tenants: dict[str, int] = {}
        self.last_settled = 0.0

    def record_ok(
        self, request: LoadRequest, decision: dict, seconds: float
    ) -> None:
        self.ok += 1
        tier = tier_for(
            str(decision.get("verdict", "")),
            str(decision.get("backend", "")),
        )
        self.tier_metrics.setdefault(tier, PlanMetrics()).record(seconds)
        self.tier_labels.setdefault(tier, set()).add(request.label)
        key = f"tenant-{request.tenant}"
        self.tenants[key] = self.tenants.get(key, 0) + 1


async def _fire(
    client: AsyncServeClient,
    request: LoadRequest,
    accounting: _Accounting,
) -> None:
    started = time.monotonic()
    try:
        result = await client.decide(request.problem, request.db)
    except RemoteError as error:
        if error.code == "overloaded":
            accounting.overloaded += 1
            accounting.retry_after_ms_max = max(
                accounting.retry_after_ms_max,
                int(error.retry_after_ms or 0),
            )
        else:
            accounting.errors += 1
    except (OSError, ServeProtocolError, asyncio.IncompleteReadError):
        accounting.errors += 1
    else:
        accounting.record_ok(
            request, result.get("decision", {}), time.monotonic() - started
        )
    finally:
        accounting.last_settled = time.monotonic()


async def run_loadgen_async(
    host: str,
    port: int,
    profile: LoadProfile | None = None,
    *,
    arrivals: list[float] | None = None,
    workload: SyntheticWorkload | None = None,
    retries: int = 0,
    backoff: BackoffPolicy | None = None,
    drain_seconds: float = 10.0,
) -> LoadReport:
    """Offer one profile's load to ``host:port``; return the report.

    *arrivals* overrides the synthetic schedule (trace replay passes
    :func:`~repro.load.profile.arrivals_from_trace` output here).
    ``retries`` forwards to the client: with the default 0, every shed
    is reported as ``overloaded``; with retries the client backs off
    per the envelope's ``retry_after_ms`` and only terminal sheds
    count.  Responses still pending ``drain_seconds`` after the last
    arrival are cancelled and counted ``incomplete``.
    """
    profile = profile or LoadProfile()
    workload = workload or SyntheticWorkload(profile)
    if arrivals is None:
        arrivals = arrival_times(profile)
    requests = workload.plan(len(arrivals))
    accounting = _Accounting()
    clients = [
        await AsyncServeClient.connect(
            host, port, retries=retries, backoff=backoff
        )
        for _ in range(profile.connections)
    ]
    pending: set[asyncio.Task] = set()
    started = time.monotonic()
    accounting.last_settled = started
    sent = 0
    try:
        for index, (offset, request) in enumerate(zip(arrivals, requests)):
            delay = started + offset - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            task = asyncio.get_running_loop().create_task(
                _fire(clients[index % len(clients)], request, accounting)
            )
            pending.add(task)
            task.add_done_callback(pending.discard)
            sent += 1
        incomplete = 0
        if pending:
            done, still_pending = await asyncio.wait(
                set(pending), timeout=drain_seconds
            )
            incomplete = len(still_pending)
            for task in still_pending:
                task.cancel()
            if still_pending:
                await asyncio.gather(
                    *still_pending, return_exceptions=True
                )
    finally:
        for client in clients:
            await client.close()
    duration = max(accounting.last_settled - started, 1e-9)
    offered_rps = (
        len(arrivals) / max(arrivals[-1], 1e-9) if arrivals else 0.0
    )
    return LoadReport(
        schedule=profile.schedule,
        offered=len(arrivals),
        sent=sent,
        ok=accounting.ok,
        overloaded=accounting.overloaded,
        errors=accounting.errors,
        incomplete=incomplete,
        duration_seconds=duration,
        offered_rps=offered_rps,
        retry_after_ms_max=accounting.retry_after_ms_max,
        tier_metrics={
            tier: metrics.snapshot()
            for tier, metrics in accounting.tier_metrics.items()
        },
        tier_classes={
            tier: len(labels)
            for tier, labels in accounting.tier_labels.items()
        },
        tenants=dict(sorted(accounting.tenants.items())),
    )


def run_loadgen(
    host: str,
    port: int,
    profile: LoadProfile | None = None,
    **kwargs,
) -> LoadReport:
    """Synchronous wrapper around :func:`run_loadgen_async`."""
    return asyncio.run(run_loadgen_async(host, port, profile, **kwargs))
