"""repro.load — the open-loop load harness for the serving stack.

The missing half of the observability loop: ``repro.obs`` taught the
server to *report* per-tier latency, queue depth and sheds; this
package generates the traffic that makes those numbers mean something.

* :mod:`repro.load.profile` — open-loop arrival schedules (steady /
  burst / diurnal Poisson processes, plus recorded-trace replay from
  ``repro serve --span-log`` output);
* :mod:`repro.load.workload` — zipfian multi-tenant request
  populations over the mixed trichotomy problem stream, with an
  instance-size distribution;
* :mod:`repro.load.harness` — the async runner that fires arrivals on
  schedule (never waiting for responses — that is what "open loop"
  means) and accounts outcomes per SLO tier through the same
  machinery ``repro slo`` uses server-side.

Typical use::

    from repro.load import LoadProfile, run_loadgen

    report = run_loadgen(
        "127.0.0.1", 7432,
        LoadProfile(duration_seconds=10, rate_rps=200, schedule="burst"),
    )
    print(report.render())

or ``python -m repro loadgen --port 7432 --rate 200 --schedule burst``.
"""

from .harness import LoadReport, run_loadgen, run_loadgen_async
from .profile import (
    SCHEDULES,
    LoadProfile,
    arrival_times,
    arrivals_from_trace,
)
from .workload import LoadRequest, SyntheticWorkload, zipf_weights

__all__ = [
    "SCHEDULES",
    "LoadProfile",
    "LoadReport",
    "LoadRequest",
    "SyntheticWorkload",
    "arrival_times",
    "arrivals_from_trace",
    "run_loadgen",
    "run_loadgen_async",
    "zipf_weights",
]
