"""repro — reproduction of Hannula & Wijsen, "A Dichotomy in Consistent
Query Answering for Primary Keys and Unary Foreign Keys" (PODS 2022).

Public API quick reference
--------------------------

**The canonical entry point is** :mod:`repro.api`: build a
:class:`~repro.api.Problem` (``Problem.of(...)``, JSON round-trips), open a
:class:`~repro.api.Session` with :func:`repro.api.connect`, and get
structured :class:`~repro.api.Decision`s back.  ``Problem``, ``Session``,
``Decision`` and ``connect`` are re-exported here for convenience.

Lower-level building blocks:

* :func:`repro.parse_query`, :func:`repro.fk_set` — build queries and
  foreign-key sets from compact text.
* :func:`repro.classify` — the Theorem 12 decision procedure (FO / L-hard /
  NL-hard).
* :func:`repro.consistent_rewriting` — construct the consistent first-order
  rewriting when it exists (Theorem 1).
* :func:`repro.certain` — one-shot consistent query answering on an
  instance, automatically picking the rewriting or the exact oracle.
* :mod:`repro.engine` — the plan-caching certainty engine behind sessions.
* :mod:`repro.serve` — the network serving layer: sharded engines behind a
  consistent-hash ring, the asyncio micro-batching server, JSON-lines
  clients (``repro serve`` / ``repro decide --connect``).
* :mod:`repro.repairs` — subset repairs and the exact ⊕-repair oracle.
* :mod:`repro.solvers` — the Proposition 16/17 polynomial algorithms and
  baselines.
* :mod:`repro.workloads` — every instance family used in the paper.
"""

from .core import (
    Atom,
    AttackGraph,
    Classification,
    ComplexityVerdict,
    ConjunctiveQuery,
    Constant,
    ForeignKey,
    ForeignKeySet,
    Parameter,
    RewritingResult,
    Schema,
    Variable,
    classify,
    consistent_rewriting,
    decide,
    fk_set,
    is_in_fo,
    parse_atom,
    parse_foreign_key,
    parse_query,
)
from .db import DatabaseInstance, Fact
from .exceptions import (
    EvaluationError,
    ForeignKeyError,
    NotInFOError,
    OracleLimitation,
    QueryError,
    ReproError,
    SchemaError,
)
from .fo import evaluate, render
from .version import __version__


def certain(query, fks, db):
    """Decide ``CERTAINTY(q, FK)`` on *db*.

    Uses the consistent first-order rewriting when Theorem 12 admits one,
    and falls back to the exact ⊕-repair oracle otherwise (exponential in
    the number of blocks — fine for moderate instances).
    """
    from .core.classify import classify as _classify
    from .core.decision import decide as _decide
    from .repairs import is_certain as _oracle

    if _classify(query, fks).in_fo:
        return _decide(query, fks, db, check_classification=False)
    return _oracle(query, fks, db)


__all__ = [
    "Atom", "AttackGraph", "BatchDecision", "Classification",
    "ComplexityVerdict", "ConjunctiveQuery", "Constant", "DatabaseInstance",
    "Decision", "EvaluationError", "Fact", "ForeignKey", "ForeignKeyError",
    "ForeignKeySet", "NotInFOError", "OracleLimitation", "Parameter",
    "Problem", "ProblemFormatError", "QueryError", "ReproError",
    "RewritingResult", "Schema", "SchemaError", "Session", "Variable",
    "__version__", "certain", "classify", "connect", "consistent_rewriting",
    "decide", "evaluate", "fk_set", "is_in_fo", "parse_atom",
    "parse_foreign_key", "parse_query", "render",
]

# Deprecation shims: the pre-redesign flat namespace keeps working, but the
# facade objects live in (and are documented under) repro.api.  Lazy so that
# `import repro` stays cheap and cycle-free.
_API_SHIMS = (
    "Problem", "Session", "SessionConfig", "Decision", "BatchDecision",
    "ProblemFormatError", "connect", "prepare", "as_problem",
)


def __getattr__(name: str):
    if name in _API_SHIMS:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
