"""Database instances: finite sets of facts with block and key indexes.

A database instance is a finite set of facts (Section 3.1).  This class is
the workhorse substrate: it maintains

* a per-relation store,
* a *block* index (``block(A, db)``, the maximal set of key-equal facts),
* a per-(relation, position) value index used by the conjunctive-query
  evaluator and by dangling-fact checks,

and offers the set algebra the repair machinery needs (union, difference,
symmetric difference ``⊕``) plus the ``⪯_db`` closeness preorder.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator, Mapping

from ..core.schema import Schema
from ..exceptions import SchemaError
from .facts import Fact


class DatabaseInstance:
    """An immutable finite set of facts.

    Instances are value objects: all mutating operations return new
    instances.  Construction validates that facts of the same relation agree
    on arity and key size.
    """

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts: frozenset[Fact] = frozenset(facts)
        self._by_relation: dict[str, set[Fact]] = defaultdict(set)
        self._blocks: dict[tuple[str, tuple[object, ...]], set[Fact]] = defaultdict(set)
        self._signatures: dict[str, tuple[int, int]] = {}
        for fact in self._facts:
            sig = (fact.arity, fact.key_size)
            known = self._signatures.setdefault(fact.relation, sig)
            if known != sig:
                raise SchemaError(
                    f"facts of {fact.relation} disagree on signature: "
                    f"{known} vs {sig}"
                )
            self._by_relation[fact.relation].add(fact)
            self._blocks[fact.block_id].add(fact)
        # (relation, position) -> value -> facts; built lazily.
        self._value_index: dict[tuple[str, int], dict[object, set[Fact]]] = {}

    # -- construction helpers -------------------------------------------------

    @classmethod
    def build(
        cls, schema: Schema, rows: Mapping[str, Iterable[tuple[object, ...]]]
    ) -> "DatabaseInstance":
        """Build an instance from a schema and raw value rows.

        >>> schema = Schema.of(R=(2, 1))
        >>> DatabaseInstance.build(schema, {"R": [(1, 2), (1, 3)]}).size
        2
        """
        facts = []
        for relation, tuples in rows.items():
            sig = schema[relation]
            for row in tuples:
                if len(row) != sig.arity:
                    raise SchemaError(
                        f"row {row} has arity {len(row)}, expected "
                        f"{sig.arity} for {relation}"
                    )
                facts.append(Fact(relation, tuple(row), sig.key_size))
        return cls(facts)

    # -- basic access ----------------------------------------------------------

    @property
    def facts(self) -> frozenset[Fact]:
        return self._facts

    @property
    def size(self) -> int:
        return len(self._facts)

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(self._by_relation)

    def relation_facts(self, relation: str) -> frozenset[Fact]:
        return frozenset(self._by_relation.get(relation, ()))

    def schema(self) -> Schema:
        """The schema induced by the stored facts."""
        schema = Schema()
        for relation, (arity, key_size) in self._signatures.items():
            schema = schema.add(relation, arity, key_size)
        return schema

    def active_domain(self) -> frozenset[object]:
        """``adom(db)``: all constants occurring in the instance."""
        return frozenset(v for f in self._facts for v in f.values)

    def key_constants(self) -> frozenset[object]:
        """``keyconst(db)``: constants at primary-key positions (Appendix B)."""
        return frozenset(v for f in self._facts for v in f.key)

    # -- blocks ------------------------------------------------------------------

    def block(self, fact: Fact) -> frozenset[Fact]:
        """``block(A, db)``: the facts of this instance key-equal to *fact*."""
        return frozenset(self._blocks.get(fact.block_id, ()))

    def block_of(self, relation: str, key: tuple[object, ...]) -> frozenset[Fact]:
        """The block ``R(key, ∗)``."""
        return frozenset(self._blocks.get((relation, key), ()))

    def blocks(self, relation: str | None = None) -> list[frozenset[Fact]]:
        """All blocks, optionally of one relation, in deterministic order."""
        items = sorted(
            (
                (bid, facts)
                for bid, facts in self._blocks.items()
                if relation is None or bid[0] == relation
            ),
            key=lambda item: repr(item[0]),
        )
        return [frozenset(facts) for _, facts in items]

    def violates_primary_keys(self) -> bool:
        """True iff some block contains two distinct facts."""
        return any(len(b) > 1 for b in self._blocks.values())

    def key_violations(self) -> list[frozenset[Fact]]:
        """The blocks with more than one fact."""
        return [frozenset(b) for b in self._blocks.values() if len(b) > 1]

    # -- value index ---------------------------------------------------------------

    def facts_with_value(self, relation: str, position: int, value: object) -> frozenset[Fact]:
        """Facts of *relation* carrying *value* at 1-based *position*."""
        key = (relation, position)
        index = self._value_index.get(key)
        if index is None:
            index = defaultdict(set)
            for fact in self._by_relation.get(relation, ()):
                index[fact.value_at(position)].add(fact)
            self._value_index[key] = index
        return frozenset(index.get(value, ()))

    def has_fact_with_key_prefix(self, relation: str, value: object) -> bool:
        """True iff some *relation*-fact has *value* at position 1.

        This is the referenced-fact test for a unary foreign key ``R[i] → S``:
        the fact ``S(b1, …)`` must satisfy ``ai = b1``.
        """
        return bool(self.facts_with_value(relation, 1, value))

    # -- set algebra ------------------------------------------------------------------

    def union(self, other: "DatabaseInstance | Iterable[Fact]") -> "DatabaseInstance":
        other_facts = other.facts if isinstance(other, DatabaseInstance) else other
        return DatabaseInstance(self._facts | frozenset(other_facts))

    def difference(self, other: "DatabaseInstance | Iterable[Fact]") -> "DatabaseInstance":
        other_facts = other.facts if isinstance(other, DatabaseInstance) else other
        return DatabaseInstance(self._facts - frozenset(other_facts))

    def intersection(self, other: "DatabaseInstance | Iterable[Fact]") -> "DatabaseInstance":
        other_facts = other.facts if isinstance(other, DatabaseInstance) else other
        return DatabaseInstance(self._facts & frozenset(other_facts))

    def symmetric_difference(self, other: "DatabaseInstance") -> frozenset[Fact]:
        """``db ⊕ r`` as a plain fact set."""
        return self._facts ^ other._facts

    def restrict_relations(self, relations: Iterable[str]) -> "DatabaseInstance":
        """``db ↾ relations``: facts whose relation name is listed."""
        keep = set(relations)
        return DatabaseInstance(f for f in self._facts if f.relation in keep)

    def filter(self, predicate: Callable[[Fact], bool]) -> "DatabaseInstance":
        return DatabaseInstance(f for f in self._facts if predicate(f))

    # -- the ⊕-closeness preorder -------------------------------------------------------

    def closer_or_equal(self, r: "DatabaseInstance", s: "DatabaseInstance") -> bool:
        """``r ⪯_db s``: ``db ⊕ r ⊆ db ⊕ s`` (Section 3.3), with *self* as db."""
        return self.symmetric_difference(r) <= self.symmetric_difference(s)

    def strictly_closer(self, r: "DatabaseInstance", s: "DatabaseInstance") -> bool:
        """``r ≺_db s``."""
        return self.closer_or_equal(r, s) and r._facts != s._facts

    # -- dunder ------------------------------------------------------------------------

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(sorted(self._facts, key=lambda f: (f.relation, str(f.values))))

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseInstance):
            return NotImplemented
        return self._facts == other._facts

    def __hash__(self) -> int:
        return hash(self._facts)

    def __repr__(self) -> str:
        if self.size > 12:
            return f"DatabaseInstance(<{self.size} facts>)"
        return "DatabaseInstance({" + ", ".join(map(repr, self)) + "})"

    def pretty(self) -> str:
        """A tabular rendering, one section per relation."""
        lines: list[str] = []
        for relation in sorted(self._by_relation):
            lines.append(relation)
            for fact in sorted(
                self._by_relation[relation], key=lambda f: str(f.values)
            ):
                key = ", ".join(map(str, fact.key))
                rest = ", ".join(map(str, fact.nonkey))
                lines.append(f"  ({key} | {rest})" if rest else f"  ({key})")
        return "\n".join(lines)
