"""Constraint checking over database instances.

Primary keys (the set ``PK`` of formulas (1) in Section 3.1) and dangling
facts with respect to unary foreign keys (Section 3.2).
"""

from __future__ import annotations

from typing import Iterable

from ..core.foreign_keys import ForeignKey, ForeignKeySet
from .facts import Fact
from .instance import DatabaseInstance


def is_dangling(fact: Fact, fk: ForeignKey, db: DatabaseInstance) -> bool:
    """Is *fact* dangling in *db* with respect to ``R[i] → S``?

    A fact ``R(a1, …, an)`` is dangling iff *db* contains no ``S``-fact whose
    first (primary-key) value equals ``ai``.
    """
    if fact.relation != fk.source:
        return False
    return not db.has_fact_with_key_prefix(fk.target, fact.value_at(fk.position))


def dangling_keys_of(fact: Fact, fks: ForeignKeySet,
                     db: DatabaseInstance) -> list[ForeignKey]:
    """The foreign keys of *fks* with respect to which *fact* dangles in *db*."""
    return [fk for fk in fks.outgoing(fact.relation) if is_dangling(fact, fk, db)]


def dangling_facts(db: DatabaseInstance, fks: ForeignKeySet,
                   within: DatabaseInstance | None = None) -> set[Fact]:
    """Facts of *db* dangling with respect to some key of *fks*.

    References are resolved against *within* (default: *db* itself); passing
    a larger instance implements "dangling in r ∪ db" style checks.
    """
    scope = within if within is not None else db
    result: set[Fact] = set()
    for fact in db.facts:
        if dangling_keys_of(fact, fks, scope):
            result.add(fact)
    return result


def satisfies_foreign_keys(db: DatabaseInstance, fks: ForeignKeySet) -> bool:
    """``db |= FK``: no fact of *db* is dangling."""
    return not dangling_facts(db, fks)


def satisfies_primary_keys(db: DatabaseInstance) -> bool:
    """``db |= PK``: no block contains two distinct facts."""
    return not db.violates_primary_keys()

def is_consistent(db: DatabaseInstance, fks: ForeignKeySet) -> bool:
    """``db |= PK ∪ FK``."""
    return satisfies_primary_keys(db) and satisfies_foreign_keys(db, fks)


def orphan_constants(db: DatabaseInstance) -> set[object]:
    """Constants occurring exactly once in *db*, at a non-key position.

    This is the *orphan constant* notion of Appendix A, used by the
    pre-repair machinery (Definition 29).
    """
    counts: dict[object, int] = {}
    nonkey_only: dict[object, bool] = {}
    for fact in db.facts:
        for position, value in enumerate(fact.values, start=1):
            counts[value] = counts.get(value, 0) + 1
            at_key = position <= fact.key_size
            nonkey_only[value] = nonkey_only.get(value, True) and not at_key
    return {
        value
        for value, count in counts.items()
        if count == 1 and nonkey_only[value]
    }


def violation_report(db: DatabaseInstance, fks: ForeignKeySet) -> str:
    """A human-readable summary of all constraint violations in *db*."""
    lines: list[str] = []
    for block in db.key_violations():
        sample = ", ".join(map(repr, sorted(block, key=repr)))
        lines.append(f"primary-key violation: {sample}")
    for fact in sorted(dangling_facts(db, fks), key=repr):
        for fk in dangling_keys_of(fact, fks, db):
            lines.append(f"dangling: {fact!r} w.r.t. {fk!r}")
    return "\n".join(lines) if lines else "consistent"
