"""Query containment under foreign keys, via the chase.

Implements the containment notion of Section 3.2 (Johnson–Klug style) for
Boolean queries: ``q' ⊨_FK q`` iff every instance satisfying ``FK`` and
``q'`` satisfies ``q``.  For conjunctive queries this is decided by chasing
the canonical instance of ``q'`` with the foreign keys and testing ``q``.

The chase of unary inclusion dependencies with all-fresh invented values is
level-homogeneous from level 2 on: every inserted fact carries one forced
key value (a null of the previous level) and fresh nulls elsewhere.  A match
of ``q`` therefore uses facts within a window of at most ``|q|`` consecutive
levels and can be shifted down, so chasing ``|q| + 3`` levels is complete.
"""

from __future__ import annotations

from typing import Mapping

from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, FreshConstantFactory, Parameter, Variable
from ..exceptions import ForeignKeyError
from .constraints import dangling_keys_of
from .facts import Fact
from .instance import DatabaseInstance
from .matching import satisfies


def canonical_instance(query: ConjunctiveQuery) -> DatabaseInstance:
    """The canonical database of *query*: distinct variables become distinct
    constants (their names), parameters likewise."""
    facts = []
    for atom in query.atoms:
        values: list[object] = []
        for term in atom.terms:
            if isinstance(term, Constant):
                values.append(term.value)
            elif isinstance(term, Parameter):
                values.append(("param", term.name))
            elif isinstance(term, Variable):
                values.append(("var", term.name))
        facts.append(Fact(atom.relation, tuple(values), atom.key_size))
    return DatabaseInstance(facts)


def chase(
    db: DatabaseInstance,
    fks: ForeignKeySet,
    max_levels: int,
    max_facts: int = 100_000,
) -> tuple[DatabaseInstance, bool]:
    """Chase *db* with *fks* for at most *max_levels* insertion levels.

    Returns ``(result, complete)`` where *complete* is ``True`` iff no
    dangling fact remains (the chase terminated).
    """
    factory = FreshConstantFactory()
    current = db
    for _ in range(max_levels):
        new_facts: list[Fact] = []
        provided: set[tuple[str, object]] = set()
        for fact in current.facts:
            for fk in dangling_keys_of(fact, fks, current):
                key_value = fact.value_at(fk.position)
                if (fk.target, key_value) in provided:
                    continue
                provided.add((fk.target, key_value))
                sig = fks.schema[fk.target]
                values = [key_value] + [
                    factory.fresh("chase").value for _ in range(sig.arity - 1)
                ]
                new_facts.append(Fact(fk.target, tuple(values), sig.key_size))
        if not new_facts:
            return current, True
        current = current.union(new_facts)
        if current.size > max_facts:
            raise ForeignKeyError(
                f"chase exceeded {max_facts} facts without terminating"
            )
    from .constraints import dangling_facts

    return current, not dangling_facts(current, fks)


def chase_entails(
    premise: ConjunctiveQuery,
    fks: ForeignKeySet,
    conclusion: ConjunctiveQuery,
    bound: int = 200,
) -> bool:
    """``premise ⊨_FK conclusion`` for Boolean conjunctive queries."""
    levels = max(3, len(conclusion) + 3)
    start = canonical_instance(premise)
    chased, complete = chase(start, fks, max_levels=levels, max_facts=bound * 50)
    if satisfies(conclusion, chased):
        return True
    # No match in the (level-homogeneous) prefix: by the shifting argument in
    # the module docstring there is none in the full chase either.
    return False


def equivalent_under(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery, fks: ForeignKeySet
) -> bool:
    """``q1 ≡_FK q2``: mutual entailment."""
    return chase_entails(q1, fks, q2) and chase_entails(q2, fks, q1)
