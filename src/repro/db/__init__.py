"""In-memory relational database substrate.

Facts, instances with block/value indexes, conjunctive-query evaluation,
constraint checking and chase-based containment.
"""

from .constraints import (
    dangling_facts,
    dangling_keys_of,
    is_consistent,
    is_dangling,
    orphan_constants,
    satisfies_foreign_keys,
    satisfies_primary_keys,
    violation_report,
)
from .containment import (
    canonical_instance,
    chase,
    chase_entails,
    equivalent_under,
)
from .facts import Fact
from .instance import DatabaseInstance
from .matching import (
    apply_valuation,
    is_fact_relevant,
    relevant_blocks,
    relevant_facts,
    satisfies,
    valuations,
)

__all__ = [
    "DatabaseInstance",
    "Fact",
    "apply_valuation",
    "canonical_instance",
    "chase",
    "chase_entails",
    "dangling_facts",
    "dangling_keys_of",
    "equivalent_under",
    "is_consistent",
    "is_dangling",
    "is_fact_relevant",
    "orphan_constants",
    "relevant_blocks",
    "relevant_facts",
    "satisfies",
    "satisfies_foreign_keys",
    "satisfies_primary_keys",
    "valuations",
    "violation_report",
]
