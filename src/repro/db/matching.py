"""Conjunctive-query evaluation over database instances.

Implements valuations (Section 3.1): a query ``q`` is satisfied by ``db``
iff some total mapping of its variables to constants sends every atom into
``db``.  The evaluator is a backtracking join: atoms are chosen greedily by
how many of their positions are already bound (bound key positions weigh
more, since the block index makes those lookups cheap), and candidate facts
are fetched through the instance's value indexes.

Also provides *relevance* (Appendix A): a fact is relevant for ``q`` in
``db`` if some valuation embeds ``q`` into ``db`` through it.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..core.atoms import Atom
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Parameter, Term, Variable
from ..exceptions import EvaluationError
from .facts import Fact
from .instance import DatabaseInstance

Valuation = dict[Variable, object]


def _resolve(term: Term, valuation: Mapping[Variable, object],
             env: Mapping[Parameter, object]) -> tuple[bool, object]:
    """Return ``(is_bound, value)`` for *term* under the current bindings."""
    if isinstance(term, Constant):
        return True, term.value
    if isinstance(term, Parameter):
        if term not in env:
            raise EvaluationError(f"unbound parameter {term}")
        return True, env[term]
    if term in valuation:
        return True, valuation[term]
    return False, None


def _bound_score(atom: Atom, valuation: Mapping[Variable, object],
                 env: Mapping[Parameter, object]) -> int:
    """Heuristic: prefer atoms with many bound positions, keys weighing double."""
    score = 0
    for position, term in enumerate(atom.terms, start=1):
        bound, _ = _resolve(term, valuation, env)
        if bound:
            score += 2 if atom.is_key_position(position) else 1
    return score


def _candidates(db: DatabaseInstance, atom: Atom,
                valuation: Mapping[Variable, object],
                env: Mapping[Parameter, object]) -> Iterator[Fact]:
    """Facts of *db* that could match *atom* under the current bindings."""
    best: frozenset[Fact] | None = None
    for position, term in enumerate(atom.terms, start=1):
        bound, value = _resolve(term, valuation, env)
        if bound:
            facts = db.facts_with_value(atom.relation, position, value)
            if best is None or len(facts) < len(best):
                best = facts
            if not best:
                return iter(())
    if best is None:
        best = db.relation_facts(atom.relation)
    return iter(best)


def _try_extend(atom: Atom, fact: Fact, valuation: Valuation,
                env: Mapping[Parameter, object]) -> Valuation | None:
    """Extend *valuation* so that the atom maps onto *fact*, or ``None``."""
    if fact.relation != atom.relation or fact.arity != atom.arity:
        return None
    extended = dict(valuation)
    for term, value in zip(atom.terms, fact.values):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        elif isinstance(term, Parameter):
            if env.get(term, _MISSING) != value:
                return None
        else:
            current = extended.get(term, _MISSING)
            if current is _MISSING:
                extended[term] = value
            elif current != value:
                return None
    return extended


_MISSING = object()


def valuations(
    query: ConjunctiveQuery,
    db: DatabaseInstance,
    env: Mapping[Parameter, object] | None = None,
    partial: Mapping[Variable, object] | None = None,
) -> Iterator[Valuation]:
    """Yield every valuation θ over ``vars(q)`` with ``θ(q) ⊆ db``.

    *env* binds parameters; *partial* pre-binds some variables.
    """
    env = env or {}
    remaining = list(query.atoms)
    valuation: Valuation = dict(partial or {})

    def backtrack(pending: list[Atom], current: Valuation) -> Iterator[Valuation]:
        if not pending:
            yield dict(current)
            return
        atom = max(pending, key=lambda a: _bound_score(a, current, env))
        rest = [a for a in pending if a is not atom]
        for fact in _candidates(db, atom, current, env):
            extended = _try_extend(atom, fact, current, env)
            if extended is not None:
                yield from backtrack(rest, extended)

    yield from backtrack(remaining, valuation)


def satisfies(
    query: ConjunctiveQuery,
    db: DatabaseInstance,
    env: Mapping[Parameter, object] | None = None,
    partial: Mapping[Variable, object] | None = None,
) -> bool:
    """``db |= q``: does some valuation embed the query?"""
    return next(valuations(query, db, env=env, partial=partial), None) is not None


def apply_valuation(query: ConjunctiveQuery, valuation: Mapping[Variable, object],
                    env: Mapping[Parameter, object] | None = None) -> set[Fact]:
    """``θ(q)`` as a set of facts (valuation must be total on ``vars(q)``)."""
    env = env or {}
    facts: set[Fact] = set()
    for atom in query.atoms:
        values: list[object] = []
        for term in atom.terms:
            bound, value = _resolve(term, valuation, env)
            if not bound:
                raise EvaluationError(f"valuation misses variable {term}")
            values.append(value)
        facts.add(Fact(atom.relation, tuple(values), atom.key_size))
    return facts


def relevant_facts(
    query: ConjunctiveQuery,
    db: DatabaseInstance,
    relation: str | None = None,
    env: Mapping[Parameter, object] | None = None,
) -> set[Fact]:
    """Facts of *db* relevant for *query* in *db* (Appendix A).

    A fact ``A`` is relevant iff some valuation θ has ``A ∈ θ(q) ⊆ db``.
    If *relation* is given, only facts of that relation are reported.
    """
    relevant: set[Fact] = set()
    for valuation in valuations(query, db, env=env):
        for fact in apply_valuation(query, valuation, env=env):
            if relation is None or fact.relation == relation:
                relevant.add(fact)
    return relevant


def relevant_blocks(
    query: ConjunctiveQuery,
    db: DatabaseInstance,
    relation: str,
    env: Mapping[Parameter, object] | None = None,
) -> set[tuple[str, tuple[object, ...]]]:
    """Block ids of *relation* containing at least one relevant fact."""
    return {f.block_id for f in relevant_facts(query, db, relation, env=env)}


def is_fact_relevant(
    fact: Fact,
    query: ConjunctiveQuery,
    db: DatabaseInstance,
    env: Mapping[Parameter, object] | None = None,
) -> bool:
    """Membership test in :func:`relevant_facts`, short-circuiting.

    Tries to match the query's atom of the fact's relation onto the fact and
    complete the embedding from there.
    """
    if not query.has_relation(fact.relation):
        return False
    atom = query.atom(fact.relation)
    seed = _try_extend(atom, fact, {}, env or {})
    if seed is None:
        return False
    rest = query.without(fact.relation)
    for _ in valuations(rest, db, env=env, partial=seed):
        return True
    return False
