"""Facts and key-equality.

A *fact* is an atom without variables (Section 3.1).  We store facts as a
relation name plus a tuple of plain values together with the key size, so
that key-equality ``A ∼ B`` (same relation, agreeing on all primary-key
positions) is a cheap tuple comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..exceptions import SchemaError


@dataclass(frozen=True)
class Fact:
    """A ground tuple ``R(a1, …, an)`` with primary key ``a1..ak``."""

    relation: str
    values: tuple[object, ...]
    key_size: int

    def __post_init__(self) -> None:
        if not 1 <= self.key_size <= len(self.values):
            raise SchemaError(
                f"fact {self.relation}{self.values}: key size {self.key_size} "
                f"outside [1, {len(self.values)}]"
            )

    @property
    def arity(self) -> int:
        return len(self.values)

    @property
    def key(self) -> tuple[object, ...]:
        """The primary-key value tuple."""
        return self.values[: self.key_size]

    @property
    def nonkey(self) -> tuple[object, ...]:
        return self.values[self.key_size:]

    @property
    def block_id(self) -> tuple[str, tuple[object, ...]]:
        """Identifier of the block this fact belongs to: ``(R, key)``."""
        return (self.relation, self.key)

    def value_at(self, position: int) -> object:
        """Value at 1-based *position*."""
        return self.values[position - 1]

    def key_equal(self, other: "Fact") -> bool:
        """``A ∼ B``: same relation name and same primary-key values."""
        return self.relation == other.relation and self.key == other.key

    def __iter__(self) -> Iterator[object]:
        return iter(self.values)

    def __repr__(self) -> str:
        key = ",".join(map(str, self.key))
        rest = ",".join(map(str, self.nonkey))
        if rest:
            return f"{self.relation}({key}|{rest})"
        return f"{self.relation}({key})"
