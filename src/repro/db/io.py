"""Text serialization of database instances.

The format is one fact per line in the query-atom syntax with ground
terms::

    AUTHORS('o1' | 'Jeff', 'Ullman')
    R('d1', 'o3' |)
    DOCS('d1' | 'Some pairs problems', 2016)

Key positions come before the ``|`` exactly as in queries; blank lines and
``#`` comments are ignored.  Round-trips through :func:`dumps`/:func:`loads`
preserve the instance (ordinary string/int values only — invented repair
constants are not serializable by design).
"""

from __future__ import annotations

from pathlib import Path

from ..core.query import parse_atom
from ..core.terms import Constant
from ..exceptions import QueryError
from .facts import Fact
from .instance import DatabaseInstance


def _value_to_text(value: object) -> str:
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "’") + "'"
    raise QueryError(
        f"cannot serialize value {value!r}: only strings and integers have "
        "a text form"
    )


def dumps(db: DatabaseInstance) -> str:
    """Serialize an instance, one fact per line, deterministically ordered."""
    lines = []
    for fact in db:
        key = ", ".join(_value_to_text(v) for v in fact.key)
        rest = ", ".join(_value_to_text(v) for v in fact.nonkey)
        lines.append(f"{fact.relation}({key} | {rest})")
    return "\n".join(lines) + ("\n" if lines else "")


def loads(text: str) -> DatabaseInstance:
    """Parse an instance from its text form."""
    facts = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        atom = parse_atom(line)
        values = []
        for term in atom.terms:
            if not isinstance(term, Constant):
                raise QueryError(
                    f"line {line_number}: facts must be ground, found "
                    f"{term!r}"
                )
            values.append(term.value)
        facts.append(Fact(atom.relation, tuple(values), atom.key_size))
    return DatabaseInstance(facts)


def load(path: str | Path) -> DatabaseInstance:
    """Read an instance from a file."""
    return loads(Path(path).read_text())


def dump(db: DatabaseInstance, path: str | Path) -> None:
    """Write an instance to a file."""
    Path(path).write_text(dumps(db))
