"""Text and JSON serialization of database instances.

The *text* format is one fact per line in the query-atom syntax with ground
terms::

    AUTHORS('o1' | 'Jeff', 'Ullman')
    R('d1', 'o3' |)
    DOCS('d1' | 'Some pairs problems', 2016)

Key positions come before the ``|`` exactly as in queries; blank lines and
``#`` comments are ignored.  Round-trips through :func:`dumps`/:func:`loads`
preserve the instance (ordinary string/int values only — invented repair
constants are not serializable by design).

The *JSON* format (:func:`to_dict`/:func:`from_dict`/:func:`to_json`/
:func:`from_json`) is the wire form instances travel in next to
:class:`repro.api.Problem` documents — the payload of the ``repro.serve``
protocol and of ``repro instance export``.  It follows the same
conventions the problem document established: a ``format``/``version``
header, one object per relation carrying its signature, and the shared
string-or-integer value domain (JSON keeps the two apart natively, so rows
are stored as plain value arrays rather than tagged triples — every value
in a ground fact is a constant)::

    {"format": "repro/instance", "version": 1,
     "relations": {"R": {"arity": 2, "key_size": 1,
                         "rows": [["d1", "o3"], ...]}}}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from ..core.query import parse_atom
from ..core.terms import Constant
from ..exceptions import InstanceFormatError, QueryError
from .facts import Fact
from .instance import DatabaseInstance

_FORMAT = "repro/instance"
_VERSION = 1


def _value_to_text(value: object) -> str:
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "’") + "'"
    raise QueryError(
        f"cannot serialize value {value!r}: only strings and integers have "
        "a text form"
    )


def dumps(db: DatabaseInstance) -> str:
    """Serialize an instance, one fact per line, deterministically ordered."""
    lines = []
    for fact in db:
        key = ", ".join(_value_to_text(v) for v in fact.key)
        rest = ", ".join(_value_to_text(v) for v in fact.nonkey)
        lines.append(f"{fact.relation}({key} | {rest})")
    return "\n".join(lines) + ("\n" if lines else "")


def loads(text: str) -> DatabaseInstance:
    """Parse an instance from its text form."""
    facts = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        atom = parse_atom(line)
        values = []
        for term in atom.terms:
            if not isinstance(term, Constant):
                raise QueryError(
                    f"line {line_number}: facts must be ground, found "
                    f"{term!r}"
                )
            values.append(term.value)
        facts.append(Fact(atom.relation, tuple(values), atom.key_size))
    return DatabaseInstance(facts)


def load(path: str | Path) -> DatabaseInstance:
    """Read an instance from a file."""
    return loads(Path(path).read_text())


def dump(db: DatabaseInstance, path: str | Path) -> None:
    """Write an instance to a file."""
    Path(path).write_text(dumps(db))


# -- the JSON wire format ----------------------------------------------------


def _is_wire_value(value: object) -> bool:
    return not isinstance(value, bool) and isinstance(value, (str, int))


def _bad_value(relation: str, row, value: object) -> InstanceFormatError:
    # formatted only on failure: this sits on the serve layer's
    # per-request encode/decode hot path
    return InstanceFormatError(
        f"relation {relation!r} row {tuple(row)!r}: value {value!r} is not "
        "serializable — only string and integer constants have a wire form"
    )


def to_dict(db: DatabaseInstance) -> dict:
    """A plain-JSON-compatible dict losslessly encoding *db*.

    Relations are sorted and rows follow the instance's deterministic fact
    order, so equal instances produce identical documents.
    """
    relations: dict[str, dict] = {}
    for fact in db:  # deterministic iteration order
        entry = relations.setdefault(
            fact.relation,
            {"arity": fact.arity, "key_size": fact.key_size, "rows": []},
        )
        for value in fact.values:
            if not _is_wire_value(value):
                raise _bad_value(fact.relation, fact.values, value)
        entry["rows"].append(list(fact.values))
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "relations": {name: relations[name] for name in sorted(relations)},
    }


def to_json(db: DatabaseInstance, indent: int | None = None) -> str:
    """The instance as a JSON document (see :func:`to_dict`)."""
    return json.dumps(to_dict(db), indent=indent, sort_keys=True)


def from_dict(data: object) -> DatabaseInstance:
    """Rebuild an instance from :func:`to_dict` output.

    Raises :class:`~repro.exceptions.InstanceFormatError` on any malformed
    input; signature conflicts propagate as
    :class:`~repro.exceptions.SchemaError` from instance construction.
    """
    if not isinstance(data, Mapping):
        raise InstanceFormatError(
            f"instance document must be a JSON object, got "
            f"{type(data).__name__}"
        )
    if data.get("format") != _FORMAT:
        raise InstanceFormatError(
            f"not an instance document: format={data.get('format')!r} "
            f"(expected {_FORMAT!r})"
        )
    if data.get("version") != _VERSION:
        raise InstanceFormatError(
            f"unsupported instance version {data.get('version')!r} "
            f"(this library reads version {_VERSION})"
        )
    relations = data.get("relations", {})
    if not isinstance(relations, Mapping):
        raise InstanceFormatError("instance 'relations' must be an object")
    facts: list[Fact] = []
    for name, entry in relations.items():
        if not isinstance(name, str) or not isinstance(entry, Mapping):
            raise InstanceFormatError(
                f"malformed relation entry {name!r}: {entry!r}"
            )
        arity = entry.get("arity")
        key_size = entry.get("key_size")
        rows = entry.get("rows")
        if (
            not isinstance(arity, int)
            or not isinstance(key_size, int)
            or isinstance(arity, bool)
            or isinstance(key_size, bool)
            or not isinstance(rows, list)
        ):
            raise InstanceFormatError(
                f"relation {name!r} needs integer 'arity'/'key_size' and a "
                "'rows' list"
            )
        if not 1 <= key_size <= arity:
            raise InstanceFormatError(
                f"relation {name!r}: key size {key_size} outside [1, {arity}]"
            )
        for row in rows:
            if not isinstance(row, list) or len(row) != arity:
                raise InstanceFormatError(
                    f"relation {name!r}: row {row!r} is not a list of "
                    f"{arity} values"
                )
            for value in row:
                if not _is_wire_value(value):
                    raise _bad_value(name, row, value)
            facts.append(Fact(name, tuple(row), key_size))
    return DatabaseInstance(facts)


def from_json(text: str) -> DatabaseInstance:
    """Parse an instance from its JSON document form."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise InstanceFormatError(f"invalid JSON: {error}") from error
    return from_dict(data)
