"""Fresh-chase completion of a kept fact set.

Given a set ``K`` of facts (a candidate ``r ∩ db``), the *fresh completion*
inserts, for every unmet foreign-key reference, the unique missing target
fact: its primary key carries the referenced value (forced), every other
position carries a globally fresh constant.  Cascading references are chased
recursively; on cyclic dependency graphs the cascade would never end, so
beyond a configurable depth the chase switches to a finite *pool* of
constants indexed by ``(relation, position, depth mod period)``, which
closes every chain (the paper's chase restriction (1) in Appendix B uses the
same idea with the two constants ``⊥, ⊤``).

The resulting insertion set is the unique least fixpoint of "fix every
dangling fact" for this value strategy — the property the canonical
⊕-repair search of :mod:`repro.repairs.oplus` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.foreign_keys import ForeignKeySet
from ..core.terms import FreshConstantFactory
from ..db.facts import Fact
from ..exceptions import OracleLimitation


@dataclass(frozen=True, slots=True)
class PoolValue:
    """A deterministic cycle-closing constant.

    Distinct from every ordinary value and every :class:`FreshValue`; equal
    pool slots compare equal, which is what terminates cyclic cascades.
    """

    relation: str
    position: int
    phase: int

    def __repr__(self) -> str:
        return f"<pool:{self.relation}.{self.position}.{self.phase}>"

    def __str__(self) -> str:
        return repr(self)


@dataclass(frozen=True)
class Completion:
    """Result of a fresh chase: the inserted facts and how the chase ended."""

    insertions: frozenset[Fact]
    used_pool: bool

    @property
    def size(self) -> int:
        """Number of inserted facts."""
        return len(self.insertions)


def fresh_completion(
    kept: frozenset[Fact],
    fks: ForeignKeySet,
    depth_limit: int = 6,
    period: int = 2,
    max_insertions: int = 10_000,
) -> Completion:
    """Chase *kept* to foreign-key consistency with canonical fresh values.

    *depth_limit* is the number of cascade levels chased with globally fresh
    constants before the pool strategy kicks in; *period* the number of pool
    phases (alternating constants defeat accidental equalities such as a
    repeated variable ``N(x, x)`` matching a closing loop).
    """
    factory = FreshConstantFactory()
    facts: set[Fact] = set(kept)
    provided: set[tuple[str, object]] = set()
    for fact in facts:
        if fact.key_size == 1:
            provided.add((fact.relation, fact.value_at(1)))
        # Non-unary-keyed facts can still *serve* references through their
        # first position only if their key size is 1; referenced relations
        # always have signature [m, 1] by the unary-FK definition, so facts
        # of composite-key relations never serve references.
    insertions: set[Fact] = set()
    used_pool = False

    # Worklist of (relation, forced key value, depth).
    work: list[tuple[str, object, int]] = []

    def enqueue_needs(fact: Fact, depth: int) -> None:
        for fk in fks.outgoing(fact.relation):
            value = fact.value_at(fk.position)
            if (fk.target, value) not in provided:
                work.append((fk.target, value, depth))

    for fact in sorted(facts, key=repr):
        enqueue_needs(fact, depth=1)

    while work:
        relation, value, depth = work.pop()
        if (relation, value) in provided:
            continue
        sig = fks.schema[relation]
        if depth <= depth_limit:
            rest = [
                factory.fresh(f"ins{depth}").value for _ in range(sig.arity - 1)
            ]
        else:
            used_pool = True
            rest = [
                PoolValue(relation, i, depth % max(period, 1))
                for i in range(2, sig.arity + 1)
            ]
        new_fact = Fact(relation, tuple([value] + rest), sig.key_size)
        insertions.add(new_fact)
        facts.add(new_fact)
        provided.add((relation, value))
        if len(insertions) > max_insertions:
            raise OracleLimitation(
                f"fresh completion exceeded {max_insertions} insertions"
            )
        enqueue_needs(new_fact, depth + 1)

    return Completion(frozenset(insertions), used_pool)


def least_needed(
    base: frozenset[Fact],
    available: frozenset[Fact],
    fks: ForeignKeySet,
) -> frozenset[Fact] | None:
    """The least subset of *available* whose union with *base* satisfies FK.

    Returns ``None`` when no subset works (some reference is unfixable).
    Uniqueness holds because *available* contains at most one fact per
    (relation, key value) — true for fresh completions and enforced here.
    """
    by_key: dict[tuple[str, object], Fact] = {}
    for fact in available:
        if fact.key_size == 1:
            key = (fact.relation, fact.value_at(1))
            if key in by_key:
                raise OracleLimitation(
                    "available insertions contain two facts for the same key"
                )
            by_key[key] = fact

    present: set[tuple[str, object]] = set()
    chosen: set[Fact] = set()
    all_facts: set[Fact] = set(base)
    for fact in all_facts:
        if fact.key_size == 1:
            present.add((fact.relation, fact.value_at(1)))

    work = list(all_facts)
    while work:
        fact = work.pop()
        for fk in fks.outgoing(fact.relation):
            need = (fk.target, fact.value_at(fk.position))
            if need in present:
                continue
            fixer = by_key.get(need)
            if fixer is None:
                return None
            chosen.add(fixer)
            all_facts.add(fixer)
            present.add(need)
            work.append(fixer)
    return frozenset(chosen)
