"""Randomized repair sampling for approximate consistent answering.

The paper's related work (its reference [19], Calautti–Console–Pieris)
benchmarks randomized approximation of the *fraction of repairs* satisfying
a query — a useful data-quality signal when exhaustive enumeration is out
of reach.  This module provides:

* uniform sampling of subset repairs (primary keys only): each block
  contributes one uniformly chosen fact, independently — this is exactly
  uniform over subset repairs;
* a Monte-Carlo estimate of the satisfaction frequency with a
  Hoeffding-style confidence half-width.

For primary *and* foreign keys the repair space carries no canonical
uniform measure (it is infinite); sampling is deliberately not offered
there — use the exact oracle or the rewriting.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.query import ConjunctiveQuery
from ..db.facts import Fact
from ..db.instance import DatabaseInstance
from ..db.matching import satisfies


def sample_subset_repair(
    db: DatabaseInstance, rng: random.Random
) -> DatabaseInstance:
    """One subset repair, uniformly at random."""
    chosen: list[Fact] = []
    for block in db.blocks():
        chosen.append(rng.choice(sorted(block, key=repr)))
    return DatabaseInstance(chosen)


@dataclass(frozen=True)
class FrequencyEstimate:
    """A Monte-Carlo estimate of the repair-satisfaction frequency."""

    estimate: float
    samples: int
    confidence: float

    @property
    def half_width(self) -> float:
        """Hoeffding half-width at the configured confidence level."""
        if self.samples == 0:
            return 1.0
        return math.sqrt(
            math.log(2.0 / (1.0 - self.confidence)) / (2.0 * self.samples)
        )

    @property
    def lower(self) -> float:
        """Lower end of the confidence interval."""
        return max(0.0, self.estimate - self.half_width)

    @property
    def upper(self) -> float:
        """Upper end of the confidence interval."""
        return min(1.0, self.estimate + self.half_width)

    def __repr__(self) -> str:
        return (
            f"{self.estimate:.3f} ± {self.half_width:.3f} "
            f"({self.samples} samples, {self.confidence:.0%} confidence)"
        )


def estimate_satisfaction_frequency(
    query: ConjunctiveQuery,
    db: DatabaseInstance,
    samples: int = 400,
    seed: int = 0,
    confidence: float = 0.95,
) -> FrequencyEstimate:
    """Estimate the fraction of subset repairs satisfying *query*.

    The exact quantity is the one ♯CERTAINTY(q) normalizes; the estimate is
    unbiased because block choices are independent and uniform.
    """
    rng = random.Random(seed)
    hits = 0
    for _ in range(samples):
        if satisfies(query, sample_subset_repair(db, rng)):
            hits += 1
    estimate = hits / samples if samples else 0.0
    return FrequencyEstimate(estimate, samples, confidence)
