"""Repair substrate: subset repairs and the exact ⊕-repair oracle."""

from .chase import Completion, PoolValue, fresh_completion, least_needed
from .minimality import (
    dominating_instance,
    is_canonical_repair,
    verify_repair,
)
from .oplus import (
    CertaintyAnswer,
    OracleConfig,
    canonical_repairs,
    certain_answer,
    falsifying_repair,
    is_certain,
)
from .subset import (
    certainty_primary_keys,
    count_subset_repairs,
    falsifying_subset_repair,
    frequency_of_satisfaction,
    is_subset_repair,
    subset_repairs,
)

__all__ = [
    "CertaintyAnswer",
    "Completion",
    "OracleConfig",
    "PoolValue",
    "canonical_repairs",
    "certain_answer",
    "certainty_primary_keys",
    "count_subset_repairs",
    "dominating_instance",
    "falsifying_repair",
    "falsifying_subset_repair",
    "frequency_of_satisfaction",
    "fresh_completion",
    "is_canonical_repair",
    "is_certain",
    "is_subset_repair",
    "least_needed",
    "subset_repairs",
    "verify_repair",
]

from .sampling import (  # noqa: E402
    FrequencyEstimate,
    estimate_satisfaction_frequency,
    sample_subset_repair,
)

__all__ += [
    "FrequencyEstimate",
    "estimate_satisfaction_frequency",
    "sample_subset_repair",
]

from .prerepair import (  # noqa: E402
    is_irrelevantly_dangling,
    is_pre_repair,
    orphan_positions,
)

__all__ += [
    "is_irrelevantly_dangling",
    "is_pre_repair",
    "orphan_positions",
]
