"""Exact canonical search over ⊕-repairs (the ground-truth oracle).

``CERTAINTY(q, FK)`` quantifies over an infinite space of ⊕-repairs:
insertions may carry arbitrary constants.  The search below restricts to
*canonical candidates* and is nevertheless exact for falsifiability:

* a candidate is determined by a **keep-choice** ``K`` — one fact or none
  from every block of ``db`` — completed by the **fresh chase**
  (:func:`repro.repairs.chase.fresh_completion`), whose insertions carry the
  forced key value and fresh constants elsewhere;
* a candidate is a ⊕-repair iff it passes the exact finite minimality check
  of :mod:`repro.repairs.minimality`.

Completeness (DESIGN.md §5): if any repair ``r0 = K ∪ I0`` falsifies ``q``,
the fresh variant ``K ∪ I*`` also falsifies ``q`` — the identity on ``K``
extends to a homomorphism ``K ∪ I* → K ∪ I0`` because both insertion sets
realize the same forced key skeleton, and conjunctive queries are preserved
under homomorphisms — and ``K ∪ I*`` is itself ⊕-minimal, because
block-extension dominance only depends on that forced key skeleton.  On
cyclic dependency graphs the fresh chase is truncated into constant pools of
several periods; all configured periods are tried.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..db.facts import Fact
from ..db.instance import DatabaseInstance
from ..db.matching import satisfies
from ..exceptions import OracleLimitation
from .chase import Completion, fresh_completion
from .minimality import is_canonical_repair


@dataclass(frozen=True)
class OracleConfig:
    """Search bounds for the canonical ⊕-repair oracle."""

    depth_limit: int = 6
    periods: tuple[int, ...] = (2, 3, 1)
    max_keep_choices: int = 4_000_000
    extension_limit: int = 200_000


@dataclass(frozen=True)
class CertaintyAnswer:
    """Outcome of an oracle run, with a falsifying repair when one exists."""

    certain: bool
    falsifying_repair: DatabaseInstance | None = None
    candidates_examined: int = 0

    def __bool__(self) -> bool:
        return self.certain


def _keep_choices(db: DatabaseInstance,
                  limit: int) -> Iterator[frozenset[Fact]]:
    """All keep-choices: one fact or none from every block."""
    blocks = [sorted(block, key=repr) for block in db.blocks()]
    count = 1
    for block in blocks:
        count *= len(block) + 1
    if count > limit:
        raise OracleLimitation(
            f"oracle would enumerate {count} keep-choices (limit {limit})"
        )

    def recurse(index: int, chosen: list[Fact]) -> Iterator[frozenset[Fact]]:
        if index == len(blocks):
            yield frozenset(chosen)
            return
        yield from recurse(index + 1, chosen)  # drop the block
        for fact in blocks[index]:
            chosen.append(fact)
            yield from recurse(index + 1, chosen)
            chosen.pop()

    yield from recurse(0, [])


def _completions(
    kept: frozenset[Fact], fks: ForeignKeySet, config: OracleConfig
) -> Iterator[Completion]:
    """Fresh completions of *kept*; one per period when pools are needed."""
    first = fresh_completion(
        kept, fks, depth_limit=config.depth_limit, period=config.periods[0]
    )
    yield first
    if first.used_pool:
        for period in config.periods[1:]:
            yield fresh_completion(
                kept, fks, depth_limit=config.depth_limit, period=period
            )


def canonical_repairs(
    db: DatabaseInstance,
    fks: ForeignKeySet,
    config: OracleConfig | None = None,
) -> Iterator[DatabaseInstance]:
    """Enumerate the canonical ⊕-repairs of *db* (deduplicated).

    On acyclic dependency graphs this enumerates, up to renaming of the
    invented constants, exactly the fresh-valued ⊕-repairs; every reported
    instance is a genuine ⊕-repair.
    """
    config = config or OracleConfig()
    seen: set[frozenset[Fact]] = set()
    for kept in _keep_choices(db, config.max_keep_choices):
        for completion in _completions(kept, fks, config):
            insertions = completion.insertions
            if any(fact in db for fact in insertions):
                # This candidate coincides with a larger keep-choice; it will
                # be produced (normalized) when that choice is enumerated.
                continue
            candidate_facts = kept | insertions
            if candidate_facts in seen:
                continue
            if not is_canonical_repair(
                db, kept, insertions, fks,
                extension_limit=config.extension_limit,
            ):
                continue
            seen.add(candidate_facts)
            yield DatabaseInstance(candidate_facts)


def certain_answer(
    query: ConjunctiveQuery,
    fks: ForeignKeySet,
    db: DatabaseInstance,
    config: OracleConfig | None = None,
) -> CertaintyAnswer:
    """Decide ``CERTAINTY(q, FK)`` on *db* by exhaustive canonical search."""
    examined = 0
    for repair in canonical_repairs(db, fks, config):
        examined += 1
        if not satisfies(query, repair):
            return CertaintyAnswer(False, repair, examined)
    return CertaintyAnswer(True, None, examined)


def is_certain(
    query: ConjunctiveQuery,
    fks: ForeignKeySet,
    db: DatabaseInstance,
    config: OracleConfig | None = None,
) -> bool:
    """Boolean shorthand for :func:`certain_answer`."""
    return certain_answer(query, fks, db, config).certain


def falsifying_repair(
    query: ConjunctiveQuery,
    fks: ForeignKeySet,
    db: DatabaseInstance,
    config: OracleConfig | None = None,
) -> DatabaseInstance | None:
    """A ⊕-repair falsifying *query*, or ``None`` when the answer is certain."""
    return certain_answer(query, fks, db, config).falsifying_repair
