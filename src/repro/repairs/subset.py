"""Subset repairs with respect to primary keys only.

When ``FK = ∅``, the ⊕-repairs of ``db`` are exactly the classical *subset
repairs*: maximal subinstances without two distinct key-equal facts, i.e.
one fact chosen from every block (Section 3.1).  This module enumerates and
counts them, and decides ``CERTAINTY(q)`` by brute force — the baseline the
consistent rewritings are validated against.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..core.query import ConjunctiveQuery
from ..db.facts import Fact
from ..db.instance import DatabaseInstance
from ..db.matching import satisfies


def subset_repairs(db: DatabaseInstance) -> Iterator[DatabaseInstance]:
    """Yield every repair of *db* with respect to primary keys.

    The number of repairs is the product of the block sizes; iteration is
    lazy and deterministic.
    """
    blocks = db.blocks()
    if not blocks:
        yield DatabaseInstance()
        return
    ordered = [sorted(block, key=repr) for block in blocks]
    for choice in itertools.product(*ordered):
        yield DatabaseInstance(choice)


def count_subset_repairs(db: DatabaseInstance) -> int:
    """``∏_blocks |block|`` without materializing anything."""
    count = 1
    for block in db.blocks():
        count *= len(block)
    return count


def certainty_primary_keys(query: ConjunctiveQuery,
                           db: DatabaseInstance) -> bool:
    """``CERTAINTY(q)``: does every subset repair satisfy *query*?"""
    return all(satisfies(query, repair) for repair in subset_repairs(db))


def falsifying_subset_repair(query: ConjunctiveQuery,
                             db: DatabaseInstance) -> DatabaseInstance | None:
    """A subset repair falsifying *query*, or ``None`` (a certainty witness)."""
    for repair in subset_repairs(db):
        if not satisfies(query, repair):
            return repair
    return None


def is_subset_repair(candidate: DatabaseInstance,
                     db: DatabaseInstance) -> bool:
    """Is *candidate* a subset repair of *db* (one fact from every block)?"""
    if not candidate.facts <= db.facts:
        return False
    if candidate.violates_primary_keys():
        return False
    chosen_blocks = {fact.block_id for fact in candidate.facts}
    all_blocks = {fact.block_id for fact in db.facts}
    return chosen_blocks == all_blocks


def frequency_of_satisfaction(query: ConjunctiveQuery, db: DatabaseInstance,
                              limit: int | None = None) -> tuple[int, int]:
    """``(satisfying, total)`` over subset repairs — the counting problem
    ♯CERTAINTY(q) of the related work, used by the audit example."""
    satisfying = 0
    total = 0
    for repair in subset_repairs(db):
        total += 1
        if satisfies(query, repair):
            satisfying += 1
        if limit is not None and total >= limit:
            break
    return satisfying, total
