"""Exact ⊕-minimality checking for canonical repair candidates.

A candidate ``r = K ∪ I`` (kept db-facts plus inserted facts) is a ⊕-repair
iff no consistent ``s`` is strictly ⊕-closer to ``db``:

    ``s ≺_db r  ⟺  r∩db ⊆ s∩db,  s∖db ⊆ r∖db,  one inclusion strict.``

Because ``s`` must keep at least ``K``, respect primary keys, and draw its
insertions from ``I``, the check is finite: ``s∩db = K ∪ X`` for a choice
``X`` of at most one fact from each db-block not represented in ``K`` (facts
key-equal to an insertion force that insertion out), and for each ``X`` the
least insertion set ``Y ⊆ I`` restoring foreign-key consistency is unique
(or absent).  ``r`` is non-minimal iff some such ``s`` exists with ``X ≠ ∅``
or ``Y ⊊ I``.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..core.foreign_keys import ForeignKeySet
from ..db.facts import Fact
from ..db.instance import DatabaseInstance
from ..exceptions import OracleLimitation
from .chase import least_needed


def _unrepresented_blocks(
    db: DatabaseInstance, kept: frozenset[Fact]
) -> list[list[Fact]]:
    represented = {fact.block_id for fact in kept}
    return [
        sorted(block, key=repr)
        for block in db.blocks()
        if not any(f.block_id in represented for f in block)
    ]


def _extension_choices(
    blocks: list[list[Fact]], limit: int
) -> Iterator[tuple[Fact, ...]]:
    """All ways to add at most one fact per unrepresented block."""
    options = [[None, *block] for block in blocks]
    count = 1
    for opts in options:
        count *= len(opts)
    if count > limit:
        raise OracleLimitation(
            f"minimality check would enumerate {count} block extensions "
            f"(limit {limit})"
        )
    for choice in itertools.product(*options):
        yield tuple(fact for fact in choice if fact is not None)


def dominating_instance(
    db: DatabaseInstance,
    kept: frozenset[Fact],
    insertions: frozenset[Fact],
    fks: ForeignKeySet,
    extension_limit: int = 200_000,
) -> frozenset[Fact] | None:
    """A consistent ``s`` with ``s ≺_db (kept ∪ insertions)``, or ``None``.

    ``None`` certifies that the candidate is a genuine ⊕-repair (given that
    it is itself consistent and that *insertions* is the least fixpoint of
    its own value strategy, which :func:`repro.repairs.chase.fresh_completion`
    guarantees).
    """
    blocks = _unrepresented_blocks(db, kept)
    insertion_keys = {
        (f.relation, f.key): f for f in insertions
    }
    for extension in _extension_choices(blocks, extension_limit):
        # Facts of the extension that are key-equal to an insertion force the
        # insertion out of the available pool (primary keys).
        conflicted = {
            insertion_keys[(f.relation, f.key)]
            for f in extension
            if (f.relation, f.key) in insertion_keys
        }
        available = insertions - conflicted
        base = kept | set(extension)
        needed = least_needed(frozenset(base), frozenset(available), fks)
        if needed is None:
            continue
        strict = bool(extension) or needed < insertions
        if strict:
            return frozenset(base) | needed
    return None


def is_canonical_repair(
    db: DatabaseInstance,
    kept: frozenset[Fact],
    insertions: frozenset[Fact],
    fks: ForeignKeySet,
    extension_limit: int = 200_000,
) -> bool:
    """Is ``kept ∪ insertions`` ⊕-minimal (hence a repair, if consistent)?"""
    return (
        dominating_instance(db, kept, insertions, fks, extension_limit) is None
    )


def verify_repair(
    db: DatabaseInstance,
    candidate: DatabaseInstance,
    fks: ForeignKeySet,
    extension_limit: int = 200_000,
) -> bool:
    """Full ⊕-repair verification of an arbitrary candidate.

    Checks consistency and minimality; the candidate's insertions must not
    contain two facts for the same key (canonical candidates never do).
    """
    from ..db.constraints import is_consistent

    if not is_consistent(candidate, fks):
        return False
    kept = frozenset(candidate.facts & db.facts)
    insertions = frozenset(candidate.facts - db.facts)
    return is_canonical_repair(db, kept, insertions, fks, extension_limit)
