"""Irrelevantly dangling instances and pre-repairs (Definitions 29–30).

The NL-hardness proof machinery: an instance ``r`` is *irrelevantly
dangling* with respect to ``(db, FK, q)`` when every fact of ``r`` left
dangling by some key ``R[j] → S`` could be completed by insertions that are
irrelevant to ``q`` — formally, the set ``P`` of non-key positions of the
fact holding constants *orphan* in ``r ∪ db`` and outside ``const(q)`` is
**disobedient** and contains ``(R, j)``.  A *pre-repair* is a
``≺∩``-minimal instance satisfying the primary keys and irrelevant
danglingness; Theorem 32 states that every repair satisfies ``q`` iff every
pre-repair does.

This module implements the predicates (used by tests to sanity-check the
oracle's completions against the paper's machinery); pre-repair
*enumeration* is intentionally not offered — the canonical ⊕-oracle of
:mod:`repro.repairs.oplus` plays that role.
"""

from __future__ import annotations

from ..core.foreign_keys import ForeignKeySet, Position
from ..core.obedience import syntactic_obedient
from ..core.query import ConjunctiveQuery
from ..db.constraints import dangling_keys_of, orphan_constants
from ..db.facts import Fact
from ..db.instance import DatabaseInstance


def orphan_positions(
    fact: Fact,
    scope: DatabaseInstance,
    query: ConjunctiveQuery,
) -> frozenset[Position]:
    """The set ``P`` of Definition 29 for *fact* within *scope*.

    Non-primary-key positions of *fact* whose constant occurs exactly once
    in *scope* (at a non-key position) and does not occur in the query.
    """
    orphans = orphan_constants(scope)
    query_constants = {c.value for c in query.constants}
    positions = []
    for index in range(fact.key_size + 1, fact.arity + 1):
        value = fact.value_at(index)
        if value in orphans and value not in query_constants:
            positions.append((fact.relation, index))
    return frozenset(positions)


def is_irrelevantly_dangling(
    r: DatabaseInstance,
    db: DatabaseInstance,
    fks: ForeignKeySet,
    query: ConjunctiveQuery,
) -> bool:
    """Definition 29: every dangling fact of *r* is irrelevantly so."""
    scope = r.union(db)
    for fact in r.facts:
        dangling = dangling_keys_of(fact, fks, r)
        if not dangling:
            continue
        if not query.has_relation(fact.relation):
            return False
        positions = orphan_positions(fact, scope, query)
        if syntactic_obedient(query, fks, positions):
            return False
        for fk in dangling:
            if fk.source_position not in positions:
                return False
    return True


def is_pre_repair(
    r: DatabaseInstance,
    db: DatabaseInstance,
    fks: ForeignKeySet,
    query: ConjunctiveQuery,
    candidate_extensions: int = 200_000,
) -> bool:
    """Definition 30, checked within the canonical candidate space.

    ``r`` must satisfy the primary keys, be irrelevantly dangling, and be
    ``≺∩``-minimal: no instance keeping strictly more db-facts (and using
    only ``r``'s own insertions) satisfies the two conditions.  The
    minimality check enumerates block extensions like the ⊕-minimality
    check of :mod:`repro.repairs.minimality`.
    """
    import itertools

    if r.violates_primary_keys():
        return False
    if not is_irrelevantly_dangling(r, db, fks, query):
        return False
    kept = r.facts & db.facts
    insertions = r.facts - db.facts
    represented = {f.block_id for f in kept}
    open_blocks = [
        sorted(block, key=repr)
        for block in db.blocks()
        if not any(f.block_id in represented for f in block)
    ]
    count = 1
    for block in open_blocks:
        count *= len(block) + 1
    if count > candidate_extensions:
        from ..exceptions import OracleLimitation

        raise OracleLimitation(
            f"pre-repair minimality would enumerate {count} extensions"
        )
    options = [[None, *block] for block in open_blocks]
    for choice in itertools.product(*options):
        extension = [f for f in choice if f is not None]
        if not extension:
            continue
        candidate = DatabaseInstance(kept | set(extension) | insertions)
        if candidate.violates_primary_keys():
            continue
        if is_irrelevantly_dangling(candidate, db, fks, query):
            return False  # a ≺∩-closer instance exists
    return True
