"""Evaluation of first-order formulas over database instances.

Quantifiers range over the active domain of the instance extended with the
constants of the formula (the standard active-domain semantics for the
complexity class FO over relational inputs, cf. Libkin's *Elements of
Finite Model Theory*, which the paper references for locality).

The evaluator is *guided*: an existential block first looks for positive
relation atoms in (the negation-normal top layer of) its body that mention
quantified variables, and enumerates matching facts through the instance's
value indexes instead of blindly iterating the domain.  This keeps the
constructed consistent rewritings usable on instances with tens of
thousands of facts, which the benchmark harness relies on.
"""

from __future__ import annotations

from typing import Mapping

from ..core.terms import Constant, Parameter, Term, Variable
from ..db.facts import Fact
from ..db.instance import DatabaseInstance
from ..exceptions import EvaluationError
from .formula import (
    And,
    Eq,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Rel,
    TrueFormula,
    constants_of,
    negate,
)

Assignment = dict[Term, object]


class Evaluator:
    """Evaluate formulas against one database instance."""

    def __init__(self, db: DatabaseInstance):
        self._db = db

    def evaluate(self, formula: Formula,
                 assignment: Mapping[Term, object] | None = None) -> bool:
        """Truth value of *formula*; free parameters come from *assignment*."""
        env: Assignment = dict(assignment or {})
        domain = set(self._db.active_domain())
        domain.update(c.value for c in constants_of(formula))
        domain.update(env.values())
        if not domain:
            domain = {0}  # evaluation over an empty structure still needs a point
        return self._eval(formula, env, tuple(sorted(domain, key=repr)))

    # -- internals -----------------------------------------------------------

    def _resolve(self, term: Term, env: Assignment) -> object:
        if isinstance(term, Constant):
            return term.value
        if term in env:
            return env[term]
        raise EvaluationError(f"unbound term {term!r} during evaluation")

    def _eval(self, formula: Formula, env: Assignment,
              domain: tuple[object, ...]) -> bool:
        if isinstance(formula, TrueFormula):
            return True
        if isinstance(formula, FalseFormula):
            return False
        if isinstance(formula, Rel):
            values = tuple(self._resolve(t, env) for t in formula.terms)
            return Fact(formula.relation, values, formula.key_size) in self._db
        if isinstance(formula, Eq):
            return self._resolve(formula.left, env) == self._resolve(
                formula.right, env
            )
        if isinstance(formula, Not):
            return not self._eval(formula.body, env, domain)
        if isinstance(formula, And):
            return all(self._eval(p, env, domain) for p in formula.parts)
        if isinstance(formula, Or):
            return any(self._eval(p, env, domain) for p in formula.parts)
        if isinstance(formula, Implies):
            if not self._eval(formula.premise, env, domain):
                return True
            return self._eval(formula.conclusion, env, domain)
        if isinstance(formula, Forall):
            inner = Exists(formula.variables, negate(formula.body))
            return not self._eval(inner, env, domain)
        if isinstance(formula, Exists):
            return self._eval_exists(
                list(formula.variables), formula.body, env, domain
            )
        raise EvaluationError(f"unknown formula node {formula!r}")

    def _eval_exists(self, variables: list[Variable], body: Formula,
                     env: Assignment, domain: tuple[object, ...]) -> bool:
        unbound = [v for v in variables if v not in env]
        if not unbound:
            return self._eval(body, env, domain)
        guard = self._find_guard(body, unbound, env)
        if guard is not None:
            for fact in self._guard_candidates(guard, env):
                extended = self._match_guard(guard, fact, env)
                if extended is not None:
                    if self._eval_exists(unbound, body, extended, domain):
                        return True
            # A guard inside a conjunction is mandatory: no matching fact
            # means no witness through this guard, but other conjuncts might
            # not force it only if the guard was under a disjunction — the
            # finder below only returns mandatory guards, so we can stop.
            return False
        variable = unbound[0]
        for value in domain:
            env[variable] = value
            if self._eval_exists(unbound, body, env, domain):
                del env[variable]
                return True
        del env[variable]
        return False

    def _find_guard(self, body: Formula, unbound: list[Variable],
                    env: Assignment) -> Rel | None:
        """A positive Rel atom mentioning an unbound variable that every
        witness must satisfy (i.e. one sitting under top-level conjunctions)."""
        stack = [body]
        while stack:
            node = stack.pop()
            if isinstance(node, Rel):
                if any(t in unbound and t not in env for t in node.terms):
                    return node
            elif isinstance(node, And):
                stack.extend(node.parts)
            elif isinstance(node, Not):
                pushed = negate(node.body)
                if not isinstance(pushed, Not):
                    stack.append(pushed)
        return None

    def _guard_candidates(self, guard: Rel, env: Assignment):
        best: frozenset[Fact] | None = None
        for position, term in enumerate(guard.terms, start=1):
            value: object
            if isinstance(term, Constant):
                value = term.value
            elif term in env:
                value = env[term]
            else:
                continue
            facts = self._db.facts_with_value(guard.relation, position, value)
            if best is None or len(facts) < len(best):
                best = facts
            if not best:
                return ()
        if best is None:
            return self._db.relation_facts(guard.relation)
        return best

    def _match_guard(self, guard: Rel, fact: Fact,
                     env: Assignment) -> Assignment | None:
        if fact.arity != len(guard.terms):
            return None
        extended = dict(env)
        for term, value in zip(guard.terms, fact.values):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
            elif term in extended:
                if extended[term] != value:
                    return None
            else:
                extended[term] = value
        return extended


def evaluate(formula: Formula, db: DatabaseInstance,
             assignment: Mapping[Term, object] | None = None) -> bool:
    """One-shot convenience wrapper around :class:`Evaluator`."""
    return Evaluator(db).evaluate(formula, assignment)
