"""Capture-avoiding term substitution in formulas.

The rewriting construction builds subformulas whose "constants" are
:class:`Parameter` terms, then binds them: substituting each parameter by
the quantified variable of the surrounding block.  Substitution never needs
to rename binders here because the construction only ever substitutes fresh
variable names (guaranteed by :class:`FreshVariableFactory`); a defensive
check raises on capture.
"""

from __future__ import annotations

from typing import Mapping

from ..core.terms import Term, Variable
from ..exceptions import EvaluationError
from .formula import (
    And,
    Eq,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Rel,
    TrueFormula,
)


def substitute_terms(formula: Formula, mapping: Mapping[Term, Term]) -> Formula:
    """Replace free occurrences of the mapped terms.

    Keys may be variables or parameters; values arbitrary terms.  Raises
    :class:`EvaluationError` if a substituted variable would be captured.
    """
    if not mapping:
        return formula
    return _subst(formula, dict(mapping))


def _subst(formula: Formula, mapping: dict[Term, Term]) -> Formula:
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Rel):
        return Rel(
            formula.relation,
            tuple(mapping.get(t, t) for t in formula.terms),
            formula.key_size,
        )
    if isinstance(formula, Eq):
        return Eq(
            mapping.get(formula.left, formula.left),
            mapping.get(formula.right, formula.right),
        )
    if isinstance(formula, Not):
        return Not(_subst(formula.body, mapping))
    if isinstance(formula, And):
        return And(tuple(_subst(p, mapping) for p in formula.parts))
    if isinstance(formula, Or):
        return Or(tuple(_subst(p, mapping) for p in formula.parts))
    if isinstance(formula, Implies):
        return Implies(
            _subst(formula.premise, mapping),
            _subst(formula.conclusion, mapping),
        )
    if isinstance(formula, (Exists, Forall)):
        bound = set(formula.variables)
        inner = {k: v for k, v in mapping.items() if k not in bound}
        for value in inner.values():
            if isinstance(value, Variable) and value in bound:
                raise EvaluationError(
                    f"substitution would capture {value!r} under a quantifier"
                )
        body = _subst(formula.body, inner)
        cls = Exists if isinstance(formula, Exists) else Forall
        return cls(formula.variables, body)
    raise EvaluationError(f"unknown formula node {formula!r}")


def expand_relations(
    formula: Formula,
    definitions: Mapping[str, tuple[tuple[Variable, ...], Formula]],
) -> Formula:
    """Replace each ``Rel`` atom of a defined relation by its definition.

    ``definitions[R] = (formal_vars, body)``; occurrences ``R(t⃗)`` become
    ``body[formal_vars → t⃗]``.  Used to compare relativized rewritings with
    explicitly materialized instance transformations.
    """
    if isinstance(formula, Rel) and formula.relation in definitions:
        formals, body = definitions[formula.relation]
        if len(formals) != len(formula.terms):
            raise EvaluationError(
                f"definition arity mismatch for {formula.relation}"
            )
        return substitute_terms(body, dict(zip(formals, formula.terms)))
    if isinstance(formula, (TrueFormula, FalseFormula, Eq)):
        return formula
    if isinstance(formula, Rel):
        return formula
    if isinstance(formula, Not):
        return Not(expand_relations(formula.body, definitions))
    if isinstance(formula, And):
        return And(tuple(expand_relations(p, definitions) for p in formula.parts))
    if isinstance(formula, Or):
        return Or(tuple(expand_relations(p, definitions) for p in formula.parts))
    if isinstance(formula, Implies):
        return Implies(
            expand_relations(formula.premise, definitions),
            expand_relations(formula.conclusion, definitions),
        )
    if isinstance(formula, Exists):
        return Exists(
            formula.variables, expand_relations(formula.body, definitions)
        )
    if isinstance(formula, Forall):
        return Forall(
            formula.variables, expand_relations(formula.body, definitions)
        )
    raise EvaluationError(f"unknown formula node {formula!r}")
