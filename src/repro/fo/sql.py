"""Compilation of first-order formulas to SQL.

A consistent first-order rewriting is a relational-calculus query; this
module compiles it to a single SQL ``SELECT`` (SQLite dialect) so the
certain answer can be obtained from any SQL engine holding the dirty data —
the deployment mode the CQA systems literature (ConQuer et al.) targets.

Conventions:

* relation ``R`` of arity ``n`` is a table ``R`` with columns ``c1 … cn``;
* quantifiers range over the active domain, materialized once as a CTE
  ``adom(v)`` that unions every column of every relation in the schema;
* the closed formula becomes ``SELECT EXISTS(…)``-style boolean SQL:
  ``∃x⃗ φ`` → ``EXISTS (SELECT 1 FROM adom a1, … WHERE φ)``,
  ``∀x⃗ φ`` → ``NOT EXISTS (… WHERE NOT φ)``, atoms become correlated
  ``EXISTS`` probes.

The translation is validated against the in-memory evaluator through
SQLite in the test suite.
"""

from __future__ import annotations

from ..core.schema import Schema
from ..core.terms import Constant, Parameter, Term, Variable
from ..exceptions import EvaluationError
from .formula import (
    And,
    Eq,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Rel,
    TrueFormula,
)


def _quote_value(value: object) -> str:
    if isinstance(value, bool):
        raise EvaluationError("boolean constants have no SQL form")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise EvaluationError(
        f"constant {value!r} has no SQL form (strings and integers only)"
    )


def _quote_identifier(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


class _SqlBuilder:
    def __init__(self, value_encoder=None) -> None:
        self._counter = 0
        self._encode = value_encoder or (lambda v: v)

    def fresh_alias(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def term(self, term: Term, scope: dict[Term, str]) -> str:
        if isinstance(term, Constant):
            return _quote_value(self._encode(term.value))
        if term in scope:
            return scope[term]
        raise EvaluationError(f"unbound term {term!r} in SQL translation")

    def boolean(self, formula: Formula, scope: dict[Term, str]) -> str:
        if isinstance(formula, TrueFormula):
            return "1=1"
        if isinstance(formula, FalseFormula):
            return "1=0"
        if isinstance(formula, Rel):
            alias = self.fresh_alias("t")
            conditions = [
                f"{alias}.c{i} = {self.term(t, scope)}"
                for i, t in enumerate(formula.terms, start=1)
            ]
            table = _quote_identifier(formula.relation)
            return (
                f"EXISTS (SELECT 1 FROM {table} {alias} WHERE "
                + " AND ".join(conditions)
                + ")"
            )
        if isinstance(formula, Eq):
            return (
                f"{self.term(formula.left, scope)} = "
                f"{self.term(formula.right, scope)}"
            )
        if isinstance(formula, Not):
            return f"NOT {self._operand(formula.body, scope, 'not')}"
        if isinstance(formula, And):
            if not formula.parts:
                return "1=1"
            return " AND ".join(
                self._operand(p, scope, "and") for p in formula.parts
            )
        if isinstance(formula, Or):
            if not formula.parts:
                return "1=0"
            return " OR ".join(
                self._operand(p, scope, "or") for p in formula.parts
            )
        if isinstance(formula, Implies):
            left = self._operand(formula.premise, scope, "not")
            right = self._operand(formula.conclusion, scope, "or")
            return f"NOT {left} OR {right}"
        if isinstance(formula, Exists):
            return self._quantifier(formula, scope, universal=False)
        if isinstance(formula, Forall):
            return self._quantifier(formula, scope, universal=True)
        raise EvaluationError(f"unknown formula node {formula!r}")

    # SQL boolean precedence: NOT binds tighter than AND, AND tighter than
    # OR.  Parenthesize a sub-expression only when its top operator binds
    # more loosely than the context — keeping the nesting depth of the
    # generated SQL proportional to the semantic depth (SQLite's parser
    # stack dislikes gratuitous parentheses on deep rewritings).
    _PRECEDENCE = {"or": 0, "and": 1, "not": 2}

    def _top_level(self, formula: Formula) -> str:
        if isinstance(formula, Or) and len(formula.parts) > 1:
            return "or"
        if isinstance(formula, Implies):
            return "or"
        if isinstance(formula, And) and len(formula.parts) > 1:
            return "and"
        if isinstance(formula, Not):
            return "not"
        return "atom"  # Rel/Eq/quantifier/constant render self-delimited

    def _operand(self, formula: Formula, scope: dict[Term, str],
                 context: str) -> str:
        rendered = self.boolean(formula, scope)
        top = self._top_level(formula)
        if top == "atom":
            return rendered
        if self._PRECEDENCE[top] < self._PRECEDENCE[context] or (
            context == "not"
        ):
            return f"({rendered})"
        return rendered

    def _quantifier(self, formula: Exists | Forall,
                    scope: dict[Term, str], universal: bool) -> str:
        """Translate a quantifier block to (NOT) EXISTS.

        A universal block becomes ``NOT EXISTS`` over the negated body.  A
        positive relation atom among the top-level conjuncts that mentions
        quantified variables is pulled into the ``FROM`` clause (the table
        replaces an ``adom`` product), which keeps the generated SQL shallow
        and lets the engine drive the quantifier from an index.
        """
        from .formula import negate as _negate

        body = _negate(formula.body) if universal else formula.body
        conjuncts = self._flatten_and(body)
        inner_scope = dict(scope)
        froms: list[str] = []
        conditions: list[str] = []
        pending = list(formula.variables)
        used: set[int] = set()
        # Greedily pull guards: Rel conjuncts binding quantified variables.
        progress = True
        while progress:
            progress = False
            for index, part in enumerate(conjuncts):
                if index in used or not isinstance(part, Rel):
                    continue
                binds = [
                    t for t in part.terms
                    if isinstance(t, Variable) and t in pending
                ]
                if not binds:
                    continue
                alias = self.fresh_alias("t")
                froms.append(f"{_quote_identifier(part.relation)} {alias}")
                for position, term in enumerate(part.terms, start=1):
                    column = f"{alias}.c{position}"
                    if isinstance(term, Variable) and term in pending:
                        inner_scope[term] = column
                        pending.remove(term)
                    else:
                        conditions.append(
                            f"{column} = {self.term(term, inner_scope)}"
                        )
                used.add(index)
                progress = True
        for variable in pending:
            alias = self.fresh_alias("a")
            froms.append(f"adom {alias}")
            inner_scope[variable] = f"{alias}.v"
        rest = [p for i, p in enumerate(conjuncts) if i not in used]
        for part in rest:
            conditions.append(self._operand(part, inner_scope, "and"))
        if not conditions:
            conditions.append("1=1")
        sql = (
            "EXISTS (SELECT 1 FROM "
            + ", ".join(froms)
            + " WHERE "
            + " AND ".join(conditions)
            + ")"
        )
        return f"NOT {sql}" if universal else sql

    @staticmethod
    def _flatten_and(formula: Formula) -> list[Formula]:
        if isinstance(formula, And):
            flat: list[Formula] = []
            for part in formula.parts:
                flat.extend(_SqlBuilder._flatten_and(part))
            return flat
        return [formula]


def _adom_cte(schema: Schema, extra_literals: list[str]) -> str:
    selects = []
    for relation in sorted(schema):
        table = _quote_identifier(relation)
        for i in range(1, schema[relation].arity + 1):
            selects.append(f"SELECT c{i} AS v FROM {table}")
    for literal in extra_literals:
        selects.append(f"SELECT {literal} AS v")
    if not selects:
        selects.append("SELECT NULL AS v WHERE 0")
    return "adom(v) AS (" + " UNION ".join(selects) + ")"


def to_sql(
    formula: Formula,
    schema: Schema,
    parameters: dict[Parameter, object] | None = None,
    value_encoder=None,
) -> str:
    """Compile a closed formula into one SQL query returning 0 or 1.

    *schema* must cover every relation of the formula (used to build the
    active-domain CTE); free parameters are inlined as constants.

    *value_encoder* is the dialect seam for engines without SQLite's
    dynamic typing: an injective ``value -> value`` mapping applied to
    every constant the compiled text embeds.  Instances loaded through
    :func:`insert_statements` must use the same encoder so comparisons
    stay aligned.
    """
    from .formula import constants_of

    parameters = parameters or {}
    encode = value_encoder or (lambda v: v)
    scope: dict[Term, str] = {
        p: _quote_value(encode(v)) for p, v in parameters.items()
    }
    builder = _SqlBuilder(value_encoder)
    condition = builder.boolean(formula, scope)
    literals = sorted(
        {_quote_value(encode(c.value)) for c in constants_of(formula)}
        | set(scope.values())
    )
    cte = _adom_cte(schema, literals)
    return (
        f"WITH {cte}\n"
        f"SELECT CASE WHEN {condition} THEN 1 ELSE 0 END AS certain"
    )


def create_table_statements(
    schema: Schema, column_type: str = ""
) -> list[str]:
    """``CREATE TABLE`` DDL matching the column convention.

    *column_type* is the dialect seam: SQLite accepts typeless columns
    (the default); strictly-typed engines (DuckDB) pass e.g. ``VARCHAR``.
    """
    suffix = f" {column_type}" if column_type else ""
    statements = []
    for relation in sorted(schema):
        columns = ", ".join(
            f"c{i}{suffix}" for i in range(1, schema[relation].arity + 1)
        )
        statements.append(
            f"CREATE TABLE {_quote_identifier(relation)} ({columns})"
        )
    return statements


def insert_statements(
    db, value_encoder=None
) -> list[tuple[str, tuple[object, ...]]]:
    """Parameterized ``INSERT`` statements loading an instance.

    *value_encoder* must match the one the compiled query was built with
    (see :func:`to_sql`).
    """
    encode = value_encoder or (lambda v: v)
    statements = []
    for fact in db:
        placeholders = ", ".join("?" for _ in fact.values)
        statements.append(
            (
                f"INSERT INTO {_quote_identifier(fact.relation)} "
                f"VALUES ({placeholders})",
                tuple(encode(value) for value in fact.values),
            )
        )
    return statements


def certain_answer_via_sqlite(formula: Formula, db, schema: Schema | None = None,
                              parameters=None) -> bool:
    """Evaluate the compiled SQL against an in-memory SQLite database."""
    import sqlite3

    schema = schema or db.schema()
    connection = sqlite3.connect(":memory:")
    try:
        for ddl in create_table_statements(schema):
            connection.execute(ddl)
        for statement, values in insert_statements(db):
            connection.execute(statement, values)
        (result,) = connection.execute(
            to_sql(formula, schema, parameters)
        ).fetchone()
        return bool(result)
    finally:
        connection.close()
