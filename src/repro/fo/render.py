"""Pretty-printing of first-order formulas.

Two renderers: :func:`render` produces a compact single-line Unicode string
(close to the paper's notation), :func:`render_tree` an indented multi-line
layout for large rewritings.
"""

from __future__ import annotations

from .formula import (
    And,
    Eq,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Rel,
    TrueFormula,
)


def render(formula: Formula) -> str:
    """Compact single-line rendering."""
    return _render(formula, parent_priority=0)


_PRIORITY = {"or": 1, "implies": 1, "and": 2, "not": 3, "quant": 3, "atom": 4}


def _wrap(text: str, own: int, parent: int) -> str:
    return f"({text})" if own < parent else text


def _render(formula: Formula, parent_priority: int) -> str:
    if isinstance(formula, TrueFormula):
        return "⊤"
    if isinstance(formula, FalseFormula):
        return "⊥"
    if isinstance(formula, Rel):
        return f"{formula.relation}({', '.join(map(str, formula.terms))})"
    if isinstance(formula, Eq):
        return f"{formula.left} = {formula.right}"
    if isinstance(formula, Not):
        inner = _render(formula.body, _PRIORITY["not"])
        return _wrap(f"¬{inner}", _PRIORITY["not"], parent_priority)
    if isinstance(formula, And):
        own = _PRIORITY["and"]
        inner = " ∧ ".join(_render(p, own + 1) for p in formula.parts)
        return _wrap(inner, own, parent_priority)
    if isinstance(formula, Or):
        own = _PRIORITY["or"]
        inner = " ∨ ".join(_render(p, own + 1) for p in formula.parts)
        return _wrap(inner, own, parent_priority)
    if isinstance(formula, Implies):
        own = _PRIORITY["implies"]
        left = _render(formula.premise, own + 1)
        right = _render(formula.conclusion, own)
        return _wrap(f"{left} → {right}", own, parent_priority)
    if isinstance(formula, Exists):
        names = " ".join(v.name for v in formula.variables)
        inner = _render(formula.body, _PRIORITY["quant"])
        return _wrap(f"∃{names} {inner}", _PRIORITY["quant"], parent_priority)
    if isinstance(formula, Forall):
        names = " ".join(v.name for v in formula.variables)
        inner = _render(formula.body, _PRIORITY["quant"])
        return _wrap(f"∀{names} {inner}", _PRIORITY["quant"], parent_priority)
    return repr(formula)


def render_tree(formula: Formula, indent: int = 0) -> str:
    """Indented multi-line rendering for large formulas."""
    pad = "  " * indent
    if isinstance(formula, (TrueFormula, FalseFormula, Rel, Eq)):
        return pad + render(formula)
    if isinstance(formula, Not):
        return pad + "¬\n" + render_tree(formula.body, indent + 1)
    if isinstance(formula, And):
        lines = [pad + "∧"]
        lines.extend(render_tree(p, indent + 1) for p in formula.parts)
        return "\n".join(lines)
    if isinstance(formula, Or):
        lines = [pad + "∨"]
        lines.extend(render_tree(p, indent + 1) for p in formula.parts)
        return "\n".join(lines)
    if isinstance(formula, Implies):
        return "\n".join(
            [
                pad + "→",
                render_tree(formula.premise, indent + 1),
                render_tree(formula.conclusion, indent + 1),
            ]
        )
    if isinstance(formula, Exists):
        names = " ".join(v.name for v in formula.variables)
        return pad + f"∃{names}\n" + render_tree(formula.body, indent + 1)
    if isinstance(formula, Forall):
        names = " ".join(v.name for v in formula.variables)
        return pad + f"∀{names}\n" + render_tree(formula.body, indent + 1)
    return pad + repr(formula)
