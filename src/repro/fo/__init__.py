"""First-order logic substrate: formulas, evaluation, simplification."""

from .evaluator import Evaluator, evaluate
from .formula import (
    FALSE,
    TRUE,
    And,
    Eq,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Rel,
    TrueFormula,
    conj,
    constants_of,
    disj,
    equality,
    exists,
    forall,
    implies,
    negate,
    relations_of,
    walk,
)
from .render import render, render_tree
from .simplify import quantifier_depth, simplify, size
from .sql import (
    certain_answer_via_sqlite,
    create_table_statements,
    insert_statements,
    to_sql,
)
from .substitute import expand_relations, substitute_terms

__all__ = [
    "And", "Eq", "Evaluator", "Exists", "FALSE", "FalseFormula", "Forall",
    "Formula", "Implies", "Not", "Or", "Rel", "TRUE", "TrueFormula",
    "conj", "constants_of", "disj", "equality", "evaluate", "exists",
    "expand_relations", "forall", "implies", "negate", "quantifier_depth",
    "relations_of", "render", "render_tree", "simplify", "size",
    "substitute_terms", "to_sql", "certain_answer_via_sqlite",
    "create_table_statements", "insert_statements", "walk",
]
