"""First-order formula AST.

The consistent first-order rewritings constructed by this library are
objects of this small AST: relation atoms, equalities, the Boolean
connectives, and quantifiers.  Terms inside formulas are the same
:mod:`repro.core.terms` objects used by queries; a :class:`Parameter`
occurring in a formula is a *free variable* that must be bound by the
caller at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..core.terms import Constant, Parameter, Term, Variable


class Formula:
    """Base class; use the concrete node classes below."""

    def free_terms(self) -> frozenset[Term]:
        """Free variables and parameters of the formula."""
        raise NotImplementedError

    # convenience builders -------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The constant ⊤."""

    def free_terms(self) -> frozenset[Term]:
        return frozenset()

    def __repr__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The constant ⊥."""

    def free_terms(self) -> frozenset[Term]:
        return frozenset()

    def __repr__(self) -> str:
        return "⊥"


TRUE = TrueFormula()
FALSE = FalseFormula()


@dataclass(frozen=True)
class Rel(Formula):
    """A relation atom ``R(t1, …, tn)``."""

    relation: str
    terms: tuple[Term, ...]
    key_size: int = 1

    def free_terms(self) -> frozenset[Term]:
        return frozenset(
            t for t in self.terms if isinstance(t, (Variable, Parameter))
        )

    def __repr__(self) -> str:
        return f"{self.relation}({', '.join(map(str, self.terms))})"


@dataclass(frozen=True)
class Eq(Formula):
    """``t1 = t2``."""

    left: Term
    right: Term

    def free_terms(self) -> frozenset[Term]:
        return frozenset(
            t for t in (self.left, self.right)
            if isinstance(t, (Variable, Parameter))
        )

    def __repr__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Not(Formula):
    """Negation ``¬φ``."""

    body: Formula

    def free_terms(self) -> frozenset[Term]:
        return self.body.free_terms()

    def __repr__(self) -> str:
        return f"¬({self.body!r})"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of *parts* (use :func:`conj` to build simplified ones)."""

    parts: tuple[Formula, ...]

    def __init__(self, parts: Iterable[Formula]):
        object.__setattr__(self, "parts", tuple(parts))

    def free_terms(self) -> frozenset[Term]:
        out: frozenset[Term] = frozenset()
        for part in self.parts:
            out |= part.free_terms()
        return out

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of *parts* (use :func:`disj` to build simplified ones)."""

    parts: tuple[Formula, ...]

    def __init__(self, parts: Iterable[Formula]):
        object.__setattr__(self, "parts", tuple(parts))

    def free_terms(self) -> frozenset[Term]:
        out: frozenset[Term] = frozenset()
        for part in self.parts:
            out |= part.free_terms()
        return out

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    """Implication ``premise → conclusion``."""

    premise: Formula
    conclusion: Formula

    def free_terms(self) -> frozenset[Term]:
        return self.premise.free_terms() | self.conclusion.free_terms()

    def __repr__(self) -> str:
        return f"({self.premise!r} → {self.conclusion!r})"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential block ``∃x⃗ φ``."""

    variables: tuple[Variable, ...]
    body: Formula

    def __init__(self, variables: Iterable[Variable], body: Formula):
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "body", body)

    def free_terms(self) -> frozenset[Term]:
        return self.body.free_terms() - frozenset(self.variables)

    def __repr__(self) -> str:
        names = " ".join(v.name for v in self.variables)
        return f"∃{names}({self.body!r})"


@dataclass(frozen=True)
class Forall(Formula):
    """Universal block ``∀x⃗ φ``."""

    variables: tuple[Variable, ...]
    body: Formula

    def __init__(self, variables: Iterable[Variable], body: Formula):
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "body", body)

    def free_terms(self) -> frozenset[Term]:
        return self.body.free_terms() - frozenset(self.variables)

    def __repr__(self) -> str:
        names = " ".join(v.name for v in self.variables)
        return f"∀{names}({self.body!r})"


# -- smart constructors ------------------------------------------------------


def conj(parts: Iterable[Formula]) -> Formula:
    """Conjunction with unit/absorbing-element simplification and flattening."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, TrueFormula):
            continue
        if isinstance(part, FalseFormula):
            return FALSE
        if isinstance(part, And):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def disj(parts: Iterable[Formula]) -> Formula:
    """Disjunction with unit/absorbing-element simplification and flattening."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, FalseFormula):
            continue
        if isinstance(part, TrueFormula):
            return TRUE
        if isinstance(part, Or):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(flat)


def exists(variables: Iterable[Variable], body: Formula) -> Formula:
    """∃ with empty-prefix and constant-body simplification."""
    variables = tuple(dict.fromkeys(variables))
    if isinstance(body, (TrueFormula, FalseFormula)):
        return body
    used = body.free_terms()
    variables = tuple(v for v in variables if v in used)
    if not variables:
        return body
    if isinstance(body, Exists):
        return Exists(variables + body.variables, body.body)
    return Exists(variables, body)


def forall(variables: Iterable[Variable], body: Formula) -> Formula:
    """∀ with empty-prefix and constant-body simplification."""
    variables = tuple(dict.fromkeys(variables))
    if isinstance(body, (TrueFormula, FalseFormula)):
        return body
    used = body.free_terms()
    variables = tuple(v for v in variables if v in used)
    if not variables:
        return body
    if isinstance(body, Forall):
        return Forall(variables + body.variables, body.body)
    return Forall(variables, body)


def implies(premise: Formula, conclusion: Formula) -> Formula:
    """Implication with unit simplification."""
    if isinstance(premise, FalseFormula) or isinstance(conclusion, TrueFormula):
        return TRUE
    if isinstance(premise, TrueFormula):
        return conclusion
    return Implies(premise, conclusion)


def equality(left: Term, right: Term) -> Formula:
    """Equality with ground folding (``c = c`` → ⊤, distinct constants → ⊥)."""
    if left == right:
        return TRUE
    if isinstance(left, Constant) and isinstance(right, Constant):
        return FALSE
    return Eq(left, right)


def negate(formula: Formula) -> Formula:
    """One-level negation push (used by the evaluator to expose guards)."""
    if isinstance(formula, Not):
        return formula.body
    if isinstance(formula, TrueFormula):
        return FALSE
    if isinstance(formula, FalseFormula):
        return TRUE
    if isinstance(formula, And):
        return Or(tuple(Not(p) for p in formula.parts))
    if isinstance(formula, Or):
        return And(tuple(Not(p) for p in formula.parts))
    if isinstance(formula, Implies):
        return And((formula.premise, Not(formula.conclusion)))
    if isinstance(formula, Forall):
        return Exists(formula.variables, Not(formula.body))
    if isinstance(formula, Exists):
        return Forall(formula.variables, Not(formula.body))
    return Not(formula)


def walk(formula: Formula) -> Iterator[Formula]:
    """Yield every sub-formula, pre-order."""
    yield formula
    if isinstance(formula, Not):
        yield from walk(formula.body)
    elif isinstance(formula, (And, Or)):
        for part in formula.parts:
            yield from walk(part)
    elif isinstance(formula, Implies):
        yield from walk(formula.premise)
        yield from walk(formula.conclusion)
    elif isinstance(formula, (Exists, Forall)):
        yield from walk(formula.body)


def relations_of(formula: Formula) -> frozenset[str]:
    """Relation names occurring in *formula*."""
    return frozenset(
        node.relation for node in walk(formula) if isinstance(node, Rel)
    )


def constants_of(formula: Formula) -> frozenset[Constant]:
    """Constants occurring in *formula*."""
    out: set[Constant] = set()
    for node in walk(formula):
        if isinstance(node, Rel):
            out.update(t for t in node.terms if isinstance(t, Constant))
        elif isinstance(node, Eq):
            out.update(
                t for t in (node.left, node.right) if isinstance(t, Constant)
            )
    return frozenset(out)
