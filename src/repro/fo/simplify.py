"""Bottom-up simplification of first-order formulas.

Applies the smart constructors of :mod:`repro.fo.formula` recursively:
flattens ∧/∨, drops units, short-circuits absorbing elements, removes
double negations, evaluates ground equalities, and prunes quantifiers whose
variables do not occur in the body.  Simplification is semantics-preserving
(property-tested against the evaluator).
"""

from __future__ import annotations

from .formula import (
    And,
    Eq,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Rel,
    TrueFormula,
    conj,
    disj,
    equality,
    exists,
    forall,
    implies,
)


def simplify(formula: Formula) -> Formula:
    """Return an equivalent, syntactically reduced formula."""
    if isinstance(formula, (TrueFormula, FalseFormula, Rel)):
        return formula
    if isinstance(formula, Eq):
        return equality(formula.left, formula.right)
    if isinstance(formula, Not):
        body = simplify(formula.body)
        if isinstance(body, TrueFormula):
            return FalseFormula()
        if isinstance(body, FalseFormula):
            return TrueFormula()
        if isinstance(body, Not):
            return body.body
        return Not(body)
    if isinstance(formula, And):
        return conj(simplify(p) for p in formula.parts)
    if isinstance(formula, Or):
        return disj(simplify(p) for p in formula.parts)
    if isinstance(formula, Implies):
        return implies(simplify(formula.premise), simplify(formula.conclusion))
    if isinstance(formula, Exists):
        return exists(formula.variables, simplify(formula.body))
    if isinstance(formula, Forall):
        return forall(formula.variables, simplify(formula.body))
    return formula


def size(formula: Formula) -> int:
    """Node count of the formula tree (used by benches and tests)."""
    if isinstance(formula, (TrueFormula, FalseFormula, Rel, Eq)):
        return 1
    if isinstance(formula, Not):
        return 1 + size(formula.body)
    if isinstance(formula, (And, Or)):
        return 1 + sum(size(p) for p in formula.parts)
    if isinstance(formula, Implies):
        return 1 + size(formula.premise) + size(formula.conclusion)
    if isinstance(formula, (Exists, Forall)):
        return 1 + size(formula.body)
    return 1


def quantifier_depth(formula: Formula) -> int:
    """Maximum nesting depth of quantifier blocks."""
    if isinstance(formula, (TrueFormula, FalseFormula, Rel, Eq)):
        return 0
    if isinstance(formula, Not):
        return quantifier_depth(formula.body)
    if isinstance(formula, (And, Or)):
        return max((quantifier_depth(p) for p in formula.parts), default=0)
    if isinstance(formula, Implies):
        return max(
            quantifier_depth(formula.premise),
            quantifier_depth(formula.conclusion),
        )
    if isinstance(formula, (Exists, Forall)):
        return 1 + quantifier_depth(formula.body)
    return 0
