"""The NL-hardness reduction of Lemma 15, in its Fig. 3 concrete form.

Graph reachability reduces to the **complement** of ``CERTAINTY(q, FK)``
for the block-interfering problem ``q = {N(x, c, y), O(y)}``,
``FK = {N[3] → O}``:

* for every vertex ``v ≠ t``: a "satisfying" fact ``N(v, c, v)``;
* for every edge ``(u, w)``: a "falsifying" fact ``N(u, d, w)``;
* the fact ``O(s)`` seeds the obligation chain at the source.

There is a directed path ``s → t`` iff the instance is a **no**-instance:
the falsifying ⊕-repair follows the path, inserting ``O``-facts that keep
re-triggering blocks until the chain escapes at ``t``.

The same reduction powers Proposition 17's NL-hardness and benchmark E6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..db.facts import Fact
from ..db.instance import DatabaseInstance
from ..solvers.dual_horn import proposition17_query
from .digraph import DiGraph


@dataclass(frozen=True)
class ReachabilityInstance:
    """A reachability question ``(graph, source, target)``."""

    graph: DiGraph
    source: Hashable
    target: Hashable

    @property
    def answer(self) -> bool:
        """Ground truth by BFS."""
        return self.graph.reaches(self.source, self.target)


def fig3_problem() -> tuple[ConjunctiveQuery, ForeignKeySet]:
    """The target problem of the Fig. 3 reduction (same as Proposition 17)."""
    return proposition17_query("c")


def reduce_reachability(
    instance: ReachabilityInstance,
    satisfying_marker: object = "c",
    falsifying_marker: object = "d",
) -> DatabaseInstance:
    """Fig. 3: encode a reachability question as a database instance."""
    facts: list[Fact] = []
    for vertex in instance.graph.vertices:
        if vertex != instance.target:
            facts.append(
                Fact("N", (("v", vertex), satisfying_marker, ("v", vertex)), 1)
            )
    for source, target in instance.graph.edges:
        facts.append(
            Fact("N", (("v", source), falsifying_marker, ("v", target)), 1)
        )
    facts.append(Fact("O", (("v", instance.source),), 1))
    return DatabaseInstance(facts)


def decide_reachability_via_cqa(
    instance: ReachabilityInstance,
    certainty_decider,
) -> bool:
    """Answer reachability through any ``CERTAINTY`` decision procedure.

    ``certainty_decider(db) -> bool`` must decide the Fig. 3 problem; there
    is a path iff the reduced instance is a no-instance.
    """
    db = reduce_reachability(instance)
    return not certainty_decider(db)
