"""The P-hardness reduction of Proposition 17 (Appendix D.3).

DUAL HORN SAT reduces to the complement of ``CERTAINTY(q, FK)`` for
``q = {N(x, c, y), O(y)}``, ``FK = {N[3] → O}``:

* one fact ``O(⊤)`` anchors a designated always-true value;
* a purely positive clause ``p1 ∨ … ∨ pn`` becomes the block
  ``{N(i, c, ⊤)} ∪ {N(i, d, pj)}`` — the satisfying fact is *obligated*
  (``O(⊤)`` is present), so a falsifying repair must pick some ``pj``;
* a clause ``¬q ∨ p1 ∨ … ∨ pn`` becomes ``{N(i, c, q)} ∪ {N(i, d, pj)}`` —
  the block only obligates once ``O(q)`` has been inserted.

The formula is satisfiable iff the instance is a no-instance; combined with
:func:`repro.solvers.dual_horn.instance_to_dual_horn` (the membership
direction) this closes the P-completeness loop, which the test suite checks
by round-tripping random formulas.
"""

from __future__ import annotations

from ..db.facts import Fact
from ..db.instance import DatabaseInstance
from ..solvers.sat import DualHornFormula

_TOP = ("⊤",)


def _lit(variable: object) -> tuple[str, object]:
    return ("lit", variable)


def reduce_dual_horn(
    formula: DualHornFormula,
    satisfying_marker: object = "c",
    falsifying_marker: object = "d",
) -> DatabaseInstance:
    """Encode a dual-Horn formula as a Fig.-3-style database instance."""
    facts: list[Fact] = [Fact("O", (_TOP,), 1)]
    for index, clause in enumerate(formula.clauses):
        block_key = ("clause", index)
        head = _TOP if clause.negative is None else _lit(clause.negative)
        facts.append(Fact("N", (block_key, satisfying_marker, head), 1))
        for positive in clause.positives:
            facts.append(
                Fact("N", (block_key, falsifying_marker, _lit(positive)), 1)
            )
    return DatabaseInstance(facts)


def satisfiable_via_cqa(formula: DualHornFormula, certainty_decider) -> bool:
    """Decide satisfiability through any Fig.-3-problem ``CERTAINTY`` solver."""
    db = reduce_dual_horn(formula)
    return not certainty_decider(db)
