"""A minimal directed-graph substrate for the hardness reductions."""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable


@dataclass
class DiGraph:
    """Adjacency-set digraph over hashable vertices."""

    _adjacency: dict[Hashable, set[Hashable]] = field(default_factory=dict)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Hashable, Hashable]],
        vertices: Iterable[Hashable] = (),
    ) -> "DiGraph":
        """Build a graph from an edge list plus optional isolated vertices."""
        graph = cls()
        for vertex in vertices:
            graph.add_vertex(vertex)
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    def add_vertex(self, vertex: Hashable) -> None:
        """Ensure *vertex* exists."""
        self._adjacency.setdefault(vertex, set())

    def add_edge(self, source: Hashable, target: Hashable) -> None:
        """Insert the directed edge, creating vertices as needed."""
        self.add_vertex(source)
        self.add_vertex(target)
        self._adjacency[source].add(target)

    @property
    def vertices(self) -> list[Hashable]:
        """Vertices in deterministic order."""
        return sorted(self._adjacency, key=repr)

    @property
    def edges(self) -> list[tuple[Hashable, Hashable]]:
        """Edges in deterministic order."""
        return sorted(
            ((s, t) for s, targets in self._adjacency.items() for t in targets),
            key=repr,
        )

    def successors(self, vertex: Hashable) -> set[Hashable]:
        """Out-neighbours of *vertex*."""
        return set(self._adjacency.get(vertex, ()))

    def reaches(self, source: Hashable, target: Hashable) -> bool:
        """Breadth-first reachability (paths of length ≥ 0)."""
        if source == target:
            return source in self._adjacency
        seen = {source}
        frontier = deque([source])
        while frontier:
            current = frontier.popleft()
            for succ in self._adjacency.get(current, ()):
                if succ == target:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return False

    def with_edge(self, source: Hashable, target: Hashable) -> "DiGraph":
        """A copy of the graph with one extra edge (the original is kept)."""
        clone = DiGraph({v: set(t) for v, t in self._adjacency.items()})
        clone.add_edge(source, target)
        return clone


def random_dag(
    n_vertices: int, edge_probability: float, rng: random.Random
) -> DiGraph:
    """A random DAG on vertices ``0..n-1`` with edges along the order."""
    graph = DiGraph()
    for v in range(n_vertices):
        graph.add_vertex(v)
    for source in range(n_vertices):
        for target in range(source + 1, n_vertices):
            if rng.random() < edge_probability:
                graph.add_edge(source, target)
    return graph
