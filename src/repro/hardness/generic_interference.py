"""The generic NL-hardness construction of Lemma 15 (Appendix D.2).

Fig. 3 shows the reduction for one concrete query; the proof of Lemma 15
builds it for *every* block-interfering pair ``(q, FK)``.  Given a
block-interfering key ``N[j] → O`` with ``y = t_j``:

* ``C = {z ∈ vars(q) | K(q) ⊨ ∅ → z}`` — variables with forced values;
* per vertex ``u`` of the input graph, a valuation ``θ_u`` sending every
  ``z ∈ C`` to one shared constant and every other variable to a fresh
  constant ``c_{z,u}``;
* the database contains ``θ_s(q)`` (the seed), ``θ_u(q) ∖ {θ_u(O-atom)}``
  for every other vertex, and one *edge fact* ``A_{u,v}`` per graph edge —
  a copy of the ``N``-atom whose position ``j`` points at ``θ_v``'s world
  and whose remaining non-key positions are freshened when the
  interference came through condition (3a).

For a directed graph ``G`` obtained from an acyclic graph by adding the
edge ``t → s``, the instance is a **no**-instance iff ``s`` reaches ``t``.
This generalizes Fig. 3 (which is the special case ``q = {N(x,c,y), O(y)}``)
and is validated in the test suite against the exact ⊕-repair oracle for
both the (3a) and (3b) families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..core.atoms import Atom
from ..core.fds import FDSet
from ..core.foreign_keys import ForeignKeySet
from ..core.interference import InterferenceWitness, find_block_interference
from ..core.obedience import nonkey_positions
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable, is_variable
from ..db.facts import Fact
from ..db.instance import DatabaseInstance
from ..exceptions import QueryError
from .digraph import DiGraph

_SHARED = ("θc",)


@dataclass(frozen=True)
class GenericReduction:
    """A prepared Lemma 15 reduction for one block-interfering problem."""

    query: ConjunctiveQuery
    fks: ForeignKeySet
    witness: InterferenceWitness

    @property
    def n_atom(self) -> Atom:
        """The referencing atom ``N``."""
        return self.query.atom(self.witness.foreign_key.source)

    @property
    def o_atom(self) -> Atom:
        """The referenced obedient atom ``O``."""
        return self.query.atom(self.witness.foreign_key.target)

    def _forced(self) -> frozenset[Variable]:
        return FDSet.of_query(self.query).constant_variables()

    def _theta(self, vertex: Hashable):
        forced = self._forced()

        def value(term):
            if isinstance(term, Constant):
                return term.value
            if not is_variable(term):
                raise QueryError(
                    f"generic reduction does not support parameters: {term!r}"
                )
            if term in forced:
                return _SHARED
            return ("θ", term.name, vertex)

        return value

    def _ground(self, atom: Atom, theta) -> Fact:
        return Fact(
            atom.relation, tuple(theta(t) for t in atom.terms), atom.key_size
        )

    def _edge_fact(self, u: Hashable, v: Hashable) -> Fact:
        """``A_{u,v}``: the N-fact carrying the obligation from u to v."""
        atom = self.n_atom
        fk = self.witness.foreign_key
        theta_u = self._theta(u)
        theta_v = self._theta(v)
        if self.witness.via == "3a":
            freshened = nonkey_positions(atom) - {fk.source_position}
        else:
            freshened = frozenset()
        values = []
        for index, term in enumerate(atom.terms, start=1):
            if (atom.relation, index) in freshened:
                values.append(("edge", u, v, index))
            elif index == fk.position:
                values.append(theta_v(term))
            else:
                values.append(theta_u(term))
        return Fact(atom.relation, tuple(values), atom.key_size)

    def build(
        self, graph: DiGraph, source: Hashable, target: Hashable
    ) -> DatabaseInstance:
        """The database for graph ``G + (target → source)``.

        The input graph must be acyclic; the back edge the proof adds is
        inserted here.
        """
        closed = graph.with_edge(target, source)
        facts: set[Fact] = set()
        o_fact_of = {}
        for vertex in closed.vertices:
            theta = self._theta(vertex)
            for atom in self.query.atoms:
                fact = self._ground(atom, theta)
                if atom.relation == self.o_atom.relation:
                    o_fact_of[vertex] = fact
                    if vertex == source:
                        facts.add(fact)
                else:
                    facts.add(fact)
        for u, v in closed.edges:
            facts.add(self._edge_fact(u, v))
        return DatabaseInstance(facts)

    def decide_reachability(
        self, graph: DiGraph, source: Hashable, target: Hashable,
        certainty_decider,
    ) -> bool:
        """Path ``source → target`` iff the built instance is a no-instance."""
        db = self.build(graph, source, target)
        return not certainty_decider(db)


def generic_reduction(
    query: ConjunctiveQuery, fks: ForeignKeySet
) -> GenericReduction:
    """Prepare the Lemma 15 construction; requires block-interference."""
    witness = find_block_interference(query, fks)
    if witness is None:
        raise QueryError(
            f"(q, FK) has no block-interference; Lemma 15 does not apply to "
            f"{query!r}"
        )
    return GenericReduction(query, fks, witness)
