"""Executable hardness reductions (Lemmas 14 and 15, Propositions 16/17)."""

from .digraph import DiGraph, random_dag
from .dual_horn_reduction import reduce_dual_horn, satisfiable_via_cqa
from .generic_interference import GenericReduction, generic_reduction
from .lhardness import (
    AttackCycleGadget,
    build_gadget_instance,
    find_attack_cycle,
    theta,
)
from .reachability_reduction import (
    ReachabilityInstance,
    decide_reachability_via_cqa,
    fig3_problem,
    reduce_reachability,
)

__all__ = [
    "AttackCycleGadget", "DiGraph", "GenericReduction",
    "ReachabilityInstance", "generic_reduction",
    "build_gadget_instance", "decide_reachability_via_cqa",
    "fig3_problem", "find_attack_cycle", "random_dag",
    "reduce_dual_horn", "reduce_reachability", "satisfiable_via_cqa",
    "theta",
]
