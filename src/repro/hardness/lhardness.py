"""The L-hardness gadget of Lemma 14.

For a query with a cyclic attack graph there are atoms ``F ⇝ G ⇝ F``.  The
Koutris–Wijsen construction instantiates the query with the valuation

    ``Θ^a_b(x) = a``        if ``x ∈ F⁺ \\ G⁺``,
    ``Θ^a_b(x) = b``        if ``x ∈ G⁺ \\ F⁺``,
    ``Θ^a_b(x) = ⊥``        if ``x ∈ F⁺ ∩ G⁺``,
    ``Θ^a_b(x) = (a, b)``   otherwise,

and, given two binary relations ``R`` and ``S`` of pairs, builds

    ``db_{R,S} = Θ(q∖{F,G})[R∪S] ∪ Θ(F)[R] ∪ Θ(G)[S]``.

Lemma 14 shows ``db_{R,S}`` is a no-instance of ``CERTAINTY(q, PK)`` iff it
is one of ``CERTAINTY(q, PK ∪ FK)`` — i.e. adding foreign keys does not
erase the known L-hardness.  This module makes the gadget executable so the
equivalence can be checked instance by instance against the ⊕-oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.atoms import Atom
from ..core.attack_graph import AttackGraph
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable, is_variable
from ..db.facts import Fact
from ..db.instance import DatabaseInstance
from ..exceptions import QueryError


@dataclass(frozen=True)
class AttackCycleGadget:
    """The two mutually attacking atoms and their ``⁺``-closures."""

    query: ConjunctiveQuery
    f_atom: Atom
    g_atom: Atom
    f_plus: frozenset[Variable]
    g_plus: frozenset[Variable]


def find_attack_cycle(query: ConjunctiveQuery) -> AttackCycleGadget:
    """Locate ``F ⇝ G ⇝ F`` (exists whenever the attack graph is cyclic)."""
    graph = AttackGraph(query)
    pair = graph.two_cycle()
    if pair is None:
        raise QueryError(f"attack graph of {query!r} is acyclic")
    f_atom, g_atom = pair
    return AttackCycleGadget(
        query=query,
        f_atom=f_atom,
        g_atom=g_atom,
        f_plus=graph.plus(f_atom.relation),
        g_plus=graph.plus(g_atom.relation),
    )


def theta(gadget: AttackCycleGadget, a: object, b: object):
    """The valuation ``Θ^a_b`` as a variable → value mapping."""

    def value(variable: Variable) -> object:
        in_f = variable in gadget.f_plus
        in_g = variable in gadget.g_plus
        if in_f and in_g:
            return ("⊥",)
        if in_f:
            a_value = a
            return a_value
        if in_g:
            return b
        return (a, b)

    return {v: value(v) for v in gadget.query.variables}


def _ground(atom: Atom, valuation: dict[Variable, object]) -> Fact:
    values = []
    for term in atom.terms:
        if is_variable(term):
            values.append(valuation[term])
        elif isinstance(term, Constant):
            values.append(term.value)
        else:
            raise QueryError(
                f"Lemma 14 gadget does not support parameters ({term!r})"
            )
    return Fact(atom.relation, tuple(values), atom.key_size)


def build_gadget_instance(
    gadget: AttackCycleGadget,
    r_pairs: Iterable[tuple[object, object]],
    s_pairs: Iterable[tuple[object, object]],
) -> DatabaseInstance:
    """``db_{R,S}`` for the given pair sets."""
    facts: set[Fact] = set()
    r_pairs = list(r_pairs)
    s_pairs = list(s_pairs)
    others = [
        atom
        for atom in gadget.query.atoms
        if atom.relation
        not in (gadget.f_atom.relation, gadget.g_atom.relation)
    ]
    for a, b in r_pairs + s_pairs:
        valuation = theta(gadget, a, b)
        for atom in others:
            facts.add(_ground(atom, valuation))
    for a, b in r_pairs:
        facts.add(_ground(gadget.f_atom, theta(gadget, a, b)))
    for a, b in s_pairs:
        facts.add(_ground(gadget.g_atom, theta(gadget, a, b)))
    return DatabaseInstance(facts)
