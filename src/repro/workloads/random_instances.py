"""Random inconsistent-instance generation for arbitrary problems.

The generator draws facts relation by relation with controllable block
structure: expected number of blocks, block-size distribution (primary-key
violations), and — when foreign keys are present — a dangling rate that
decides how often referenced key values are drawn fresh instead of from the
referenced relation's key pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.schema import Schema
from ..db.facts import Fact
from ..db.instance import DatabaseInstance


@dataclass(frozen=True)
class RandomInstanceParams:
    """Knobs of the random instance generator."""

    blocks_per_relation: int = 3
    max_block_size: int = 3
    domain_size: int = 6
    dangling_rate: float = 0.3
    constant_pool: tuple[object, ...] = ()


def random_instance(
    schema: Schema,
    params: RandomInstanceParams,
    rng: random.Random,
    fks: ForeignKeySet | None = None,
) -> DatabaseInstance:
    """Draw one inconsistent instance over *schema*.

    Values are drawn from ``0..domain_size-1`` plus the *constant_pool*
    (pass the query's constants so that facts can actually match constant
    atoms).  When *fks* is given, non-key positions that are foreign-key
    sources preferentially reuse values that head the referenced relation,
    unless a ``dangling_rate`` coin flip injects a fresh value.
    """
    pool: list[object] = list(range(params.domain_size))
    pool.extend(params.constant_pool)
    facts: list[Fact] = []
    key_heads: dict[str, list[object]] = {}

    ordered = sorted(schema)
    for relation in ordered:
        sig = schema[relation]
        heads: list[object] = []
        for _ in range(rng.randint(0, params.blocks_per_relation)):
            key = tuple(rng.choice(pool) for _ in range(sig.key_size))
            heads.append(key[0])
            for _ in range(rng.randint(1, params.max_block_size)):
                rest = tuple(
                    rng.choice(pool)
                    for _ in range(sig.arity - sig.key_size)
                )
                facts.append(Fact(relation, key + rest, sig.key_size))
        key_heads[relation] = heads

    if fks is not None and facts:
        # Rewrite some referencing positions to actually hit referenced keys.
        rewritten: list[Fact] = []
        for fact in facts:
            values = list(fact.values)
            for fk in fks.outgoing(fact.relation):
                heads = key_heads.get(fk.target, [])
                if heads and rng.random() > params.dangling_rate:
                    values[fk.position - 1] = rng.choice(heads)
            rewritten.append(Fact(fact.relation, tuple(values), fact.key_size))
        facts = rewritten
    return DatabaseInstance(facts)


def random_instances_for_query(
    query: ConjunctiveQuery,
    fks: ForeignKeySet | None,
    count: int,
    seed: int = 0,
    params: RandomInstanceParams | None = None,
):
    """Yield *count* random instances tailored to *query*'s constants."""
    rng = random.Random(seed)
    base = params or RandomInstanceParams()
    tailored = RandomInstanceParams(
        blocks_per_relation=base.blocks_per_relation,
        max_block_size=base.max_block_size,
        domain_size=base.domain_size,
        dangling_rate=base.dangling_rate,
        constant_pool=tuple(c.value for c in query.constants),
    )
    schema = query.schema()
    for _ in range(count):
        yield random_instance(schema, tailored, rng, fks)
