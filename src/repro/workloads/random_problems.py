"""Random ``(q, FK)`` problem generation.

Draws self-join-free queries with controlled shape (arities, key sizes,
constants, repeated variables) together with unary foreign-key sets that
are *about* the query by construction: a foreign key ``R[i] → S`` is only
emitted when the term at ``(R, i)`` equals the term at ``(S, 1)`` and ``S``
has key size 1 — so the generator picks the shared term first and builds
both atoms around it.

Used by the fuzzing tests (random FO problems must agree three ways) and
by benchmark E7/E11 sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.atoms import Atom
from ..core.foreign_keys import ForeignKey, ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Term, Variable


@dataclass(frozen=True)
class ProblemShape:
    """Knobs of the random problem generator."""

    n_atoms: int = 3
    max_arity: int = 3
    n_variables: int = 4
    constant_probability: float = 0.2
    fk_probability: float = 0.6
    composite_key_probability: float = 0.2


def random_problem(
    shape: ProblemShape, rng: random.Random
) -> tuple[ConjunctiveQuery, ForeignKeySet]:
    """One random sjfBCQ with a foreign-key set about it."""
    variable_pool = [Variable(f"x{i}") for i in range(shape.n_variables)]
    constant_pool = [Constant("c"), Constant("d")]

    def draw_term() -> Term:
        if rng.random() < shape.constant_probability:
            return rng.choice(constant_pool)
        return rng.choice(variable_pool)

    atoms: list[Atom] = []
    for index in range(shape.n_atoms):
        arity = rng.randint(1, shape.max_arity)
        if arity > 1 and rng.random() < shape.composite_key_probability:
            key_size = rng.randint(2, arity)
        else:
            key_size = 1
        terms = tuple(draw_term() for _ in range(arity))
        atoms.append(Atom(f"R{index}", terms, key_size))
    query = ConjunctiveQuery(atoms)
    schema = query.schema()

    fks: set[ForeignKey] = set()
    for source in atoms:
        for position in range(1, source.arity + 1):
            if rng.random() >= shape.fk_probability:
                continue
            term = source.term_at(position)
            # candidate targets: key-size-1 atoms whose first term matches.
            targets = [
                target
                for target in atoms
                if target.key_size == 1
                and target.term_at(1) == term
            ]
            if not targets:
                continue
            target = rng.choice(targets)
            if target.relation == source.relation and position == 1:
                continue  # trivial
            fks.add(ForeignKey(source.relation, position, target.relation))
    return query, ForeignKeySet(fks, schema)


def random_fo_problems(
    count: int,
    shape: ProblemShape | None = None,
    seed: int = 0,
    max_attempts: int = 10_000,
):
    """Yield *count* random problems classified in FO by Theorem 12."""
    from ..core.classify import classify

    shape = shape or ProblemShape()
    rng = random.Random(seed)
    produced = 0
    for _ in range(max_attempts):
        if produced == count:
            return
        query, fks = random_problem(shape, rng)
        if not fks.is_about(query):
            continue
        if classify(query, fks).in_fo:
            produced += 1
            yield query, fks
