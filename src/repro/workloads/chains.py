"""The Section-4 block-interference chain family.

For ``q = {N(x, c, y), O(y)}`` with ``FK = {N[3] → O}``, the paper opens
Section 4 with a parametric instance whose certainty hinges on the very
last block: the chain

    ``N(b1,c,1), N(b1,d,2), N(b2,c,2), N(b2,d,3), …, N(b_{n+1}, □, n+1)``

plus ``O(1)`` is a *yes*-instance iff ``□ = c``.  Dropping ``O(1)`` always
yields a *no*-instance (the empty repair).  The family demonstrates the
non-locality that makes block-interference NL-hard, and scales benchmark
E2 / E9 workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..db.facts import Fact
from ..db.instance import DatabaseInstance
from ..solvers.dual_horn import proposition17_query


@dataclass(frozen=True)
class ChainParams:
    """Length and final-block marker of a Section-4 chain."""

    length: int
    final_marker: object = "c"   # the □ of the paper; "c" ⇒ yes-instance
    with_seed_fact: bool = True  # O(1); dropping it ⇒ no-instance


def chain_problem() -> tuple[ConjunctiveQuery, ForeignKeySet]:
    """The chain family's fixed problem (same as Proposition 17)."""
    return proposition17_query("c")


def chain_instance(params: ChainParams) -> DatabaseInstance:
    """The Section-4 database for the given parameters."""
    facts: list[Fact] = []
    n = params.length
    for i in range(1, n + 1):
        facts.append(Fact("N", (f"b{i}", "c", i), 1))
        facts.append(Fact("N", (f"b{i}", "d", i + 1), 1))
    facts.append(Fact("N", (f"b{n + 1}", params.final_marker, n + 1), 1))
    if params.with_seed_fact:
        facts.append(Fact("O", (1,), 1))
    return DatabaseInstance(facts)


def expected_certainty(params: ChainParams) -> bool:
    """The paper's closed-form answer for a chain instance."""
    return params.with_seed_fact and params.final_marker == "c"


def branching_chain_instance(
    length: int, width: int, final_marker: object = "c"
) -> DatabaseInstance:
    """A widened variant: each block offers *width* falsifying successors.

    All falsifying edges of level ``i`` point into level ``i+1`` blocks, so
    the answer stays the closed form of the linear chain while the dual-Horn
    encoding gains clauses of width *width* — useful for stressing the
    Proposition 17 solver.
    """
    facts: list[Fact] = []
    for i in range(1, length + 1):
        facts.append(Fact("N", ((i, 0), "c", ("o", i)), 1))
        for w in range(width):
            facts.append(Fact("N", ((i, 0), "d", ("o", i + 1)), 1))
            facts.append(Fact("N", ((i, w), "d", ("o", i + 1)), 1))
            if w:
                facts.append(Fact("N", ((i, w), "c", ("o", i)), 1))
    facts.append(Fact("N", ((length + 1, 0), final_marker, ("o", length + 1)), 1))
    facts.append(Fact("O", (("o", 1),), 1))
    return DatabaseInstance(facts)
