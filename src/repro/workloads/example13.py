"""Example 13: three queries a constant apart, three different complexities.

``q1 = {N(x, u, y), O(y, w)}`` is in FO; ``q2 = q1[u→c]`` is NL-hard;
``q3 = q1[u→c, w→c]`` is back in FO — replacing a variable by a constant
can move the complexity in either direction, the signature phenomenon of
foreign keys.  The module also builds the two-row instance the paper uses
to show that the rewriting of ``CERTAINTY(q1, FK)`` differs from that of
``CERTAINTY(q1)``.
"""

from __future__ import annotations

from ..core.classify import ComplexityVerdict
from ..core.foreign_keys import ForeignKeySet, fk_set
from ..core.query import ConjunctiveQuery, parse_query
from ..db.facts import Fact
from ..db.instance import DatabaseInstance


def example13_problems() -> list[
    tuple[str, ConjunctiveQuery, ForeignKeySet, ComplexityVerdict]
]:
    """The three problems with their paper-stated verdicts."""
    q1 = parse_query("N(x | u, y)", "O(y | w)")
    q2 = parse_query("N(x | 'c', y)", "O(y | w)")
    q3 = parse_query("N(x | 'c', y)", "O(y | 'c')")
    return [
        ("q1", q1, fk_set(q1, "N[3]->O"), ComplexityVerdict.FO),
        ("q2", q2, fk_set(q2, "N[3]->O"), ComplexityVerdict.NL_HARD),
        ("q3", q3, fk_set(q3, "N[3]->O"), ComplexityVerdict.FO),
    ]


def q1_distinguishing_instance() -> DatabaseInstance:
    """Yes-instance of ``CERTAINTY(q1, FK)`` but no-instance of
    ``CERTAINTY(q1)`` — the paper's two-row ``N`` table with one ``O``-row.
    """
    return DatabaseInstance(
        [
            Fact("N", ("c", 1, "a"), 1),
            Fact("N", ("c", 2, "b"), 1),
            Fact("O", ("a", 3), 1),
        ]
    )
