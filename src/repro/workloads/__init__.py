"""Workload generators: every instance family the paper discusses, plus
parametric synthetic generators for the benchmark harness."""

from .bibliographic import (
    BibliographyParams,
    fig1_instance,
    intro_query_q0,
    intro_query_q1,
    synthetic_bibliography,
)
from .catalog import (
    CatalogEntry,
    fo_catalog,
    hard_catalog,
    paper_catalog,
)
from .chains import (
    ChainParams,
    branching_chain_instance,
    chain_instance,
    chain_problem,
    expected_certainty,
)
from .example13 import example13_problems, q1_distinguishing_instance
from .graphs import layered_dag, proposition16_instance
from .random_instances import (
    RandomInstanceParams,
    random_instance,
    random_instances_for_query,
)

__all__ = [
    "BibliographyParams", "CatalogEntry", "ChainParams",
    "branching_chain_instance", "chain_instance", "chain_problem",
    "example13_problems", "expected_certainty", "fig1_instance",
    "fo_catalog", "hard_catalog", "intro_query_q0", "intro_query_q1",
    "layered_dag", "paper_catalog", "proposition16_instance",
    "q1_distinguishing_instance", "random_instance",
    "random_instances_for_query", "RandomInstanceParams",
    "synthetic_bibliography",
]

from .random_problems import (  # noqa: E402
    ProblemShape,
    random_fo_problems,
    random_problem,
)
from .streams import (  # noqa: E402
    StreamParams,
    WorkloadItem,
    mixed_problem_stream,
)

__all__ += [
    "ProblemShape", "StreamParams", "WorkloadItem", "mixed_problem_stream",
    "random_fo_problems", "random_problem",
]
