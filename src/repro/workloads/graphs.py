"""Graph-shaped workloads for the reachability experiments (E6, E8).

Layered DAGs with controlled path existence (so benchmark series can sweep
"path exists" against "path misses"), plus direct generators of
Proposition-16-shaped instances.
"""

from __future__ import annotations

import random

from ..db.facts import Fact
from ..db.instance import DatabaseInstance
from ..hardness.digraph import DiGraph


def layered_dag(
    n_layers: int,
    width: int,
    rng: random.Random,
    connect_probability: float = 0.5,
    guarantee_path: bool | None = None,
) -> tuple[DiGraph, object, object]:
    """A layered DAG with distinguished source and target.

    Vertices ``(layer, slot)``; edges only between consecutive layers.
    With ``guarantee_path=True`` one through-path is forced; with ``False``
    the target's in-edges are removed.
    """
    graph = DiGraph()
    source = (0, 0)
    target = (n_layers - 1, 0)
    for layer in range(n_layers):
        for slot in range(width):
            graph.add_vertex((layer, slot))
    for layer in range(n_layers - 1):
        for slot in range(width):
            for nxt in range(width):
                if rng.random() < connect_probability:
                    graph.add_edge((layer, slot), (layer + 1, nxt))
    if guarantee_path is True:
        for layer in range(n_layers - 1):
            graph.add_edge((layer, 0), (layer + 1, 0))
    elif guarantee_path is False:
        pruned = DiGraph.from_edges(
            (
                (s, t)
                for (s, t) in graph.edges
                if t != target
            ),
            vertices=graph.vertices,
        )
        graph = pruned
    return graph, source, target


def proposition16_instance(
    n_vertices: int,
    rng: random.Random,
    edge_probability: float = 0.4,
    marked_fraction: float = 0.3,
    escape_fraction: float = 0.2,
) -> DatabaseInstance:
    """A random instance of the Proposition 16 problem.

    Diagonal facts ``N(c, c)`` make vertices; off-diagonal facts make
    obligation edges; a fraction of vertices gets marked by ``O``-facts and
    a fraction gets an escape successor outside the diagonal.
    """
    facts: list[Fact] = []
    for v in range(n_vertices):
        facts.append(Fact("N", (v, v), 1))
        for w in range(n_vertices):
            if w != v and rng.random() < edge_probability:
                facts.append(Fact("N", (v, w), 1))
        if rng.random() < escape_fraction:
            # escape targets are strings: never equal to a diagonal int
            # vertex, and (unlike tuples) wire-serializable, so streamed
            # instances can cross the repro.serve protocol
            facts.append(Fact("N", (v, f"esc:{v}"), 1))
        if rng.random() < marked_fraction:
            facts.append(Fact("O", (v,), 1))
    return DatabaseInstance(facts)
