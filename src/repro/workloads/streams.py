"""Mixed-class problem streams for the certainty engine.

Serving traffic is not one problem over many instances — it is a stream of
``(q, FK, instances)`` requests mixing all three trichotomy classes, with
popular problems recurring.  This generator models that:

* random problems of every Theorem 12 class (drawn via
  :func:`repro.workloads.random_problems.random_problem`);
* the paper's fixed polynomial problems (Propositions 16 and 17) pinned
  into the mix so the reachability and dual-Horn backends get traffic;
* a configurable *repeat rate* re-emitting earlier problems with fresh
  instances — the locality the engine's plan cache exploits.

Instances stay deliberately small (few blocks, small blocks) so even the
exhaustive fallback backends answer quickly; the stream is the engine's
correctness corpus and throughput workload, not a stress test of any one
solver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from ..core.classify import ComplexityVerdict, classify
from ..core.foreign_keys import ForeignKeySet
from ..core.query import ConjunctiveQuery
from ..db.instance import DatabaseInstance
from .graphs import proposition16_instance
from .random_instances import RandomInstanceParams, random_instances_for_query
from .random_problems import ProblemShape, random_problem


def _small_instances() -> RandomInstanceParams:
    return RandomInstanceParams(
        blocks_per_relation=2, max_block_size=2, domain_size=4
    )


@dataclass(frozen=True)
class StreamParams:
    """Knobs of the mixed problem stream."""

    n_problems: int = 12
    instances_per_problem: int = 4
    seed: int = 0
    repeat_rate: float = 0.25
    pinned_every: int = 4
    shape: ProblemShape = field(default_factory=ProblemShape)
    instance_params: RandomInstanceParams = field(
        default_factory=_small_instances
    )


@dataclass(frozen=True)
class WorkloadItem:
    """One request of the stream: a problem plus its instance burst."""

    label: str
    query: ConjunctiveQuery
    fks: ForeignKeySet
    verdict: ComplexityVerdict
    instances: tuple[DatabaseInstance, ...]

    @property
    def problem(self) -> "Problem":
        """The request as a first-class :class:`repro.api.Problem`."""
        from ..api.problem import Problem

        return Problem(self.query, self.fks, name=self.label)


def _pinned_problems() -> list[tuple[str, ConjunctiveQuery, ForeignKeySet]]:
    from ..solvers.dual_horn import proposition17_query
    from ..solvers.reachability import proposition16_query

    q16, fk16 = proposition16_query()
    q17, fk17 = proposition17_query()
    return [("prop16", q16, fk16), ("prop17", q17, fk17)]


def mixed_problem_stream(
    params: StreamParams | None = None,
) -> Iterator[WorkloadItem]:
    """Yield ``params.n_problems`` workload items (see module docstring)."""
    params = params or StreamParams()
    rng = random.Random(params.seed)
    pinned = _pinned_problems()
    history: list[tuple[str, ConjunctiveQuery, ForeignKeySet]] = []
    emitted = 0
    pinned_index = 0
    while emitted < params.n_problems:
        if (
            params.pinned_every
            and emitted % params.pinned_every == params.pinned_every - 1
        ):
            label, query, fks = pinned[pinned_index % len(pinned)]
            pinned_index += 1
        elif history and rng.random() < params.repeat_rate:
            label, query, fks = rng.choice(history)
        else:
            query, fks = _draw_problem(params.shape, rng)
            label = f"rand-{emitted}"
        history.append((label, query, fks))
        yield WorkloadItem(
            label=label,
            query=query,
            fks=fks,
            verdict=classify(query, fks).verdict,
            instances=tuple(_instances_for(label, query, fks, params, rng)),
        )
        emitted += 1


def _draw_problem(
    shape: ProblemShape, rng: random.Random
) -> tuple[ConjunctiveQuery, ForeignKeySet]:
    while True:
        query, fks = random_problem(shape, rng)
        if fks.is_about(query):
            return query, fks


def _instances_for(
    label: str,
    query: ConjunctiveQuery,
    fks: ForeignKeySet,
    params: StreamParams,
    rng: random.Random,
) -> Iterator[DatabaseInstance]:
    if label == "prop16":
        for _ in range(params.instances_per_problem):
            yield proposition16_instance(5, rng, marked_fraction=0.5)
        return
    yield from random_instances_for_query(
        query,
        fks,
        params.instances_per_problem,
        seed=rng.randrange(2**32),
        params=params.instance_params,
    )
