"""A catalog of classified problems drawn from the paper.

Every worked example, proposition and discussion point of the paper that
fixes a concrete ``(q, FK)`` pair appears here with its expected Theorem 12
verdict and the paper location it comes from.  Tests iterate the catalog;
the complexity-atlas example prints it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.classify import ComplexityVerdict
from ..core.foreign_keys import ForeignKeySet, fk_set
from ..core.query import ConjunctiveQuery, parse_query

FO = ComplexityVerdict.FO
L_HARD = ComplexityVerdict.L_HARD
NL_HARD = ComplexityVerdict.NL_HARD


@dataclass(frozen=True)
class CatalogEntry:
    """One classified problem with provenance."""

    label: str
    source: str
    query: ConjunctiveQuery
    fks: ForeignKeySet
    expected: ComplexityVerdict
    in_fo: bool

    @property
    def rewritable(self) -> bool:
        """Alias of :attr:`in_fo`."""
        return self.in_fo


def _entry(label: str, source: str, atoms: list[str], fk_texts: list[str],
           expected: ComplexityVerdict) -> CatalogEntry:
    query = parse_query(*atoms)
    fks = fk_set(query, *fk_texts)
    return CatalogEntry(
        label=label,
        source=source,
        query=query,
        fks=fks,
        expected=expected,
        in_fo=expected is FO,
    )


def paper_catalog() -> list[CatalogEntry]:
    """Every concrete classified problem from the paper."""
    return [
        _entry(
            "intro-q0", "Section 1, Fig. 1",
            ["DOCS(x | t, '2016')", "R(x, y |)", "AUTHORS(y | 'Jeff', z)"],
            ["R[1]->DOCS", "R[2]->AUTHORS"], FO,
        ),
        _entry(
            "intro-q1", "Section 1",
            ["DOCS(x | t, '2016')", "R(x, 'o1' |)", "AUTHORS('o1' | u, z)"],
            ["R[1]->DOCS", "R[2]->AUTHORS"], FO,
        ),
        _entry(
            "sec4-chain", "Section 4 / Proposition 17",
            ["N(x | 'c', y)", "O(y |)"], ["N[3]->O"], NL_HARD,
        ),
        _entry(
            "example4", "Example 4",
            ["R(x | y)", "S(y | z)", "T(z |)"], ["R[2]->S", "S[2]->T"], FO,
        ),
        _entry(
            "example10", "Examples 6 and 10",
            ["N(x | 'c', y)", "O(y |)"], ["N[3]->O"], NL_HARD,
        ),
        _entry(
            "example11", "Example 11",
            ["Np(x | y)", "O(y |)", "T(x | y)"], ["Np[2]->O"], NL_HARD,
        ),
        _entry(
            "example11-forced", "Example 11 (with R(a, x))",
            ["Np(x | y)", "O(y |)", "T(x | y)", "R('a' | x)"],
            ["Np[2]->O"], FO,
        ),
        _entry(
            "example13-q1", "Example 13",
            ["N(x | u, y)", "O(y | w)"], ["N[3]->O"], FO,
        ),
        _entry(
            "example13-q2", "Example 13",
            ["N(x | 'c', y)", "O(y | w)"], ["N[3]->O"], NL_HARD,
        ),
        _entry(
            "example13-q3", "Example 13",
            ["N(x | 'c', y)", "O(y | 'c')"], ["N[3]->O"], FO,
        ),
        _entry(
            "lemma14-cycle", "Section 6",
            ["R(x | y)", "S(y | x)"], ["R[2]->S", "S[2]->R"], L_HARD,
        ),
        _entry(
            "lemma14-cycle-nofk", "Section 6 (FK = ∅)",
            ["R(x | y)", "S(y | x)"], [], L_HARD,
        ),
        _entry(
            "prop16", "Proposition 16",
            ["N(x | x)", "O(x |)"], ["N[2]->O"], NL_HARD,
        ),
        _entry(
            "sec8-rewriting", "Section 8",
            ["N('c' | y)", "O(y |)", "P(y |)"], ["N[2]->O"], FO,
        ),
        _entry(
            # Example 27's q = {N(x,x), O(x,y)} with FK = {N[2]->N, N[2]->O};
            # N[2]->N makes the dependency graph cyclic.
            "example27-selfloop", "Example 27 (cyclic dependency graph)",
            ["N(x | x)", "O(x | y)"], ["N[2]->N", "N[2]->O"], NL_HARD,
        ),
        _entry(
            "example43", "Example 43 (Lemma 40 illustration)",
            ["Y(y |)", "N(x | y, u)", "O(y |)"], ["N[2]->O"], FO,
        ),
    ]


def fo_catalog() -> list[CatalogEntry]:
    """The catalog entries admitting a consistent FO rewriting."""
    return [e for e in paper_catalog() if e.in_fo]


def hard_catalog() -> list[CatalogEntry]:
    """The catalog entries outside FO."""
    return [e for e in paper_catalog() if not e.in_fo]
