"""The bibliographic scenario of Fig. 1 and the introduction.

Relations: ``DOCS(doi | title, year)``, ``AUTHORS(orcid | first, last)``,
``R(doi, orcid |)`` (composite all-key) with foreign keys
``FK0 = {R[1] → DOCS, R[2] → AUTHORS}``.  The module exposes the exact
Fig. 1 instance, the two introduction queries ``q0`` and ``q1``, and a
parametric generator producing larger inconsistent bibliographies with the
same flavour of violations (duplicate ORCID rows, dangling authorship
facts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.foreign_keys import ForeignKeySet, fk_set
from ..core.query import ConjunctiveQuery, parse_query
from ..db.facts import Fact
from ..db.instance import DatabaseInstance


def fig1_instance() -> DatabaseInstance:
    """The inconsistent database of Fig. 1, verbatim."""
    return DatabaseInstance(
        [
            Fact("R", ("d1", "o1"), 2),
            Fact("R", ("d1", "o2"), 2),
            Fact("R", ("d1", "o3"), 2),
            Fact("AUTHORS", ("o1", "Jeff", "Ullman"), 1),
            Fact("AUTHORS", ("o1", "Jeffrey", "Ullman"), 1),
            Fact("AUTHORS", ("o2", "Jonathan", "Ullman"), 1),
            Fact("DOCS", ("d1", "Some pairs problems", "2016"), 1),
        ]
    )


def intro_query_q0() -> tuple[ConjunctiveQuery, ForeignKeySet]:
    """"Does some paper of 2016 have an author with first name Jeff?"."""
    query = parse_query(
        "DOCS(x | t, '2016')",
        "R(x, y |)",
        "AUTHORS(y | 'Jeff', z)",
    )
    return query, fk_set(query, "R[1]->DOCS", "R[2]->AUTHORS")


def intro_query_q1() -> tuple[ConjunctiveQuery, ForeignKeySet]:
    """"Did the author with ORCID o1 publish some paper in 2016?"

    Note the third atom: without it, ``FK0`` would not be *about* the query
    (the paper's discussion under Theorem 1).
    """
    query = parse_query(
        "DOCS(x | t, '2016')",
        "R(x, 'o1' |)",
        "AUTHORS('o1' | u, z)",
    )
    return query, fk_set(query, "R[1]->DOCS", "R[2]->AUTHORS")


@dataclass(frozen=True)
class BibliographyParams:
    """Knobs of the synthetic bibliography generator."""

    n_docs: int = 20
    n_authors: int = 20
    n_authorships: int = 40
    duplicate_author_rate: float = 0.2
    dangling_rate: float = 0.15
    years: tuple[str, ...] = ("2015", "2016", "2017")
    first_names: tuple[str, ...] = ("Jeff", "Jeffrey", "Jonathan", "Ada", "Edgar")
    last_names: tuple[str, ...] = ("Ullman", "Lovelace", "Codd")


def synthetic_bibliography(
    params: BibliographyParams, seed: int = 0
) -> DatabaseInstance:
    """A larger inconsistent bibliography with Fig.-1-style violations.

    Primary-key violations come from duplicated AUTHORS rows with diverging
    first names; foreign-key violations from authorship facts referencing
    ORCIDs that were never inserted.
    """
    rng = random.Random(seed)
    facts: list[Fact] = []
    for d in range(params.n_docs):
        facts.append(
            Fact(
                "DOCS",
                (f"d{d}", f"Title {d}", rng.choice(params.years)),
                1,
            )
        )
    for o in range(params.n_authors):
        first = rng.choice(params.first_names)
        last = rng.choice(params.last_names)
        facts.append(Fact("AUTHORS", (f"o{o}", first, last), 1))
        if rng.random() < params.duplicate_author_rate:
            other = rng.choice(
                [n for n in params.first_names if n != first]
            )
            facts.append(Fact("AUTHORS", (f"o{o}", other, last), 1))
    for _ in range(params.n_authorships):
        doc = f"d{rng.randrange(params.n_docs)}"
        if rng.random() < params.dangling_rate:
            orcid = f"ghost{rng.randrange(params.n_authors)}"
        else:
            orcid = f"o{rng.randrange(params.n_authors)}"
        facts.append(Fact("R", (doc, orcid), 2))
    return DatabaseInstance(facts)
