"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """Malformed signature, unknown relation, or conflicting declarations."""


class QueryError(ReproError):
    """Malformed query: self-joins where forbidden, arity mismatches, ..."""


class ForeignKeyError(ReproError):
    """Malformed foreign key, or a foreign-key set that is not *about* a query."""


class ProblemFormatError(ReproError):
    """A serialized :class:`repro.api.Problem` could not be decoded: invalid
    JSON, unknown format/version, or a malformed atom/term/foreign-key
    entry."""


class InstanceFormatError(ReproError):
    """A serialized :class:`repro.db.DatabaseInstance` could not be decoded:
    invalid JSON, unknown format/version, or a malformed relation/row
    entry."""


class ServeProtocolError(ReproError):
    """A ``repro.serve`` wire envelope could not be decoded: invalid JSON,
    a non-object frame, or a missing/malformed field."""


class WorkerUnavailableError(ReproError):
    """A ``repro.serve.fleet`` worker process is down and could not be
    (re)spawned in time — the request was neither executed nor queued.

    Decides are pure, so callers may safely retry; through a fleet front
    server the error surfaces as the ``unavailable`` envelope code."""


class ServerOverloadedError(ReproError):
    """A ``repro.serve`` server shed this request at admission: an
    inflight/queue budget was exhausted, so the request was **not**
    executed (nothing was queued either — shedding happens before any
    work is done, which is what makes the request safe to retry).

    Surfaces over the wire as the ``overloaded`` envelope code, whose
    error object carries ``retry_after_ms`` — the server's backoff hint,
    scaled by how far over budget it currently is."""

    def __init__(self, message: str, retry_after_ms: int = 0):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class UnauthorizedError(ReproError):
    """A ``repro.serve`` connection failed the shared-secret handshake —
    no credentials on an auth-required server, a bad HMAC, or a
    cluster-control verb from an unauthenticated peer.  Surfaces over the
    wire as the ``unauthorized`` envelope code.  The request was **not**
    executed."""


class RemoteError(ReproError):
    """A ``repro.serve`` server answered a request with an error envelope.

    Carries the structured ``code`` next to the human-readable message so
    clients can branch without parsing text.  An ``overloaded`` envelope
    also carries the server's ``retry_after_ms`` backoff hint (``None``
    for every other code)."""

    def __init__(
        self,
        code: str,
        message: str,
        retry_after_ms: int | None = None,
    ):
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after_ms = retry_after_ms

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


class UnknownInstanceError(ReproError):
    """A ``repro.store`` operation referenced an instance name the registry
    does not hold — never stored, already dropped, or evicted to stay under
    the registry byte budget.  Surfaces over the serve protocol as the
    ``unknown-instance`` envelope code; clients recover by re-``put``-ting
    the instance."""

    def __init__(self, ref: str, message: str | None = None):
        super().__init__(message or f"unknown instance ref {ref!r}")
        self.ref = ref


class DeltaConflictError(ReproError):
    """A :class:`repro.store.Delta` could not be applied under strict
    conflict rules: removing a fact that is absent, adding a fact that is
    already present, or a delta whose add/remove sets overlap.  Surfaces
    over the serve protocol as the ``conflict`` envelope code."""


class VersionConflictError(DeltaConflictError):
    """An ``instance patch`` carried an ``expect_version`` precondition that
    did not match the stored instance version (compare-and-swap failure).

    This is what makes patches safe to retry over a flaky connection: a
    replayed patch whose first copy already applied fails the version check
    instead of double-applying."""

    def __init__(self, ref: str, expected: int, actual: int):
        super().__init__(
            f"instance {ref!r} is at version {actual}, patch expected "
            f"version {expected}"
        )
        self.ref = ref
        self.expected = expected
        self.actual = actual


class BackendRegistryError(ReproError):
    """Backend registry misuse: duplicate registration without ``override``,
    unknown backend name, or no registered backend supporting a problem."""


class NotInFOError(ReproError):
    """Raised when a consistent first-order rewriting is requested for a
    problem ``CERTAINTY(q, FK)`` that Theorem 12 places outside FO."""


class OracleLimitation(ReproError):
    """The exact ⊕-repair oracle hit its configured search bound without
    being able to certify an answer (only possible on schemas with cyclic
    foreign-key dependency graphs and very deep insertion chains)."""


class EvaluationError(ReproError):
    """A first-order formula could not be evaluated (unsafe quantification,
    unknown relation, arity mismatch)."""
