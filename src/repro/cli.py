"""Command-line interface: ``python -m repro <command> …``.

Commands
--------

``classify``   run the Theorem 12 decision procedure on a problem;
``rewrite``    print the consistent first-order rewriting (FO cases);
``sql``        compile the consistent rewriting to a SQL query;
``decide``     answer ``CERTAINTY(q, FK)`` on an instance file — locally,
               or against a running server via ``--connect HOST:PORT``;
``engine``     answer through the plan-caching engine, with provenance
               (``--stats`` prints per-backend latency aggregates);
``batch``      evaluate many instance files through one compiled plan;
``serve``      run the sharded, micro-batching certainty server —
               in-process thread shards, or worker processes with
               ``--processes N``; ``--log-level/--log-format/--span-log``
               control structured logging and span capture;
               ``--max-inflight`` bounds admission (overload shedding),
               ``--autoscale MIN:MAX`` resizes a process fleet from its
               own metrics; ``--controller`` runs a cluster controller
               (workers join with ``--join HOST:PORT``), ``--secret``
               requires the shared-secret handshake (mandatory for
               non-loopback binds), ``--tls-cert/--tls-key`` add TLS;
``loadgen``    offer open-loop load (zipfian multi-tenant mixes, burst/
               diurnal schedules, or ``--replay`` of a recorded span
               log) to a running server and report client-observed
               per-tier latency;
``fleet-status``  admission and autoscaler readout of a running server;
``fleet``      operate a fleet: ``status`` (membership + admission +
               autoscaler), ``drain NAME`` (graceful worker removal with
               instance migration), ``resize N``;
``trace``      fetch one traced request's phase spans from a running
               server (``repro decide --connect --trace`` prints the id);
``slo``        per-tier latency/error report (fo / p16 / p17 / sat /
               oracle) from a running server or a stats JSON file;
``problem``    export/import problems as portable JSON documents;
``instance``   export/import instances as portable JSON documents, and
               manage named server-side instances (``put``/``patch``/
               ``drop``/``list`` against ``--connect``);
``repairs``    enumerate the canonical ⊕-repairs of an instance;
``violations`` report primary/foreign-key violations of an instance.

Problems are given either as one ``-a/--atom`` per atom (key positions
before the ``|``) plus ``-k/--fk R[2]->S`` foreign keys, or — for
``engine``/``batch``/``problem import`` — as a JSON document produced by
``repro problem export`` (``-p/--problem problem.json``).  Instances are
text files in the :mod:`repro.db.io` format.  Examples::

    python -m repro classify -a "N(x | 'c', y)" -a "O(y |)" -k "N[3]->O"
    python -m repro problem export -a "R(x | y)" -a "S(y | z)" -k "R[2]->S" \
        -o problem.json
    python -m repro batch -p problem.json db1.txt db2.txt --repeat 100

All commands run through :mod:`repro.api` (Problem/Session).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .api.problem import Problem
from .api.session import Session, SessionConfig
from .db import violation_report
from .db import io as db_io
from .db.io import load
from .exceptions import (
    InstanceFormatError,
    NotInFOError,
    ProblemFormatError,
    ReproError,
)
from .fo.render import render, render_tree
from .repairs import canonical_repairs


def _problem_from_file(path: str) -> Problem:
    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ProblemFormatError(
            f"cannot read problem file {path!r}: {error}"
        ) from error
    return Problem.from_json(text)


def _build_problem(args) -> Problem:
    """The problem from ``-a``/``-k`` text or a ``-p`` JSON file."""
    problem_file = getattr(args, "problem", None)
    if problem_file:
        if args.atom or args.fk:
            raise ProblemFormatError(
                "pass either -p/--problem or -a/-k atoms, not both"
            )
        return _problem_from_file(problem_file)
    if not args.atom:
        raise ProblemFormatError(
            "no problem given: pass -a/--atom atoms (with optional -k) "
            "or -p/--problem problem.json"
        )
    return Problem.of(
        *args.atom, fks=args.fk or [], name=getattr(args, "name", "") or ""
    )


def _add_problem_arguments(
    parser: argparse.ArgumentParser, with_json: bool = False
) -> None:
    parser.add_argument(
        "-a", "--atom", action="append", default=[],
        help="one query atom, e.g. \"R(x | y)\" (repeatable)",
    )
    parser.add_argument(
        "-k", "--fk", action="append", default=[],
        help="one unary foreign key, e.g. \"R[2]->S\" (repeatable)",
    )
    if with_json:
        parser.add_argument(
            "-p", "--problem", metavar="FILE",
            help="problem JSON file (see `repro problem export`) instead "
                 "of -a/-k",
        )


def _cmd_classify(args) -> int:
    problem = _build_problem(args)
    with Session() as session:
        result = session.classify(problem)
    print(result.explain())
    if args.canonical:
        # same label vocabulary as `problem import`: "class" is the
        # shared digest, "spelling" the raw one
        form = problem.canonical
        print(f"class:       {form.fingerprint.digest}")
        print(f"canonical:   {form.fingerprint.text}")
        print(f"renaming:    {form.describe_renaming() or '(none)'}")
        print(f"spelling:    {form.fingerprint.raw}")
    return 0 if result.in_fo else 1


def _cmd_rewrite(args) -> int:
    problem = _build_problem(args)
    with Session() as session:
        try:
            result = session.rewrite(problem)
        except NotInFOError as error:
            print(error, file=sys.stderr)
            return 1
    if args.tree:
        print(render_tree(result.formula))
    else:
        print(render(result.formula))
    if args.trace:
        print("pipeline:", " → ".join(result.lemma_trace) or "(direct)")
    return 0


def _cmd_sql(args) -> int:
    from .fo.sql import to_sql

    problem = _build_problem(args)
    with Session() as session:
        try:
            result = session.rewrite(problem)
        except NotInFOError as error:
            print(error, file=sys.stderr)
            return 1
    print(to_sql(result.formula, problem.query.schema()))
    return 0


def _backend_description(name: str) -> str:
    """The registered backend's human description, or the bare name."""
    from .engine import default_registry
    from .exceptions import BackendRegistryError

    try:
        return default_registry().get(name).description or name
    except BackendRegistryError:
        return name


def _parse_endpoint(text: str, flag: str = "--connect") -> tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ReproError(f"{flag} needs HOST:PORT, got {text!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(
            f"{flag} port must be an integer, got {port!r}"
        ) from None


def _secret_from_args(args) -> str | None:
    """The fleet shared secret: ``--secret`` or REPRO_CLUSTER_SECRET."""
    import os

    return getattr(args, "secret", None) or os.environ.get(
        "REPRO_CLUSTER_SECRET"
    ) or None


def _cmd_decide(args) -> int:
    problem = _build_problem(args)
    ref = getattr(args, "instance_ref", None)
    if (args.database is None) == (ref is None):
        raise ReproError(
            "pass exactly one of an instance file or --instance-ref"
        )
    if ref is not None and not args.connect:
        raise ReproError(
            "--instance-ref needs --connect (named instances live on a "
            "server; see `repro instance put`)"
        )
    db = load(args.database) if args.database is not None else None
    if getattr(args, "trace", False) and not args.connect:
        raise ReproError("--trace needs --connect (local decides have "
                         "no server-side spans to name)")
    if args.connect:
        from .serve import ServeClient

        host, port = _parse_endpoint(args.connect)
        timeout = args.timeout if args.timeout > 0 else None
        trace_id = None
        if args.trace:
            from .obs.trace import new_trace_id

            trace_id = new_trace_id()
        with ServeClient(
            host, port, timeout=timeout,
            auth_secret=_secret_from_args(args),
        ) as client:
            decision = client.decide(problem, db, ref=ref, trace_id=trace_id)
        cache = "hit" if decision.cache_hit else "miss"
        extra = ", incremental" if decision.incremental else ""
        print(
            f"certain: {decision.certain}   (remote {decision.backend}, "
            f"plan cache {cache}{extra}, "
            f"{decision.wall_seconds * 1e3:.2f} ms)"
        )
        if trace_id:
            print(f"trace: {trace_id}")
        return 0 if decision.certain else 1
    with Session() as session:  # classification paid once, in plan compile
        decision = session.decide(problem, db)
    method = _backend_description(decision.backend)
    print(f"certain: {decision.certain}   (via {method})")
    return 0 if decision.certain else 1


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _session_from_args(args) -> Session:
    from .engine import ExecutorConfig

    executor = ExecutorConfig(
        mode=getattr(args, "mode", "serial"),
        max_workers=getattr(args, "jobs", None),
    )
    return Session(
        SessionConfig(
            fo_backend="sql" if args.sql else "memory",
            executor=executor,
        )
    )


def _print_backend_stats(stats) -> None:
    """Per-backend latency aggregates (``repro engine --stats``)."""
    from .engine.metrics import bucket_labels

    print("per-backend aggregates:")
    if not stats.backends:
        print("  (no plans executed)")
        return
    labels = bucket_labels()
    for aggregate in stats.backends:
        snap = aggregate.metrics
        mean = snap.mean_seconds
        mean_text = (
            f"mean {mean * 1e6:.1f} µs" if mean is not None else "unused"
        )
        print(
            f"  {aggregate.backend:<16} {aggregate.plans} plan(s)  "
            f"{snap.evaluations} evals  {mean_text}"
        )
        buckets = " ".join(
            f"{label}:{count}"
            for label, count in zip(labels, snap.histogram)
            if count
        )
        if buckets:
            print(f"    latency histogram: {buckets}")


def _cmd_engine(args) -> int:
    problem = _build_problem(args)
    with _session_from_args(args) as session:
        decisions = []
        for path in args.database:
            decision = session.decide(problem, load(path))
            decisions.append(decision)
            print(f"{path}: certain={decision.certain}")
        if args.explain:
            print(session.explain(problem))
        else:
            print(f"backend: {decisions[-1].backend}")
        if args.stats or args.format == "prom":
            # --format prom implies --stats: a scrape consumer must never
            # silently receive the human output
            stats = session.stats()
            if args.format == "prom":
                print(stats.to_prom(), end="")
            else:
                _print_backend_stats(stats)
                _print_class_sharing(stats)
                _print_tier_stats(stats)
    return 0 if all(d.certain for d in decisions) else 1


def _print_class_sharing(stats) -> None:
    """Per-class spelling sharing (``repro engine --stats``)."""
    print("per-class sharing:")
    for plan in stats.plans:
        print(
            f"  {plan.fingerprint}  {plan.backend:<16} "
            f"{plan.spellings} spelling(s)"
        )


def _print_tier_stats(stats) -> None:
    """Per-SLO-tier aggregates (``repro engine --stats``)."""
    from .obs.slo import format_slo_report

    print("per-tier SLO:")
    for line in format_slo_report(stats.tiers).splitlines():
        print(f"  {line}")


def _print_trace(trace_id: str, spans: list) -> None:
    """Render one trace's spans, earliest first, offsets from its start."""
    if not spans:
        print(
            f"trace {trace_id}: no spans retained (expired from the "
            "ring, or the id was never seen)"
        )
        return
    base = min(span["start"] for span in spans)
    print(f"trace {trace_id}: {len(spans)} span(s)")
    for span in sorted(spans, key=lambda s: s["start"]):
        labels = " ".join(
            f"{key}={value}"
            for key, value in sorted(span.get("labels", {}).items())
        )
        offset_ms = (span["start"] - base) * 1e3
        line = (
            f"  +{offset_ms:9.3f} ms  {span['seconds'] * 1e3:9.3f} ms  "
            f"{span.get('site', 'server'):<14} {span['name']:<13} {labels}"
        )
        print(line.rstrip())


def _cmd_trace(args) -> int:
    from .serve import ServeClient

    host, port = _parse_endpoint(args.connect)
    timeout = args.timeout if args.timeout > 0 else None
    with ServeClient(
        host, port, timeout=timeout, auth_secret=_secret_from_args(args)
    ) as client:
        payload = client.trace(args.trace_id)
    spans = payload.get("spans") or []
    _print_trace(payload.get("trace_id", args.trace_id), spans)
    return 0 if spans else 1


def _slo_documents_from_file(path: str) -> list:
    """EngineStats documents from a JSON file: a ``stats``-verb payload
    (its ``shards`` list), one stats document, or a list of them."""
    import json

    try:
        data = json.loads(Path(path).read_text())
    except OSError as error:
        raise ReproError(
            f"cannot read stats file {path!r}: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise ReproError(f"invalid stats JSON in {path!r}: {error}") from error
    if isinstance(data, dict):
        return data["shards"] if "shards" in data else [data]
    if isinstance(data, list):
        return data
    raise ReproError(
        f"stats document must be an object or a list, got "
        f"{type(data).__name__}"
    )


def _cmd_slo(args) -> int:
    from .engine.engine import EngineStats, merge_engine_stats
    from .obs.slo import format_slo_report

    if args.connect:
        from .serve import ServeClient

        host, port = _parse_endpoint(args.connect)
        timeout = args.timeout if args.timeout > 0 else None
        with ServeClient(
            host, port, timeout=timeout,
            auth_secret=_secret_from_args(args),
        ) as client:
            documents = client.stats().get("shards") or []
    else:
        documents = _slo_documents_from_file(args.file)
    stats = merge_engine_stats(
        EngineStats.from_dict(document) for document in documents
    )
    print(format_slo_report(stats.tiers))
    return 0


def _cmd_batch(args) -> int:
    problem = _build_problem(args)
    instances = [load(path) for path in args.database] * args.repeat
    with _session_from_args(args) as session:
        result = session.decide_batch(problem, instances)
        cache = session.stats().cache
    throughput = (
        f"{result.per_second:,.0f}/s" if result.per_second else "n/a"
    )
    print(f"backend:    {result.backend} ({result.mode})")
    print(f"instances:  {result.size} ({result.certain_count} certain)")
    print(f"elapsed:    {result.execute_seconds * 1e3:.2f} ms ({throughput})")
    print(f"plan cache: {cache.hits} hits, {cache.misses} misses")
    return 0 if result.all_certain else 1


def _cmd_problem_export(args) -> int:
    problem = _build_problem(args)
    if args.name and problem.name != args.name:
        # also meaningful with -p: re-export under a new name
        problem = Problem(problem.query, problem.fks, name=args.name)
    document = problem.to_json(indent=2)
    if args.output:
        Path(args.output).write_text(document + "\n")
        print(f"wrote {args.output} ({problem.fingerprint.digest})")
    else:
        print(document)
    return 0


def _cmd_problem_import(args) -> int:
    problem = _problem_from_file(args.file)
    with Session() as session:
        classification = session.classify(problem)
    if problem.name:
        print(f"name:        {problem.name}")
    print(f"fingerprint: {problem.fingerprint.digest}")
    print(f"spelling:    {problem.fingerprint.raw}")
    print(f"problem:     {problem.fingerprint.raw_text}")
    print(f"canonical:   {problem.fingerprint.text}")
    print(f"verdict:     {classification.verdict.value}")
    return 0


def _cmd_instance_export(args) -> int:
    db = load(args.file)
    document = db_io.to_json(db, indent=2)
    if args.output:
        Path(args.output).write_text(document + "\n")
        print(f"wrote {args.output} ({db.size} facts)")
    else:
        print(document)
    return 0


def _cmd_instance_import(args) -> int:
    try:
        text = Path(args.file).read_text()
    except OSError as error:
        raise InstanceFormatError(
            f"cannot read instance file {args.file!r}: {error}"
        ) from error
    db = db_io.from_json(text)
    if args.output:
        db_io.dump(db, args.output)
        print(f"wrote {args.output} ({db.size} facts)")
        return 0
    schema = db.schema()
    print(f"facts:     {db.size}")
    for relation in sorted(db.relations):
        sig = schema[relation]
        print(
            f"  {relation}: {len(db.relation_facts(relation))} facts "
            f"(arity {sig.arity}, key {sig.key_size})"
        )
    keys = "violated" if db.violates_primary_keys() else "satisfied"
    print(f"primary keys: {keys}")
    return 0


def _remote_client(args):
    """A :class:`~repro.serve.ServeClient` for the ``--connect`` endpoint."""
    from .serve import ServeClient

    if not args.connect:
        raise ReproError(
            "this command talks to a running `repro serve`: "
            "pass --connect HOST:PORT"
        )
    host, port = _parse_endpoint(args.connect)
    timeout = args.timeout if args.timeout > 0 else None
    return ServeClient(
        host, port, timeout=timeout, auth_secret=_secret_from_args(args)
    )


def _cmd_instance_put(args) -> int:
    db = load(args.file)
    with _remote_client(args) as client:
        result = client.put_instance(args.ref, db, version=args.version)
    stored = result["instance"]
    print(
        f"stored {stored['ref']!r} version {stored['version']} "
        f"({stored['facts']} facts, {stored['bytes']} bytes) "
        f"on shard {result.get('shard', '?')}"
    )
    return 0


def _cmd_instance_patch(args) -> int:
    import json

    from .store.delta import Delta

    try:
        text = Path(args.file).read_text()
    except OSError as error:
        raise InstanceFormatError(
            f"cannot read delta file {args.file!r}: {error}"
        ) from error
    try:
        delta = Delta.from_dict(json.loads(text))
    except (ValueError, TypeError) as error:
        raise InstanceFormatError(
            f"bad delta document {args.file!r}: {error}"
        ) from error
    with _remote_client(args) as client:
        result = client.patch_instance(
            args.ref, delta, expect_version=args.expect_version
        )
    stored = result["instance"]
    applied = result.get("applied", {})
    print(
        f"patched {stored['ref']!r} to version {stored['version']} "
        f"(+{applied.get('adds', '?')}/-{applied.get('removes', '?')} facts, "
        f"now {stored['facts']} facts, {stored['bytes']} bytes)"
    )
    return 0


def _cmd_instance_drop(args) -> int:
    with _remote_client(args) as client:
        dropped = client.drop_instance(args.ref)["dropped"]
    if not dropped:
        print(f"no instance named {args.ref!r}")
        return 1
    print(f"dropped {args.ref!r}")
    return 0


def _cmd_instance_list(args) -> int:
    with _remote_client(args) as client:
        listing = client.list_instances()
    instances = listing.get("instances", [])
    if not instances:
        print("no stored instances")
    for info in instances:
        print(
            f"{info['ref']}: version {info['version']}, "
            f"{info['facts']} facts, {info['bytes']} bytes"
        )
    stats = listing.get("stats", {})
    if stats:
        print(
            f"store: {stats.get('instances', len(instances))} instance(s), "
            f"{stats.get('bytes', '?')}/{stats.get('max_bytes', '?')} bytes, "
            f"{stats.get('evictions', 0)} eviction(s)"
        )
    return 0


def _parse_autoscale_bounds(text: str) -> tuple[int, int]:
    low, sep, high = text.partition(":")
    if not sep:
        raise ReproError(
            f"--autoscale needs MIN:MAX worker bounds, got {text!r}"
        )
    try:
        return int(low), int(high)
    except ValueError:
        raise ReproError(
            f"--autoscale bounds must be integers, got {text!r}"
        ) from None


def _autoscale_config_from_args(args):
    from .serve import AutoscaleConfig

    if not args.autoscale:
        return None
    min_workers, max_workers = _parse_autoscale_bounds(args.autoscale)
    return AutoscaleConfig(
        min_workers=min_workers,
        max_workers=max_workers,
        interval_seconds=args.autoscale_interval,
        queue_high=args.autoscale_queue_high,
        queue_low=args.autoscale_queue_low,
        cooldown_seconds=args.autoscale_cooldown,
    )


def _cmd_serve(args) -> int:
    from .serve import ServerConfig, run_server

    secret = _secret_from_args(args)
    if args.controller and args.join:
        print("error: --controller and --join are mutually exclusive "
              "(a process is one or the other)", file=sys.stderr)
        return 2
    if args.controller and args.processes:
        print("error: --controller routes over workers that join with "
              "`repro serve --join`; it spawns none (--processes does "
              "not apply)", file=sys.stderr)
        return 2
    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            shards=args.shards,
            processes=args.processes,
            fo_backend="sql" if args.sql else "memory",
            plan_cache_size=args.cache_size,
            max_batch=args.max_batch,
            linger_ms=args.linger_ms,
            store_bytes=args.store_bytes,
            log_level=args.log_level,
            log_format=args.log_format,
            span_log=args.span_log,
            max_inflight=args.max_inflight,
            max_connection_inflight=args.max_connection_inflight,
            retry_after_ms=args.retry_after_ms,
            # a controller's autoscaler drives the *remote* fleet, so its
            # policy rides to ClusterServer below, not into ServerConfig
            # (which reserves config.autoscale for process fleets)
            autoscale=(
                None if args.controller
                else _autoscale_config_from_args(args)
            ),
            auth_secret=secret,
            tls_cert=args.tls_cert,
            tls_key=args.tls_key,
        )
    except ValueError as error:
        # config validation speaks ValueError; give it the CLI's friendly
        # `error:` shape instead of a traceback
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.controller:
        from .cluster import ClusterMembership, controller_factory

        run_server(config, server_factory=controller_factory(
            membership=ClusterMembership(
                heartbeat_timeout=args.heartbeat_timeout
            ),
            autoscale=_autoscale_config_from_args(args),
        ))
        return 0
    if args.join:
        from .cluster import AgentConfig, run_worker_agent

        controller_host, controller_port = _parse_endpoint(
            args.join, "--join"
        )
        try:
            agent_config = AgentConfig(
                controller_host=controller_host,
                controller_port=controller_port,
                name=args.worker_name,
                advertise_host=args.advertise,
                heartbeat_seconds=args.heartbeat,
                auth_secret=secret,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        from .obs.log import setup_logging

        setup_logging(config.log_level, config.log_format)
        run_worker_agent(config, agent_config)
        return 0
    run_server(config)
    return 0


def _parse_float_list(text: str, flag: str) -> tuple[float, ...]:
    try:
        return tuple(float(part) for part in text.split(",") if part)
    except ValueError:
        raise ReproError(
            f"{flag} needs comma-separated numbers, got {text!r}"
        ) from None


def _cmd_loadgen(args) -> int:
    import json

    from .load import LoadProfile, arrivals_from_trace, run_loadgen

    host, port = _parse_endpoint(args.connect)
    sizes = tuple(
        int(s) for s in _parse_float_list(args.sizes, "--sizes")
    )
    weights = _parse_float_list(args.size_weights, "--size-weights")
    try:
        profile = LoadProfile(
            duration_seconds=args.duration,
            rate_rps=args.rate,
            schedule=args.schedule,
            burst_factor=args.burst_factor,
            n_classes=args.classes,
            zipf_s=args.zipf,
            tenants=args.tenants,
            instance_sizes=sizes,
            instance_size_weights=weights,
            connections=args.connections,
            seed=args.seed,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    arrivals = None
    if args.replay:
        arrivals = arrivals_from_trace(args.replay, speed=args.speed)
    report = run_loadgen(
        host, port, profile,
        arrivals=arrivals,
        retries=args.retries,
        drain_seconds=args.drain,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    # an error-free run exits 0 even with sheds (shedding is the server
    # working as configured); transport/internal errors exit 1
    return 0 if report.errors == 0 and report.incomplete == 0 else 1


def _print_cluster_block(cluster: dict) -> None:
    """The controller's membership readout (``repro fleet status``)."""
    target = cluster.get("target_workers")
    print(
        f"cluster: {cluster.get('workers', '?')} worker(s)"
        + (f" (target {target})" if target else "")
        + f"  ring_epoch={cluster.get('ring_epoch', '?')}"
        f"  rebalances={cluster.get('rebalances', 0)}"
        f"  evictions={cluster.get('evictions', 0)}"
        f"  warmed_plans={cluster.get('warmed_plans', 0)}"
    )
    replication = cluster.get("replication")
    if replication:
        if replication.get("enabled"):
            print(
                f"replication: on  pending={replication.get('pending', 0)}"
                f"  replicated={replication.get('replicated', 0)}"
                f"  promotions={replication.get('promotions', 0)}"
                f"  repairs={replication.get('repairs', 0)}"
                f"  failures={replication.get('failures', 0)}"
                + (
                    "  repair_pending=yes"
                    if replication.get("repair_pending") else ""
                )
            )
        else:
            print("replication: off (a worker crash loses its refs)")
    for member in cluster.get("members") or []:
        print(
            f"  {member['name']}: {member['host']}:{member['port']}  "
            f"gen={member['generation']}  "
            f"age={member.get('age_seconds', '?')}s  "
            f"silence={member.get('silence_seconds', '?')}s"
        )


def _cmd_fleet_status(args) -> int:
    with _remote_client(args) as client:
        payload = client.stats()
    server = payload.get("server", {})
    shards = payload.get("shards", [])
    cluster = server.get("cluster")
    if cluster:
        _print_cluster_block(cluster)
    budgets = []
    if server.get("max_inflight"):
        budgets.append(f"max_inflight={server['max_inflight']}")
    if server.get("max_connection_inflight"):
        budgets.append(
            f"max_connection_inflight={server['max_connection_inflight']}"
        )
    print(
        f"serving: {len(shards)} engine(s)  "
        f"inflight={server.get('inflight', '?')}  "
        f"queue_depth={server.get('queue_depth', '?')}"
    )
    print(
        f"admission: {' '.join(budgets) if budgets else 'off (no budgets)'}"
        f"  shed={server.get('shed', 0)}"
        + (
            f" ({', '.join(f'{k}={v}' for k, v in sorted(scopes.items()))})"
            if (scopes := server.get("shed_scopes"))
            else ""
        )
    )
    autoscale = server.get("autoscale")
    if not autoscale:
        print("autoscale: off")
        return 0
    print(
        f"autoscale: workers={autoscale['workers']} "
        f"[{autoscale['min_workers']}..{autoscale['max_workers']}]  "
        f"interval={autoscale['interval_seconds']:g}s  "
        f"resizes={autoscale['resizes']}  "
        f"calm_ticks={autoscale['calm_ticks']}"
    )
    last = autoscale.get("last_decision")
    if last:
        print(
            f"  last: {last['action']} -> {last['workers']} worker(s)  "
            f"pressure={last['pressure']:g}  "
            f"shed_delta={last['shed_delta']}  ({last['reason']})"
        )
    decisions = autoscale.get("decisions") or []
    if decisions:
        print("  recent resizes (oldest first):")
        for decision in decisions:
            print(
                f"    {decision['action']:<4} -> "
                f"{decision['workers']} worker(s)  {decision['reason']}"
            )
    return 0


def _cmd_fleet_drain(args) -> int:
    with _remote_client(args) as client:
        result = client.request(
            "deregister",
            worker={"name": args.name, "stop": args.stop},
        )
    if not result.get("removed"):
        print(f"no worker named {args.name!r} is registered")
        return 1
    print(
        f"drained {args.name!r}"
        + (" (and asked it to shut down)" if args.stop else "")
        + f": {result.get('workers', '?')} worker(s) remain, "
        f"ring_epoch={result.get('ring_epoch', '?')}"
    )
    return 0


def _cmd_fleet_resize(args) -> int:
    with _remote_client(args) as client:
        result = client.request("resize", workers=args.workers)
    workers = result.get("workers", "?")
    requested = result.get("requested", args.workers)
    if workers == requested:
        print(f"fleet resized to {workers} worker(s)")
    else:
        print(
            f"fleet at {workers} worker(s), target recorded as "
            f"{requested} (a controller cannot spawn machines: start "
            f"more `repro serve --join` workers to grow)"
        )
    return 0


def _cluster_block(client) -> dict:
    """The cluster block of a controller's ``stats`` verb ({} elsewhere)."""
    return (client.stats().get("server") or {}).get("cluster") or {}


def _await_cluster(client, predicate, timeout: float) -> bool:
    """Poll the controller's cluster block until *predicate* holds."""
    import time as _time

    deadline = _time.monotonic() + timeout
    while True:
        try:
            if predicate(_cluster_block(client)):
                return True
        except (ReproError, OSError):
            pass  # the controller may be mid-rebalance; keep polling
        if _time.monotonic() >= deadline:
            return False
        _time.sleep(0.2)


def _cmd_fleet_rolling_restart(args) -> int:
    """Drain → restart → same-name rejoin, one worker at a time, each
    step gated on the controller's replica backlog being empty — so at
    every instant all but one worker hold their full primary+replica
    sets and no decide has to fail."""

    def pending_zero(cluster: dict) -> bool:
        replication = cluster.get("replication") or {}
        return replication.get("pending", 0) == 0

    with _remote_client(args) as client:
        cluster = _cluster_block(client)
        members = cluster.get("members") or []
        if not members:
            print("no workers are registered; nothing to restart")
            return 1
        replication = cluster.get("replication") or {}
        if not replication.get("enabled"):
            print(
                "warning: replication is off — the drill relies on "
                "graceful migration alone",
                file=sys.stderr,
            )
        names = [member["name"] for member in members]
        print(
            f"rolling restart over {len(names)} worker(s): "
            + ", ".join(names)
        )
        for name in names:
            if not _await_cluster(client, pending_zero, args.step_timeout):
                print(
                    f"error: replica backlog did not drain before "
                    f"restarting {name!r}",
                    file=sys.stderr,
                )
                return 1
            cluster = _cluster_block(client)
            recorded = next(
                (
                    member["generation"]
                    for member in cluster.get("members") or []
                    if member["name"] == name
                ),
                None,
            )
            if recorded is None:
                print(f"  {name}: no longer registered; skipping")
                continue
            client.request(
                "deregister", worker={"name": name, "stop": args.stop}
            )
            print(
                f"  {name}: drained (was gen {recorded}); waiting for a "
                f"same-name rejoin"
            )

            def rejoined(cluster: dict, name=name, recorded=recorded) -> bool:
                return any(
                    member["name"] == name
                    and member["generation"] > recorded
                    for member in cluster.get("members") or []
                )

            if not _await_cluster(client, rejoined, args.step_timeout):
                print(
                    f"error: {name!r} did not rejoin within "
                    f"{args.step_timeout:g}s"
                    + (
                        " (with --stop the worker process must be "
                        "restarted externally)" if args.stop else ""
                    ),
                    file=sys.stderr,
                )
                return 1
            if not _await_cluster(client, pending_zero,
                                  args.step_timeout):
                print(
                    f"error: replicas did not catch up after {name!r} "
                    f"rejoined",
                    file=sys.stderr,
                )
                return 1
            print(f"  {name}: rejoined with replicas caught up")
    print(
        "rolling restart complete: every worker drained, rejoined under "
        "its own name, and the replica backlog is empty"
    )
    return 0


def _cmd_repairs(args) -> int:
    problem = _build_problem(args)
    db = load(args.database)
    for index, repair in enumerate(
        canonical_repairs(db, problem.fks), start=1
    ):
        print(f"--- repair {index} ({repair.size} facts)")
        print(repair.pretty() or "  (empty)")
        if args.limit and index >= args.limit:
            print("--- (limit reached)")
            break
    return 0


def _cmd_violations(args) -> int:
    problem = _build_problem(args)
    db = load(args.database)
    report = violation_report(db, problem.fks)
    print(report)
    return 0 if report == "consistent" else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` CLI (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Consistent query answering for primary keys and unary foreign "
            "keys (Hannula & Wijsen, PODS 2022)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_secret_argument(parser):
        parser.add_argument(
            "--secret", metavar="SECRET", default=None,
            help="shared fleet secret for servers requiring the HMAC "
                 "handshake (default: $REPRO_CLUSTER_SECRET)",
        )

    p = sub.add_parser("classify", help="Theorem 12 decision procedure")
    _add_problem_arguments(p, with_json=True)
    p.add_argument("--canonical", action="store_true",
                   help="also print the canonical class fingerprint, the "
                        "canonical spelling and the relation renaming")
    p.set_defaults(handler=_cmd_classify)

    p = sub.add_parser("rewrite", help="construct the consistent rewriting")
    _add_problem_arguments(p, with_json=True)
    p.add_argument("--tree", action="store_true", help="multi-line layout")
    p.add_argument("--trace", action="store_true",
                   help="show which lemmas fired")
    p.set_defaults(handler=_cmd_rewrite)

    p = sub.add_parser(
        "sql", help="compile the consistent rewriting to a SQL query"
    )
    _add_problem_arguments(p, with_json=True)
    p.set_defaults(handler=_cmd_sql)

    p = sub.add_parser("decide", help="answer CERTAINTY(q, FK) on a file")
    _add_problem_arguments(p, with_json=True)
    p.add_argument("database", nargs="?", default=None,
                   help="instance file (repro.db.io format); omit it when "
                        "deciding a named instance with --instance-ref")
    p.add_argument("--instance-ref", metavar="REF", default=None,
                   help="with --connect: decide the named server-side "
                        "instance (see `repro instance put`) instead of "
                        "shipping a file")
    p.add_argument("--connect", metavar="HOST:PORT",
                   help="send the request to a running `repro serve` "
                        "instead of deciding locally")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="socket timeout in seconds for --connect "
                        "(0 waits forever; hard problems can be slow)")
    p.add_argument("--trace", action="store_true",
                   help="with --connect: run under a fresh trace id and "
                        "print it (inspect with `repro trace <id>`)")
    _add_secret_argument(p)
    p.set_defaults(handler=_cmd_decide)

    p = sub.add_parser(
        "engine", help="answer through the plan-caching certainty engine"
    )
    _add_problem_arguments(p, with_json=True)
    p.add_argument("database", nargs="+", help="instance file(s)")
    p.add_argument("--sql", action="store_true",
                   help="evaluate FO problems as compiled SQL over SQLite")
    p.add_argument("--explain", action="store_true",
                   help="print the full plan summary")
    p.add_argument("--stats", action="store_true",
                   help="print per-backend latency aggregates and "
                        "per-class spelling sharing")
    p.add_argument("--format", choices=["text", "prom"], default="text",
                   help="stats output format: human text or Prometheus "
                        "exposition")
    p.set_defaults(handler=_cmd_engine)

    p = sub.add_parser(
        "batch", help="evaluate many instances through one compiled plan"
    )
    _add_problem_arguments(p, with_json=True)
    p.add_argument("database", nargs="+", help="instance file(s)")
    p.add_argument("--sql", action="store_true",
                   help="evaluate FO problems as compiled SQL over SQLite")
    p.add_argument("--mode", choices=["serial", "thread", "process"],
                   default="serial", help="batch execution mode")
    p.add_argument("--jobs", type=_positive_int, default=None,
                   help="worker count for thread/process modes")
    p.add_argument("--repeat", type=_positive_int, default=1,
                   help="evaluate the instance list this many times")
    p.set_defaults(handler=_cmd_batch)

    p = sub.add_parser(
        "problem", help="export/import problems as portable JSON"
    )
    problem_sub = p.add_subparsers(dest="problem_command", required=True)

    pe = problem_sub.add_parser(
        "export", help="serialize a problem to its JSON document"
    )
    _add_problem_arguments(pe, with_json=True)  # -p re-exports (normalizes)
    pe.add_argument("--name", default="", help="optional problem name")
    pe.add_argument("-o", "--output", metavar="FILE",
                    help="write the document here instead of stdout")
    pe.set_defaults(handler=_cmd_problem_export)

    pi = problem_sub.add_parser(
        "import", help="read a problem JSON document and summarize it"
    )
    pi.add_argument("file", help="problem JSON file")
    pi.set_defaults(handler=_cmd_problem_import)

    p = sub.add_parser(
        "instance", help="export/import instances as portable JSON"
    )
    instance_sub = p.add_subparsers(dest="instance_command", required=True)

    ie = instance_sub.add_parser(
        "export", help="serialize an instance text file to JSON"
    )
    ie.add_argument("file", help="instance file (repro.db.io text format)")
    ie.add_argument("-o", "--output", metavar="FILE",
                    help="write the document here instead of stdout")
    ie.set_defaults(handler=_cmd_instance_export)

    ii = instance_sub.add_parser(
        "import", help="read an instance JSON document and summarize it"
    )
    ii.add_argument("file", help="instance JSON file")
    ii.add_argument("-o", "--output", metavar="FILE",
                    help="write the text form here instead of summarizing")
    ii.set_defaults(handler=_cmd_instance_import)

    def _add_remote_arguments(parser):
        parser.add_argument("--connect", metavar="HOST:PORT", required=True,
                            help="the running `repro serve` holding the "
                                 "instance registry")
        parser.add_argument("--timeout", type=float, default=30.0,
                            help="socket timeout in seconds "
                                 "(0 waits forever)")
        _add_secret_argument(parser)

    ip = instance_sub.add_parser(
        "put", help="store (or replace) a named instance on a server"
    )
    ip.add_argument("ref", help="the instance's name (its routing key)")
    ip.add_argument("file", help="instance file (repro.db.io text format)")
    ip.add_argument("--version", type=int, default=None,
                    help="store under this version instead of "
                         "auto-incrementing")
    _add_remote_arguments(ip)
    ip.set_defaults(handler=_cmd_instance_put)

    ipa = instance_sub.add_parser(
        "patch", help="apply a JSON delta document to a named instance"
    )
    ipa.add_argument("ref", help="the instance's name")
    ipa.add_argument("file",
                     help='delta JSON file ({"format": "repro/delta", '
                          '"add": [...], "remove": [...]})')
    ipa.add_argument("--expect-version", type=int, default=None,
                     help="compare-and-set: apply only if the stored "
                          "version still matches (makes the patch safe "
                          "to retry)")
    _add_remote_arguments(ipa)
    ipa.set_defaults(handler=_cmd_instance_patch)

    idr = instance_sub.add_parser(
        "drop", help="discard a named instance from a server"
    )
    idr.add_argument("ref", help="the instance's name")
    _add_remote_arguments(idr)
    idr.set_defaults(handler=_cmd_instance_drop)

    il = instance_sub.add_parser(
        "list", help="list a server's named instances and registry stats"
    )
    _add_remote_arguments(il)
    il.set_defaults(handler=_cmd_instance_list)

    p = sub.add_parser(
        "serve",
        help="run the sharded, micro-batching certainty server "
             "(threads, or worker processes with --processes)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=7432,
                   help="bind port (0 picks a free one)")
    p.add_argument("--shards", type=_positive_int, default=4,
                   help="in-process engine workers (plan caches) behind "
                        "the hash ring")
    p.add_argument("--processes", type=int, default=0, metavar="N",
                   help="serve through N worker processes instead of "
                        "in-process thread shards (one engine per process; "
                        "crash respawn, graceful drain; 0 disables)")
    p.add_argument("--sql", action="store_true",
                   help="evaluate FO problems as compiled SQL over SQLite")
    p.add_argument("--cache-size", type=_positive_int, default=128,
                   help="per-shard plan cache capacity")
    p.add_argument("--max-batch", type=_positive_int, default=32,
                   help="flush a micro-batch at this many requests")
    p.add_argument("--linger-ms", type=float, default=1.0,
                   help="micro-batch linger window in milliseconds")
    p.add_argument("--store-bytes", type=_positive_int,
                   default=64 * 1024 * 1024,
                   help="instance-registry byte budget (least-recently-"
                        "used instances are evicted past it)")
    p.add_argument("--log-level", choices=("debug", "info", "warning",
                                           "error"),
                   default="warning",
                   help="structured-log threshold (default: warning — "
                        "no per-request logging)")
    p.add_argument("--log-format", choices=("human", "json"),
                   default="human",
                   help="log line format on stderr")
    p.add_argument("--span-log", metavar="FILE", default=None,
                   help="also append every traced span to this "
                        "JSON-lines file")
    p.add_argument("--max-inflight", type=int, default=0, metavar="N",
                   help="admission control: shed decide/decide_batch "
                        "requests (overloaded envelope + retry_after_ms) "
                        "past N admitted-but-unanswered ones server-wide "
                        "(0 disables)")
    p.add_argument("--max-connection-inflight", type=int, default=0,
                   metavar="N",
                   help="per-connection inflight budget (0 disables); "
                        "keeps one pipelining client from monopolizing "
                        "the global budget")
    p.add_argument("--retry-after-ms", type=int, default=50, metavar="MS",
                   help="base retry-after hint on overloaded envelopes "
                        "(scaled up to 8x with queue pressure)")
    p.add_argument("--autoscale", metavar="MIN:MAX", default=None,
                   help="with --processes: autoscale the worker fleet "
                        "between MIN and MAX from queue/shed/latency "
                        "signals (see `repro fleet-status`)")
    p.add_argument("--autoscale-interval", type=float, default=1.0,
                   metavar="S", help="autoscaler sampling cadence")
    p.add_argument("--autoscale-cooldown", type=float, default=3.0,
                   metavar="S", help="minimum spacing between resizes")
    p.add_argument("--autoscale-queue-high", type=float, default=4.0,
                   help="scale up at this (queue+inflight)/worker "
                        "pressure")
    p.add_argument("--autoscale-queue-low", type=float, default=0.5,
                   help="count an interval calm below this pressure "
                        "(scale down after 3 consecutive calm intervals)")
    cluster = p.add_argument_group(
        "distributed fleet (see docs/deployment.md)"
    )
    cluster.add_argument(
        "--controller", action="store_true",
        help="run as a cluster controller: accept worker registration "
             "(register/heartbeat verbs) and route decides over the "
             "registered workers instead of local shards")
    cluster.add_argument(
        "--join", metavar="HOST:PORT", default=None,
        help="run as a worker: serve normally and register this "
             "process's address with the controller at HOST:PORT")
    cluster.add_argument(
        "--advertise", metavar="HOST", default=None,
        help="with --join: the address workers tell the controller to "
             "dial back (default: the bind host)")
    cluster.add_argument(
        "--worker-name", metavar="NAME", default=None,
        help="with --join: stable worker name (ring identity; rejoining "
             "under the same name reclaims the same ring ranges)")
    cluster.add_argument(
        "--heartbeat", type=float, default=1.0, metavar="S",
        help="with --join: heartbeat cadence to the controller")
    cluster.add_argument(
        "--heartbeat-timeout", type=float, default=5.0, metavar="S",
        help="with --controller: evict a worker silent for this long")
    _add_secret_argument(cluster)
    cluster.add_argument(
        "--tls-cert", metavar="PEM", default=None,
        help="serve TLS with this certificate chain (needs --tls-key)")
    cluster.add_argument(
        "--tls-key", metavar="PEM", default=None,
        help="the private key matching --tls-cert")
    p.set_defaults(handler=_cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="offer open-loop load to a running server and report "
             "client-observed per-tier latency",
    )
    p.add_argument("--connect", metavar="HOST:PORT", required=True,
                   help="the running `repro serve` to load")
    p.add_argument("--duration", type=float, default=5.0, metavar="S",
                   help="offered-load window in seconds")
    p.add_argument("--rate", type=float, default=50.0, metavar="RPS",
                   help="mean arrival rate (requests per second)")
    p.add_argument("--schedule", choices=("steady", "burst", "diurnal"),
                   default="steady", help="arrival-rate shape over time")
    p.add_argument("--burst-factor", type=float, default=4.0,
                   help="rate multiplier inside the burst window")
    p.add_argument("--classes", type=_positive_int, default=8,
                   help="problem classes in the mix")
    p.add_argument("--zipf", type=float, default=1.1,
                   help="class-popularity zipf exponent (0 = uniform)")
    p.add_argument("--tenants", type=_positive_int, default=1,
                   help="tenants with rotated class hotsets")
    p.add_argument("--sizes", default="2,3,5",
                   help="instance sizes (blocks per relation), "
                        "comma-separated")
    p.add_argument("--size-weights", default="0.6,0.3,0.1",
                   help="draw weights matching --sizes")
    p.add_argument("--connections", type=_positive_int, default=4,
                   help="client connections to spread arrivals over")
    p.add_argument("--seed", type=int, default=0,
                   help="workload + schedule seed (same seed, same "
                        "requests)")
    p.add_argument("--retries", type=int, default=0,
                   help="client retries on overloaded envelopes (honors "
                        "retry_after_ms with jittered backoff)")
    p.add_argument("--replay", metavar="FILE", default=None,
                   help="replay arrival gaps from a span-log JSON-lines "
                        "file (`repro serve --span-log`) instead of the "
                        "synthetic schedule")
    p.add_argument("--speed", type=float, default=1.0,
                   help="replay speed multiplier for --replay")
    p.add_argument("--drain", type=float, default=10.0, metavar="S",
                   help="wait this long after the last arrival before "
                        "counting stragglers incomplete")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON instead of the table")
    p.set_defaults(handler=_cmd_loadgen)

    p = sub.add_parser(
        "fleet-status",
        help="admission and autoscaler readout of a running server",
    )
    p.add_argument("--connect", metavar="HOST:PORT", required=True,
                   help="the running `repro serve` to inspect")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="socket timeout in seconds (0 waits forever)")
    _add_secret_argument(p)
    p.set_defaults(handler=_cmd_fleet_status)

    p = sub.add_parser(
        "fleet",
        help="inspect and operate a serving fleet (cluster controllers "
             "and process fleets)",
    )
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)

    fs = fleet_sub.add_parser(
        "status",
        help="membership, admission and autoscaler readout",
    )
    _add_remote_arguments(fs)
    fs.set_defaults(handler=_cmd_fleet_status)

    fd = fleet_sub.add_parser(
        "drain",
        help="gracefully remove a registered worker (its stored "
             "instances migrate to the survivors first)",
    )
    fd.add_argument("name", help="the worker's registered name")
    fd.add_argument("--stop", action="store_true",
                    help="also ask the drained worker to shut down")
    _add_remote_arguments(fd)
    fd.set_defaults(handler=_cmd_fleet_drain)

    fr = fleet_sub.add_parser(
        "resize",
        help="resize a fleet: process fleets spawn/retire workers; a "
             "cluster controller drains down or records a grow target",
    )
    fr.add_argument("workers", type=_positive_int,
                    help="the desired worker count")
    _add_remote_arguments(fr)
    fr.set_defaults(handler=_cmd_fleet_resize)

    frr = fleet_sub.add_parser(
        "rolling-restart",
        help="restart a cluster one worker at a time: drain, wait for a "
             "same-name rejoin, gate each step on replica freshness — "
             "zero failed decides throughout",
    )
    frr.add_argument("--stop", action="store_true",
                     help="also shut each drained worker's process down "
                          "(an external supervisor must restart it; "
                          "without --stop the worker agent rejoins on "
                          "its own next heartbeat)")
    frr.add_argument("--step-timeout", type=float, default=60.0,
                     help="seconds to wait for each drain/rejoin/"
                          "catch-up step")
    _add_remote_arguments(frr)
    frr.set_defaults(handler=_cmd_fleet_rolling_restart)

    p = sub.add_parser(
        "trace",
        help="fetch one traced request's phase spans from a server",
    )
    p.add_argument("trace_id",
                   help="the trace id (from `repro decide --connect "
                        "--trace`, or a decide result's trace_id field)")
    p.add_argument("--connect", metavar="HOST:PORT", required=True,
                   help="the running `repro serve` to query")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="socket timeout in seconds (0 waits forever)")
    _add_secret_argument(p)
    p.set_defaults(handler=_cmd_trace)

    p = sub.add_parser(
        "slo",
        help="per-tier latency/error report (fo / p16 / p17 / sat / "
             "oracle)",
    )
    source = p.add_mutually_exclusive_group(required=True)
    source.add_argument("--connect", metavar="HOST:PORT",
                        help="merge and report a running server's shard "
                             "stats")
    source.add_argument("--file", metavar="FILE",
                        help="report from a stats JSON document (a "
                             "`stats`-verb payload, one EngineStats "
                             "document, or a list of them)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="socket timeout in seconds for --connect")
    _add_secret_argument(p)
    p.set_defaults(handler=_cmd_slo)

    p = sub.add_parser("repairs", help="enumerate canonical ⊕-repairs")
    _add_problem_arguments(p, with_json=True)
    p.add_argument("database", help="instance file")
    p.add_argument("--limit", type=int, default=20,
                   help="stop after this many repairs")
    p.set_defaults(handler=_cmd_repairs)

    p = sub.add_parser("violations", help="report constraint violations")
    _add_problem_arguments(p, with_json=True)
    p.add_argument("database", help="instance file")
    p.set_defaults(handler=_cmd_violations)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
