"""Command-line interface: ``python -m repro <command> …``.

Commands
--------

``classify``   run the Theorem 12 decision procedure on a problem;
``rewrite``    print the consistent first-order rewriting (FO cases);
``decide``     answer ``CERTAINTY(q, FK)`` on an instance file;
``engine``     answer through the plan-caching engine, with provenance;
``batch``      evaluate many instance files through one compiled plan;
``repairs``    enumerate the canonical ⊕-repairs of an instance;
``violations`` report primary/foreign-key violations of an instance.

Queries are given as one ``-a/--atom`` per atom (key positions before the
``|``) and foreign keys as ``-k/--fk R[2]->S``; instances are text files in
the :mod:`repro.db.io` format.  Example::

    python -m repro classify -a "N(x | 'c', y)" -a "O(y |)" -k "N[3]->O"
"""

from __future__ import annotations

import argparse
import sys

from .core.classify import classify
from .core.decision import decide
from .core.foreign_keys import ForeignKeySet, parse_foreign_key
from .core.query import ConjunctiveQuery, parse_atom
from .core.rewriting import consistent_rewriting
from .db import violation_report
from .db.io import load
from .exceptions import NotInFOError, ReproError
from .fo.render import render, render_tree
from .repairs import canonical_repairs, certain_answer


def _build_problem(args) -> tuple[ConjunctiveQuery, ForeignKeySet]:
    query = ConjunctiveQuery([parse_atom(a) for a in args.atom])
    fks = ForeignKeySet(
        [parse_foreign_key(k) for k in args.fk or []], query.schema()
    )
    fks.require_about(query)
    return query, fks


def _add_problem_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-a", "--atom", action="append", required=True,
        help="one query atom, e.g. \"R(x | y)\" (repeatable)",
    )
    parser.add_argument(
        "-k", "--fk", action="append", default=[],
        help="one unary foreign key, e.g. \"R[2]->S\" (repeatable)",
    )


def _cmd_classify(args) -> int:
    query, fks = _build_problem(args)
    result = classify(query, fks)
    print(result.explain())
    return 0 if result.in_fo else 1


def _cmd_rewrite(args) -> int:
    query, fks = _build_problem(args)
    try:
        result = consistent_rewriting(query, fks)
    except NotInFOError as error:
        print(error, file=sys.stderr)
        return 1
    if args.tree:
        print(render_tree(result.formula))
    else:
        print(render(result.formula))
    if args.trace:
        print("pipeline:", " → ".join(result.lemma_trace) or "(direct)")
    return 0


def _cmd_sql(args) -> int:
    from .fo.sql import to_sql

    query, fks = _build_problem(args)
    try:
        result = consistent_rewriting(query, fks)
    except NotInFOError as error:
        print(error, file=sys.stderr)
        return 1
    print(to_sql(result.formula, query.schema()))
    return 0


def _cmd_decide(args) -> int:
    query, fks = _build_problem(args)
    db = load(args.database)
    if classify(query, fks).in_fo:
        answer = decide(query, fks, db, check_classification=False)
        method = "consistent FO rewriting"
    else:
        answer = certain_answer(query, fks, db).certain
        method = "exact ⊕-repair oracle"
    print(f"certain: {answer}   (via {method})")
    return 0 if answer else 1


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _engine_from_args(args):
    from .engine import CertaintyEngine, EngineConfig, ExecutorConfig

    executor = ExecutorConfig(
        mode=getattr(args, "mode", "serial"),
        max_workers=getattr(args, "jobs", None),
    )
    return CertaintyEngine(
        EngineConfig(
            fo_backend="sql" if args.sql else "memory",
            executor=executor,
        )
    )


def _cmd_engine(args) -> int:
    query, fks = _build_problem(args)
    engine = _engine_from_args(args)
    answers = []
    for path in args.database:
        answer = engine.decide(query, fks, load(path))
        answers.append(answer)
        print(f"{path}: certain={answer}")
    plan = engine.plan_for(query, fks)
    if args.explain:
        print(plan.describe())
    else:
        print(f"backend: {plan.backend.value}")
    return 0 if all(answers) else 1


def _cmd_batch(args) -> int:
    query, fks = _build_problem(args)
    engine = _engine_from_args(args)
    instances = [load(path) for path in args.database] * args.repeat
    result = engine.decide_batch(query, fks, instances)
    # read the counters before the introspective plan_for below inflates them
    cache = engine.cache_stats()
    plan = engine.plan_for(query, fks)
    throughput = (
        f"{result.per_second:,.0f}/s" if result.per_second else "n/a"
    )
    print(f"backend:    {plan.backend.value} ({result.mode})")
    print(f"instances:  {result.size} ({result.certain_count} certain)")
    print(f"elapsed:    {result.elapsed_seconds * 1e3:.2f} ms ({throughput})")
    print(f"plan cache: {cache.hits} hits, {cache.misses} misses")
    return 0 if all(result.answers) else 1


def _cmd_repairs(args) -> int:
    query, fks = _build_problem(args)
    db = load(args.database)
    for index, repair in enumerate(canonical_repairs(db, fks), start=1):
        print(f"--- repair {index} ({repair.size} facts)")
        print(repair.pretty() or "  (empty)")
        if args.limit and index >= args.limit:
            print("--- (limit reached)")
            break
    return 0


def _cmd_violations(args) -> int:
    query, fks = _build_problem(args)
    db = load(args.database)
    report = violation_report(db, fks)
    print(report)
    return 0 if report == "consistent" else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` CLI (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Consistent query answering for primary keys and unary foreign "
            "keys (Hannula & Wijsen, PODS 2022)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classify", help="Theorem 12 decision procedure")
    _add_problem_arguments(p)
    p.set_defaults(handler=_cmd_classify)

    p = sub.add_parser("rewrite", help="construct the consistent rewriting")
    _add_problem_arguments(p)
    p.add_argument("--tree", action="store_true", help="multi-line layout")
    p.add_argument("--trace", action="store_true",
                   help="show which lemmas fired")
    p.set_defaults(handler=_cmd_rewrite)

    p = sub.add_parser(
        "sql", help="compile the consistent rewriting to a SQL query"
    )
    _add_problem_arguments(p)
    p.set_defaults(handler=_cmd_sql)

    p = sub.add_parser("decide", help="answer CERTAINTY(q, FK) on a file")
    _add_problem_arguments(p)
    p.add_argument("database", help="instance file (repro.db.io format)")
    p.set_defaults(handler=_cmd_decide)

    p = sub.add_parser(
        "engine", help="answer through the plan-caching certainty engine"
    )
    _add_problem_arguments(p)
    p.add_argument("database", nargs="+", help="instance file(s)")
    p.add_argument("--sql", action="store_true",
                   help="evaluate FO problems as compiled SQL over SQLite")
    p.add_argument("--explain", action="store_true",
                   help="print the full plan summary")
    p.set_defaults(handler=_cmd_engine)

    p = sub.add_parser(
        "batch", help="evaluate many instances through one compiled plan"
    )
    _add_problem_arguments(p)
    p.add_argument("database", nargs="+", help="instance file(s)")
    p.add_argument("--sql", action="store_true",
                   help="evaluate FO problems as compiled SQL over SQLite")
    p.add_argument("--mode", choices=["serial", "thread", "process"],
                   default="serial", help="batch execution mode")
    p.add_argument("--jobs", type=_positive_int, default=None,
                   help="worker count for thread/process modes")
    p.add_argument("--repeat", type=_positive_int, default=1,
                   help="evaluate the instance list this many times")
    p.set_defaults(handler=_cmd_batch)

    p = sub.add_parser("repairs", help="enumerate canonical ⊕-repairs")
    _add_problem_arguments(p)
    p.add_argument("database", help="instance file")
    p.add_argument("--limit", type=int, default=20,
                   help="stop after this many repairs")
    p.set_defaults(handler=_cmd_repairs)

    p = sub.add_parser("violations", help="report constraint violations")
    _add_problem_arguments(p)
    p.add_argument("database", help="instance file")
    p.set_defaults(handler=_cmd_violations)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
