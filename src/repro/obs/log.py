"""Structured logging for the serving stack (stdlib ``logging`` only).

Every repro component logs through a child of the ``repro`` logger
(:func:`get_logger`) and emits **events**: a short dotted event name
plus key=value fields, carried on the record as ``record.event_fields``
(:func:`log_event`).  One :func:`setup_logging` call — made by
``repro serve`` from ``--log-level``/``--log-format``, and by each
fleet worker at boot — attaches a single stderr handler with either:

- ``human``: ``HH:MM:SS LEVEL logger event k=v k=v`` — for terminals;
- ``json``: one JSON object per line (``ts``, ``level``, ``logger``,
  ``event``, plus the event fields) — for log shippers and ``grep``
  by ``trace_id``.

Without :func:`setup_logging` the stack stays quiet below WARNING (the
stdlib last-resort handler), so embedding the server in tests or
notebooks costs nothing; per-request INFO lines are additionally gated
on ``isEnabledFor`` so the default configuration does no per-request
formatting work at all.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Mapping

#: Accepted ``--log-level`` spellings → stdlib levels.
LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: Accepted ``--log-format`` spellings.
LOG_FORMATS = ("human", "json")

#: Marker attribute identifying handlers installed by :func:`setup_logging`.
_HANDLER_MARK = "_repro_obs_handler"


def get_logger(name: str) -> logging.Logger:
    """The ``repro.*`` logger for a component (e.g. ``serve.server``)."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts/level/logger/event + fields."""

    def format(self, record: logging.LogRecord) -> str:
        doc: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "event_fields", None)
        if fields:
            doc.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, separators=(",", ":"), default=str)


class HumanFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger event k=v ...`` — terse terminal lines."""

    def format(self, record: logging.LogRecord) -> str:
        line = (
            f"{self.formatTime(record, '%H:%M:%S')} "
            f"{record.levelname:<7} {record.name} {record.getMessage()}"
        )
        fields = getattr(record, "event_fields", None)
        if fields:
            line += " " + " ".join(f"{k}={v}" for k, v in fields.items())
        if record.exc_info and record.exc_info[0] is not None:
            line += "\n" + self.formatException(record.exc_info)
        return line


def setup_logging(
    level: str = "warning",
    fmt: str = "human",
    *,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Configure the ``repro`` logger tree; idempotent.

    Replaces any handler a previous :func:`setup_logging` installed
    (re-running with new flags just re-points the output), leaves
    foreign handlers alone, and stops propagation to the root logger so
    embedding applications keep their own logging untouched.
    """
    if level not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of "
            f"{sorted(LOG_LEVELS)}"
        )
    if fmt not in LOG_FORMATS:
        raise ValueError(
            f"unknown log format {fmt!r}; expected one of {LOG_FORMATS}"
        )
    root = logging.getLogger("repro")
    root.setLevel(LOG_LEVELS[level])
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        JsonFormatter() if fmt == "json" else HumanFormatter()
    )
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    root.propagate = False
    return root


def log_event(
    logger: logging.Logger,
    level: int,
    event: str,
    /,
    **fields,
) -> None:
    """Emit *event* with key=value *fields* if *level* is enabled.

    The ``isEnabledFor`` gate keeps disabled levels free: no dict, no
    formatting, no record.  ``None``-valued fields are dropped so call
    sites can pass optional context (e.g. ``trace_id``) unconditionally.
    """
    if not logger.isEnabledFor(level):
        return
    payload: Mapping = {k: v for k, v in fields.items() if v is not None}
    logger.log(level, event, extra={"event_fields": payload})
