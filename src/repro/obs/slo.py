"""Complexity tiers: the recognizer verdict → SLO bucket map.

The paper's trichotomy means one ``decide`` verb hides five very
different cost regimes, so a single latency objective is meaningless.
Each prepared plan is binned into a **tier** by the backend the router
chose for it (the backend *is* the materialized recognizer verdict):

========  ==========================================================
tier      meaning / backends
========  ==========================================================
fo        FO-rewritable — ``fo-rewriting`` / ``fo-sql`` / ``fo-duckdb``
p16       Prop. 16 reachability island (NL) — ``nl-reachability``
p17       Prop. 17 dual-Horn island (P) — ``p-dual-horn``
sat       SAT-reduction backends (reserved; none registered yet)
oracle    everything exponential — ``subset-repairs``, ``oplus-oracle``
========  ==========================================================

Tier reports (per-tier p50/p99, error and timeout counts) live on
:class:`~repro.engine.engine.EngineStats` and are derived from the plan
table, so they survive ``merge_engine_stats`` across shards and fleet
workers for free.  ``repro slo`` renders them as a table.
"""

from __future__ import annotations

from typing import Iterable

#: Tier names, cheapest regime first.  This order is the report order.
TIERS = ("fo", "p16", "p17", "sat", "oracle")

#: Exact backend-name → tier assignments (checked before prefix rules).
_BACKEND_TIERS = {
    "nl-reachability": "p16",
    "p-dual-horn": "p17",
    "subset-repairs": "oracle",
    "oplus-oracle": "oracle",
}


def tier_for(verdict: str, backend: str) -> str:
    """The SLO tier of a plan, from its verdict token and backend name.

    The backend name wins when it is recognizably tiered (it reflects
    what actually ran); the verdict token breaks ties for unknown
    backends, and anything unrecognized is conservatively ``oracle`` —
    never promise a fast tier for an unknown cost regime.
    """
    name = (backend or "").strip().lower()
    if name in _BACKEND_TIERS:
        return _BACKEND_TIERS[name]
    if name.startswith("fo-"):
        return "fo"
    if "sat" in name.split("-"):
        return "sat"
    if (verdict or "").strip().upper() == "FO":
        return "fo"
    return "oracle"


def tier_sort_key(tier: str) -> tuple[int, str]:
    """Sort key placing known tiers in :data:`TIERS` order, rest last."""
    try:
        return (TIERS.index(tier), tier)
    except ValueError:
        return (len(TIERS), tier)


def _format_ms(seconds: float | None) -> str:
    return "-" if seconds is None else f"{seconds * 1e3:.3f}"


def format_slo_report(tiers: Iterable) -> str:
    """Render tier reports (``EngineStats.tiers``) as an aligned table.

    Accepts any iterable of objects with ``tier``, ``plans`` and
    ``metrics`` (a :class:`~repro.engine.metrics.MetricsSnapshot`).
    """
    rows = [
        (
            "tier", "plans", "evals", "errors", "timeouts",
            "p50 ms", "p99 ms", "max ms",
        )
    ]
    for report in sorted(tiers, key=lambda r: tier_sort_key(r.tier)):
        m = report.metrics
        rows.append((
            report.tier,
            str(report.plans),
            str(m.evaluations),
            str(m.errors),
            str(m.timeouts),
            _format_ms(m.p50_seconds),
            _format_ms(m.p99_seconds),
            _format_ms(m.max_seconds),
        ))
    if len(rows) == 1:
        return "no tiers recorded (no plans compiled yet)"
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            .rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
