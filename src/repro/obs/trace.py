"""Trace ids, ambient trace context, and an in-process span recorder.

A **trace** is one request's journey through the serving stack; a
**span** is one named, timed phase of that journey.  The phase
vocabulary is small and fixed (:data:`PHASES`) so that two deployments
— thread shards vs a process fleet — produce comparable breakdowns:

``queue_wait``
    flush → executor pick-up (thread-pool backlog).
``batch_linger``
    submit → flush of the micro-batch group the request joined.
``canonicalize``
    wire payload decode + canonical-form computation on the server.
``transport``
    the wire hop from a fleet front to the worker process owning the
    shard (absent under in-process thread shards).
``delta_apply``
    catching a cached incremental state up with the registry's delta
    chain on an instance-ref decide (:mod:`repro.store`).
``incremental_solve``
    re-deciding from the caught-up incremental state instead of from
    scratch (absent when the backend falls back to a full re-decide).
``solve``
    prepared-plan execution inside :class:`~repro.api.Session`.
``respond``
    response encode + socket write back to the client.

Spans land in a process-global :class:`SpanRecorder`: a bounded ring
buffer (served by the ``trace`` wire verb and ``repro trace``) plus a
per-phase :class:`~repro.engine.metrics.PlanMetrics` aggregate (merged
into the Prometheus page).  Recording is cheap — one lock, one deque
append — and never raises into the request path.

The ambient trace context is a :class:`contextvars.ContextVar`:
:func:`trace_context` pins the current trace id for a block, and layers
below (the engine's ``Session``) read it with :func:`current_trace_id`
without any signature changes.  Context vars do **not** cross thread
pools by themselves; the server re-enters :func:`trace_context` inside
the executor closure.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
import uuid
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import IO, Iterator, Mapping

#: The span phase vocabulary (see module docstring / docs/observability.md).
PHASES = (
    "queue_wait",
    "batch_linger",
    "canonicalize",
    "transport",
    "delta_apply",
    "incremental_solve",
    "solve",
    "respond",
)

#: Default ring capacity: enough for a few thousand in-flight requests'
#: spans without unbounded growth on a long-lived server.
DEFAULT_CAPACITY = 4096


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (uuid4, no dashes)."""
    return uuid.uuid4().hex


_current_trace: ContextVar[str | None] = ContextVar(
    "repro_trace_id", default=None
)


def current_trace_id() -> str | None:
    """The ambient trace id, or ``None`` outside any trace context."""
    return _current_trace.get()


@contextlib.contextmanager
def trace_context(trace_id: str | None) -> Iterator[str | None]:
    """Pin *trace_id* as the ambient trace for the ``with`` block."""
    token = _current_trace.set(trace_id)
    try:
        yield trace_id
    finally:
        _current_trace.reset(token)


@dataclass(frozen=True, slots=True)
class Span:
    """One named, timed phase of a traced request."""

    trace_id: str
    name: str
    start: float  #: epoch seconds (``time.time()``) when the phase began
    seconds: float  #: phase duration (monotonic-clock measured)
    site: str = "server"  #: which process recorded it (server / worker-<pid>)
    labels: Mapping[str, str] = field(default_factory=dict)
    parent: str | None = None

    def to_dict(self) -> dict:
        doc = {
            "trace_id": self.trace_id,
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "site": self.site,
        }
        if self.labels:
            doc["labels"] = dict(self.labels)
        if self.parent is not None:
            doc["parent"] = self.parent
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping) -> "Span":
        return cls(
            trace_id=doc["trace_id"],
            name=doc["name"],
            start=float(doc["start"]),
            seconds=float(doc["seconds"]),
            site=doc.get("site", "server"),
            labels=dict(doc.get("labels", {})),
            parent=doc.get("parent"),
        )


class SpanRecorder:
    """Bounded span ring + per-phase latency aggregates (thread-safe).

    Spans with a trace id enter the ring (queryable by id); **every**
    span, traced or not, feeds the per-phase aggregate so the phase
    histograms on the metrics page reflect all traffic, not just the
    traced fraction.  An optional JSON-lines sink mirrors traced spans
    to disk for offline analysis.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        site: str = "server",
        span_log: str | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._lock = threading.Lock()
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._phases: dict[str, object] = {}
        self._span_log: IO[str] | None = None
        self.site = site
        if span_log:
            self._span_log = open(span_log, "a", encoding="utf-8")

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def record(
        self,
        trace_id: str | None,
        name: str,
        seconds: float,
        *,
        start: float | None = None,
        labels: Mapping[str, str] | None = None,
        parent: str | None = None,
    ) -> Span | None:
        """Record one phase; returns the :class:`Span` if it was traced.

        ``trace_id=None`` still updates the per-phase aggregate (the
        request was real even if nobody asked to trace it) but skips
        the ring and the JSON-lines sink.
        """
        from ..engine.metrics import PlanMetrics  # lazy: avoids cycles

        with self._lock:
            metrics = self._phases.get(name)
            if metrics is None:
                metrics = self._phases[name] = PlanMetrics()
            metrics.record(max(seconds, 0.0))
            if trace_id is None:
                return None
            span = Span(
                trace_id=trace_id,
                name=name,
                start=time.time() - seconds if start is None else start,
                seconds=seconds,
                site=self.site,
                labels=dict(labels) if labels else {},
                parent=parent,
            )
            self._ring.append(span)
            sink = self._span_log
        if sink is not None:
            try:
                sink.write(json.dumps(span.to_dict()) + "\n")
                sink.flush()
            except (OSError, ValueError):
                pass  # a full disk must never fail the request path
        return span

    def spans_for(self, trace_id: str) -> tuple[Span, ...]:
        """Every retained span of *trace_id*, in recording order."""
        with self._lock:
            return tuple(s for s in self._ring if s.trace_id == trace_id)

    def recent(self, n: int = 50) -> tuple[Span, ...]:
        """The most recent *n* spans (newest last)."""
        with self._lock:
            spans = tuple(self._ring)
        return spans[-n:]

    def phase_snapshots(self) -> dict:
        """``{phase: MetricsSnapshot}`` for every phase seen so far."""
        with self._lock:
            return {
                name: metrics.snapshot()  # type: ignore[attr-defined]
                for name, metrics in sorted(self._phases.items())
            }

    def clear(self) -> None:
        """Drop all retained spans and aggregates (for tests)."""
        with self._lock:
            self._ring.clear()
            self._phases.clear()

    def close(self) -> None:
        """Close the JSON-lines sink, if any (idempotent)."""
        with self._lock:
            sink, self._span_log = self._span_log, None
        if sink is not None:
            try:
                sink.close()
            except OSError:
                pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"SpanRecorder(site={self.site!r}, {len(self)}/"
            f"{self.capacity} spans)"
        )


_recorder = SpanRecorder()
_recorder_lock = threading.Lock()


def recorder() -> SpanRecorder:
    """The process-global span recorder."""
    return _recorder


def configure_recorder(
    *,
    capacity: int | None = None,
    site: str | None = None,
    span_log: str | None = None,
) -> SpanRecorder:
    """Reconfigure the global recorder in place; returns it.

    Existing spans are retained (re-ringed under a new capacity).  A new
    ``span_log`` replaces — and closes — any previous sink.
    """
    global _recorder
    with _recorder_lock:
        current = _recorder
        if capacity is not None and capacity != current.capacity:
            with current._lock:
                current._ring = deque(current._ring, maxlen=capacity)
        if site is not None:
            current.site = site
        if span_log is not None:
            with current._lock:
                old, current._span_log = current._span_log, None
            if old is not None:
                try:
                    old.close()
                except OSError:
                    pass
            with current._lock:
                current._span_log = open(span_log, "a", encoding="utf-8")
        return current


def record_span(
    name: str,
    seconds: float,
    *,
    trace_id: str | None = None,
    labels: Mapping[str, str] | None = None,
) -> Span | None:
    """Record a phase under the ambient trace (or an explicit one)."""
    tid = trace_id if trace_id is not None else current_trace_id()
    return _recorder.record(tid, name, seconds, labels=labels)


@contextlib.contextmanager
def span(name: str, **labels: str) -> Iterator[None]:
    """Time the ``with`` block as a phase under the ambient trace."""
    start = time.perf_counter()
    try:
        yield
    finally:
        record_span(name, time.perf_counter() - start, labels=labels or None)
