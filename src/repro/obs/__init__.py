"""Observability for the serving stack: traces, spans, logs, SLO tiers.

``repro.obs`` is the one place the serving stack reports *where time
went*.  It is deliberately dependency-free (stdlib only) and import-safe
from every layer — ``repro.engine``, ``repro.api`` and ``repro.serve``
all import it without cycles:

- :mod:`repro.obs.trace` — trace ids, an ambient per-request trace
  context (:func:`trace_context` / :func:`current_trace_id`), and a
  bounded in-process :class:`SpanRecorder` ring that doubles as the
  per-phase latency aggregate behind the Prometheus ``metrics`` page.
- :mod:`repro.obs.log` — one structured-logging setup (JSON or human
  formatter) shared by the server, supervisor, fleet and engine.
- :mod:`repro.obs.slo` — the recognizer-verdict → complexity-tier map
  (fo / p16 / p17 / sat / oracle) behind per-tier SLO accounting.

See ``docs/observability.md`` for the trace lifecycle, span glossary,
log event catalogue and metric reference.
"""

from .log import (
    LOG_FORMATS,
    LOG_LEVELS,
    HumanFormatter,
    JsonFormatter,
    get_logger,
    log_event,
    setup_logging,
)
from .slo import TIERS, format_slo_report, tier_for
from .trace import (
    PHASES,
    Span,
    SpanRecorder,
    configure_recorder,
    current_trace_id,
    new_trace_id,
    record_span,
    recorder,
    span,
    trace_context,
)

__all__ = [
    "LOG_FORMATS",
    "LOG_LEVELS",
    "HumanFormatter",
    "JsonFormatter",
    "PHASES",
    "Span",
    "SpanRecorder",
    "TIERS",
    "configure_recorder",
    "current_trace_id",
    "format_slo_report",
    "get_logger",
    "log_event",
    "new_trace_id",
    "record_span",
    "recorder",
    "setup_logging",
    "span",
    "tier_for",
    "trace_context",
]
