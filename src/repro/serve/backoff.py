"""Capped exponential backoff with jitter, shared by every retry path.

Two callers, one schedule:

* :class:`~repro.serve.client.ServeClient`'s reconnect-and-resend loop —
  a transport failure used to retry *immediately*, which turns a worker
  restart into a reconnect stampede; now each attempt waits
  ``base * 2**attempt`` capped at ``cap``, with "full jitter" (uniform in
  ``[0, delay]``, the AWS-style variant that decorrelates a thundering
  herd best for a given mean delay);
* the ``overloaded``/``retry_after_ms`` path — the server's hint is the
  *floor* of the wait (it reflects actual queue pressure), the capped
  exponential is layered on top so repeated rejections still back off.

The schedule is a pure function of ``(attempt, policy, rng)`` so tests
can assert its exact shape by pinning the rng.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["BackoffPolicy", "backoff_delay_seconds"]


@dataclass(frozen=True)
class BackoffPolicy:
    """The knobs of one capped-exponential-with-jitter schedule.

    ``jitter=1.0`` (the default) is full jitter: the wait is uniform in
    ``[0, delay]``.  ``jitter=0.0`` disables randomness (the wait is the
    deterministic capped exponential — what the schedule-shape tests
    pin).  Values between interpolate: the wait is uniform in
    ``[(1 - jitter) * delay, delay]``.
    """

    base_ms: float = 50.0
    cap_ms: float = 2000.0
    jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.base_ms <= 0:
            raise ValueError(f"base_ms must be positive, got {self.base_ms}")
        if self.cap_ms < self.base_ms:
            raise ValueError(
                f"cap_ms must be >= base_ms, got cap_ms={self.cap_ms} "
                f"base_ms={self.base_ms}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_ms(
        self,
        attempt: int,
        *,
        floor_ms: float = 0.0,
        rng: random.Random | None = None,
    ) -> float:
        """The wait before retry number *attempt* (0-based), in ms.

        ``floor_ms`` is the server's ``retry_after_ms`` hint when there
        is one: the jittered wait never undercuts it (the hint already
        prices in the server's queue pressure; jittering *below* it
        would land the retry back in the same rejection window).
        """
        if attempt < 0:
            raise ValueError(f"attempt must be non-negative, got {attempt}")
        # 2**attempt overflows no float for any sane retry count, but an
        # adversarial attempt=1000 must not either: cap the exponent at
        # the point the cap dominates anyway.
        exponent = min(attempt, 63)
        delay = min(self.base_ms * (2.0 ** exponent), self.cap_ms)
        if self.jitter > 0.0:
            low = (1.0 - self.jitter) * delay
            delay = (rng or random).uniform(low, delay)
        return max(delay, floor_ms)


def backoff_delay_seconds(
    attempt: int,
    policy: BackoffPolicy | None = None,
    *,
    retry_after_ms: float | None = None,
    rng: random.Random | None = None,
) -> float:
    """One schedule step in seconds (the sleep-call-ready convenience)."""
    policy = policy or BackoffPolicy()
    return policy.delay_ms(
        attempt, floor_ms=retry_after_ms or 0.0, rng=rng
    ) / 1e3
