"""The ``repro.serve`` wire protocol: JSON lines over a byte stream.

One frame is one JSON object on one ``\\n``-terminated line (UTF-8, no
embedded newlines — ``json.dumps`` never emits raw newlines).  Requests
carry an ``id`` the caller chooses; the response echoes it, so clients may
pipeline arbitrarily many requests per connection and match answers out of
order — the server's micro-batcher deliberately reorders work.

Request frames::

    {"id": 7, "verb": "decide",
     "problem":  {... Problem.to_dict() ...},
     "instance": {... repro.db.io.to_dict() ...}}

Verbs and their payloads:

``ping``
    no payload; answers ``{"pong": true, "protocol": ..., "version": ...}``.
``decide``
    ``problem`` + ``instance``; answers ``{"decision": Decision.to_dict(),
    "shard": i, "micro_batch": n}`` (*n* = how many requests the server
    folded into one engine batch).
``decide_batch``
    ``problem`` + ``instances`` (a list); answers
    ``{"batch": BatchDecision.to_dict(), "shard": i}``.
``classify``
    ``problem``; answers ``{"verdict": "FO"|"L_HARD"|"NL_HARD", "in_fo":
    ..., "explanation": ..., "shard": i}`` — the same stable verdict
    vocabulary ``Decision`` documents carry.
``explain``
    ``problem``; answers ``{"plan": ..., "shard": i}``.
``stats``
    no payload; answers ``{"server": ..., "shards": [EngineStats dicts]}``.
``metrics``
    no payload; answers ``{"exposition": "..."}`` — a Prometheus text-format
    page (``repro_server_*`` serving counters plus every shard's
    ``EngineStats.to_prom()`` labelled ``shard="i"``), ready to hand to a
    scrape endpoint.
``trace``
    ``trace_id``; answers ``{"trace_id": ..., "spans": [Span dicts]}`` —
    every phase span the server (and, behind a fleet front, its workers)
    still retains for that trace, in start order.
``instance_put``
    ``instance_ref`` + ``instance`` (+ optional ``version`` to seed, used
    by fleet migration); stores the instance server-side and answers
    ``{"instance": {"ref", "version", "facts", "bytes"}, "shard": i}``.
``instance_patch``
    ``instance_ref`` + ``delta`` (the ``repro/delta`` document) + optional
    ``expect_version`` (compare-and-swap precondition); answers
    ``{"instance": {...}, "applied": {"adds": n, "removes": m},
    "shard": i}``.  Conflicts (CAS mismatch, removing an absent fact,
    adding a present one) answer the ``conflict`` error code.
``instance_drop``
    ``instance_ref``; answers ``{"ref": ..., "dropped": bool, "shard": i}``.
``instance_get``
    ``instance_ref``; answers ``{"ref": ..., "version": ..., "instance":
    {... db document ...}, "shard": i}`` (fleet migration's read side).
``instance_list``
    no payload; answers ``{"instances": [...], "bytes": ..., "max_bytes":
    ..., "evictions": ...}`` aggregated across shards/workers.
``replicate``
    replica maintenance (cluster controllers drive it, workers hold the
    copies).  ``instance_ref`` + ``instance`` + ``version`` upserts a
    replica snapshot at exactly that version; ``instance_ref`` + ``delta``
    + ``version`` applies one delta on a replica already at ``version - 1``
    (a stale replica answers ``conflict`` and the controller falls back to
    a snapshot); a bare ``instance_ref`` drops the replica.  Answers
    ``{"ref": ..., "replica": bool, "version": ...}``.  Idempotent — the
    snapshot form overwrites, the delta form is CAS-guarded — so clients
    may replay it after transport failures.
``replica_get``
    ``instance_ref``; answers ``{"ref": ..., "version": ..., "instance":
    {... db document ...}}`` from the replica side-store (re-replication's
    read side).  An absent replica answers ``unknown-instance``.
``replica_inventory``
    no payload; answers ``{"replicas": [{"ref", "version", "facts",
    "bytes"}, ...]}`` — the replica side-store's metadata, which a cold
    controller combines with ``instance_list`` to rebuild ref placement
    without any state of its own.
``promote``
    ``instance_ref``; the worker moves its replica of the ref into its
    primary store (version preserved) unless the primary copy is already
    as new, then drops the replica.  Answers ``{"ref": ..., "promoted":
    bool, "version": ...}``.  Idempotent: promoting an absent replica is
    a no-op answering ``promoted: false``.
``decide`` with ``instance_ref`` instead of ``instance``
    decides over the stored instance; the result gains ``{"instance":
    {"ref", "version", "strategy", "incremental"}}`` and the decision's
    ``incremental`` field reports whether cached incremental state
    answered.  A ref that is unknown (never put, dropped, or evicted)
    answers the ``unknown-instance`` error code.
``shutdown``
    no payload; answers ``{"stopping": true}`` and the server drains.
``auth``
    the shared-secret handshake (client-initiated, two steps).  Step one
    carries no payload and answers ``{"required": bool, "nonce": ...}``;
    when ``required`` the client answers with a second ``auth`` frame
    carrying ``mac`` = HMAC-SHA256(secret, nonce) and receives
    ``{"authenticated": true}``.  On an auth-required server every other
    verb before a successful handshake answers the ``unauthorized`` code.
``register``
    cluster controllers only; ``worker`` = ``{"name", "host", "port",
    "capacity", "generation"}`` — the worker's advertised dial address.
    Answers ``{"worker": {...}, "workers": n, "ring_epoch": e}`` and
    triggers a live ring rebalance (ref migration + plan-cache warmup).
``deregister``
    cluster controllers only; ``worker`` = ``{"name"}`` (+ optional
    ``"stop": true`` to also shut the worker down).  Graceful drain: the
    leaver's stored instances migrate (versions preserved) before the
    ring shrinks.  Answers ``{"removed": bool, "workers": n,
    "ring_epoch": e}``.
``heartbeat``
    cluster controllers only; ``worker`` = ``{"name", "generation"}``.
    Answers ``{"known": bool, "workers": n, "ring_epoch": e}`` —
    ``known: false`` tells an evicted worker to re-register.
``resize``
    ``workers`` (an int); fleet fronts resize the local supervisor,
    cluster controllers drain surplus members (shrink) or record the
    target width for joining workers (grow).  Answers ``{"workers": n,
    "requested": m}``.

Any request may carry the optional tracing fields ``trace_id`` (an
opaque string naming the request's distributed trace; clients generate
one per decide when the caller does not) and ``parent_span`` (the
caller's enclosing span name, for nested tracing).  Servers propagate
the trace id through the micro-batcher and any fleet worker hop, record
phase spans under it, and echo it in decide results.

Responses are either ``{"id": ..., "ok": true, "result": {...}}`` or the
structured error envelope ``{"id": ..., "ok": false, "error": {"code":
..., "message": ...}}``.  Error codes are stable strings (see
:data:`ERROR_CODES`); clients surface them as
:class:`~repro.exceptions.RemoteError`.  An ``overloaded`` envelope's
error object additionally carries ``retry_after_ms`` — the server's
jitterable backoff hint; the request was shed at admission and never
executed, so retrying it is always safe.

Versioning: within one :data:`VERSION`, changes are additive only (new
verbs, new optional fields, new error codes); anything that would break an
existing client bumps :data:`VERSION`.  ``ping`` reports both
:data:`PROTOCOL` and :data:`VERSION` so clients can check before relying
on newer verbs.  The full wire specification lives in
``docs/protocol.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..exceptions import (
    DeltaConflictError,
    InstanceFormatError,
    ProblemFormatError,
    RemoteError,
    ReproError,
    ServeProtocolError,
    ServerOverloadedError,
    UnauthorizedError,
    UnknownInstanceError,
    WorkerUnavailableError,
)

PROTOCOL = "repro/serve"
VERSION = 1

VERBS = (
    "ping", "decide", "decide_batch", "classify", "explain", "stats",
    "metrics", "trace", "instance_put", "instance_patch", "instance_drop",
    "instance_get", "instance_list", "shutdown", "auth", "register",
    "deregister", "heartbeat", "resize", "replicate", "replica_get",
    "replica_inventory", "promote",
)

#: code → meaning of the structured error envelope.
ERROR_CODES = {
    "bad-request": "malformed frame: invalid JSON or a bad envelope field",
    "bad-problem": "the 'problem' payload could not be decoded",
    "bad-instance": "an 'instance'/'instances'/'delta' payload could not "
                    "be decoded",
    "unsupported": "unknown verb or protocol version",
    "domain": "the engine rejected or failed the decoded problem",
    "unavailable": "a fleet worker is down and could not be respawned; "
                   "the request was not executed (safe to retry)",
    "conflict": "an instance patch violated its version precondition or "
                "the delta's strict conflict rules; nothing was applied",
    "unknown-instance": "the named instance ref is not held (never put, "
                        "dropped, or evicted); re-put and retry",
    "overloaded": "the server shed the request at admission (an inflight/"
                  "queue budget is exhausted); it was not executed — retry "
                  "after the envelope's retry_after_ms hint",
    "unauthorized": "the connection has not completed the shared-secret "
                    "handshake (or presented a bad MAC); authenticate via "
                    "the 'auth' verb and retry",
    "internal": "unexpected server-side failure",
}

#: Verbs that mutate server-side state: a client must not blindly replay
#: them after a transport failure (the first copy may have applied).  An
#: ``instance_patch`` carrying ``expect_version`` is the exception — its
#: compare-and-swap precondition turns a double-apply into a structured
#: ``conflict`` — which is what :func:`replay_safe` encodes.  The replica
#: maintenance verbs (``replicate``/``promote``) write state too, but are
#: idempotent by construction (snapshots overwrite, deltas are version-
#: guarded), so they stay replayable and out of this set.
MUTATION_VERBS = frozenset(
    {"instance_put", "instance_patch", "instance_drop"}
)


def replay_safe(verb: str, expect_version: int | None = None) -> bool:
    """May a client transparently resend *verb* after a transport failure?

    Pure verbs always are.  Mutations are not — except a patch guarded by
    ``expect_version``, whose replay either applies exactly once or fails
    the version check with a ``conflict`` the caller can see.
    """
    if verb not in MUTATION_VERBS:
        return True
    return verb == "instance_patch" and expect_version is not None


@dataclass(frozen=True, slots=True)
class Request:
    """One decoded request frame."""

    id: int | str
    verb: str
    problem: dict | None = None
    instance: dict | None = None
    instances: list | None = None
    trace_id: str | None = None
    parent_span: str | None = None
    instance_ref: str | None = None
    delta: dict | None = None
    expect_version: int | None = None
    version: int | None = None
    mac: str | None = None
    worker: dict | None = None
    workers: int | None = None

    def to_dict(self) -> dict:
        data: dict = {"id": self.id, "verb": self.verb}
        if self.problem is not None:
            data["problem"] = self.problem
        if self.instance is not None:
            data["instance"] = self.instance
        if self.instances is not None:
            data["instances"] = self.instances
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        if self.parent_span is not None:
            data["parent_span"] = self.parent_span
        if self.instance_ref is not None:
            data["instance_ref"] = self.instance_ref
        if self.delta is not None:
            data["delta"] = self.delta
        if self.expect_version is not None:
            data["expect_version"] = self.expect_version
        if self.version is not None:
            data["version"] = self.version
        if self.mac is not None:
            data["mac"] = self.mac
        if self.worker is not None:
            data["worker"] = self.worker
        if self.workers is not None:
            data["workers"] = self.workers
        return data


def encode_frame(data: dict) -> bytes:
    """One wire frame: compact JSON plus the line terminator."""
    return json.dumps(data, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes | str) -> dict:
    """The JSON object on one wire line.

    Raises :class:`~repro.exceptions.ServeProtocolError` on invalid JSON or
    a non-object frame.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ServeProtocolError(f"frame is not UTF-8: {error}") from error
    try:
        data = json.loads(line)
    except json.JSONDecodeError as error:
        raise ServeProtocolError(f"invalid JSON frame: {error}") from error
    if not isinstance(data, dict):
        raise ServeProtocolError(
            f"frame must be a JSON object, got {type(data).__name__}"
        )
    return data


def decode_request(line: bytes | str | dict) -> Request:
    """Decode and validate one request frame (raw line or parsed object)."""
    data = line if isinstance(line, dict) else decode_frame(line)
    request_id = data.get("id")
    if not isinstance(request_id, (int, str)) or isinstance(request_id, bool):
        raise ServeProtocolError(
            f"request 'id' must be an integer or string, got {request_id!r}"
        )
    verb = data.get("verb")
    if not isinstance(verb, str):
        raise ServeProtocolError(f"request 'verb' must be a string, got {verb!r}")
    problem = data.get("problem")
    if problem is not None and not isinstance(problem, dict):
        raise ServeProtocolError("request 'problem' must be an object")
    instance = data.get("instance")
    if instance is not None and not isinstance(instance, dict):
        raise ServeProtocolError("request 'instance' must be an object")
    instances = data.get("instances")
    if instances is not None and not isinstance(instances, list):
        raise ServeProtocolError("request 'instances' must be a list")
    trace_id = data.get("trace_id")
    if trace_id is not None and not isinstance(trace_id, str):
        raise ServeProtocolError("request 'trace_id' must be a string")
    parent_span = data.get("parent_span")
    if parent_span is not None and not isinstance(parent_span, str):
        raise ServeProtocolError("request 'parent_span' must be a string")
    instance_ref = data.get("instance_ref")
    if instance_ref is not None and (
        not isinstance(instance_ref, str) or not instance_ref
    ):
        raise ServeProtocolError(
            "request 'instance_ref' must be a non-empty string"
        )
    delta = data.get("delta")
    if delta is not None and not isinstance(delta, dict):
        raise ServeProtocolError("request 'delta' must be an object")
    expect_version = data.get("expect_version")
    if expect_version is not None and (
        not isinstance(expect_version, int) or isinstance(expect_version, bool)
    ):
        raise ServeProtocolError(
            "request 'expect_version' must be an integer"
        )
    version = data.get("version")
    if version is not None and (
        not isinstance(version, int) or isinstance(version, bool)
    ):
        raise ServeProtocolError("request 'version' must be an integer")
    mac = data.get("mac")
    if mac is not None and not isinstance(mac, str):
        raise ServeProtocolError("request 'mac' must be a string")
    worker = data.get("worker")
    if worker is not None and not isinstance(worker, dict):
        raise ServeProtocolError("request 'worker' must be an object")
    workers = data.get("workers")
    if workers is not None and (
        not isinstance(workers, int) or isinstance(workers, bool)
    ):
        raise ServeProtocolError("request 'workers' must be an integer")
    return Request(
        id=request_id,
        verb=verb,
        problem=problem,
        instance=instance,
        instances=instances,
        trace_id=trace_id,
        parent_span=parent_span,
        instance_ref=instance_ref,
        delta=delta,
        expect_version=expect_version,
        version=version,
        mac=mac,
        worker=worker,
        workers=workers,
    )


def ok_response(request_id: int | str, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: int | str | None,
    code: str,
    message: str,
    retry_after_ms: int | None = None,
) -> dict:
    """The structured error envelope.  ``retry_after_ms`` is additive
    within :data:`VERSION`: only ``overloaded`` envelopes carry it, and
    clients that predate it simply ignore the extra field."""
    assert code in ERROR_CODES, f"unknown error code {code!r}"
    error: dict = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = int(retry_after_ms)
    return {"id": request_id, "ok": False, "error": error}


class UnsupportedVerbError(ServeProtocolError):
    """The request named a verb this server does not speak."""


def error_code_for(error: Exception) -> str:
    """The envelope code an exception maps to (server-side dispatch)."""
    if isinstance(error, UnsupportedVerbError):
        return "unsupported"
    if isinstance(error, ServeProtocolError):
        return "bad-request"
    if isinstance(error, ProblemFormatError):
        return "bad-problem"
    if isinstance(error, InstanceFormatError):
        return "bad-instance"
    if isinstance(error, WorkerUnavailableError):
        return "unavailable"
    if isinstance(error, UnknownInstanceError):
        return "unknown-instance"
    if isinstance(error, ServerOverloadedError):
        return "overloaded"
    if isinstance(error, UnauthorizedError):
        return "unauthorized"
    if isinstance(error, DeltaConflictError):
        return "conflict"
    if isinstance(error, RemoteError):
        # a front forwarding a verb relays the worker's structured code
        # instead of laundering it into "domain" (unknown codes from a
        # newer peer still degrade to the generic bucket)
        return error.code if error.code in ERROR_CODES else "domain"
    if isinstance(error, ReproError):
        return "domain"
    return "internal"


def decode_response(line: bytes | str) -> tuple[int | str | None, dict]:
    """Decode a response frame into ``(id, result)``.

    Error envelopes raise :class:`~repro.exceptions.RemoteError` carrying
    the structured code — the client-side mirror of :func:`error_response`;
    the echoed id travels on the exception's ``request_id`` attribute so a
    pipelining client can still route the failure to its caller.
    """
    data = decode_frame(line)
    request_id = data.get("id")
    if data.get("ok") is True:
        result = data.get("result")
        if not isinstance(result, dict):
            raise ServeProtocolError(
                f"ok-response 'result' must be an object, got {result!r}"
            )
        return request_id, result
    error = data.get("error")
    if not isinstance(error, dict):
        raise ServeProtocolError(f"malformed response frame: {data!r}")
    retry_after = error.get("retry_after_ms")
    remote = RemoteError(
        str(error.get("code", "internal")),
        str(error.get("message", "")),
        retry_after_ms=(
            int(retry_after)
            if isinstance(retry_after, (int, float))
            and not isinstance(retry_after, bool)
            else None
        ),
    )
    remote.request_id = request_id
    raise remote
