"""Sharded serving: one engine per shard, routed by problem fingerprint.

A single :class:`~repro.engine.CertaintyEngine` bounds its plan cache, so
a working set larger than the cache thrashes — every recurrence of an
evicted problem pays classification, routing, rewriting construction and
(for the SQL backend) connection warm-up again.  :class:`ShardedEngine`
owns *N* independent :class:`~repro.api.Session` workers and routes every
request by **consistent hashing on the problem's canonical class
fingerprint** (:class:`HashRing`): the same problem — in *any*
relation-renaming-isomorphic spelling — always lands on the same shard,
so that shard's LRU cache stays hot and its one prepared plan per class
(warm SQL connections included) serves every recurrence and every twin,
while aggregate cache capacity grows linearly with the shard count.

The ring hashes each shard to ``replicas`` virtual points, so adding or
removing a shard remaps only ~``1/N`` of the fingerprint space — the
property that lets a serving fleet resize without flushing every cache.
All routing is deterministic across processes: two ``ShardedEngine``\\ s
with the same shard count agree on every placement, which is what makes
the fingerprint a *distribution* key and not just a cache key — and what
lets :class:`repro.serve.fleet.FleetEngine` reuse this exact ring to
route over worker *processes* while agreeing with the in-process engine
on every placement.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass

from ..api.decision import BatchDecision, Decision
from ..api.problem import Problem
from ..api.session import Session, SessionConfig
from ..db.instance import DatabaseInstance
from ..engine.engine import EngineStats


def ref_digest(ref: str) -> str:
    """The ring digest of a named-instance ref.

    Namespaced apart from problem-class digests so a ref that happens to
    spell a class fingerprint cannot collide with it; shared by the
    thread-shard and fleet engines so both agree on every ref placement.
    """
    return hashlib.sha256(f"instance-ref:{ref}".encode("utf-8")).hexdigest()


class HashRing:
    """A consistent-hash ring mapping hex digests to shard indexes.

    Ring tokens are keyed by member *name* (``names``), defaulting to
    ``shard-{i}`` — which preserves every historical placement for the
    index-addressed thread/process fleets.  A cluster controller keys
    the ring by worker name instead: a member's virtual points depend
    only on its own name, so an arbitrary member leaving (not just the
    tail) remaps only ~``1/N`` of the digest space, and a worker that
    rejoins under the same name reclaims exactly its old ranges.
    """

    def __init__(
        self,
        n_shards: int,
        replicas: int = 64,
        *,
        names: tuple[str, ...] | list[str] | None = None,
    ):
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be positive, got {replicas}")
        if names is None:
            names = tuple(f"shard-{shard}" for shard in range(n_shards))
        else:
            names = tuple(names)
            if len(names) != n_shards:
                raise ValueError(
                    f"ring has {n_shards} shards but {len(names)} names"
                )
            if len(set(names)) != len(names):
                raise ValueError("ring member names must be unique")
        self.n_shards = n_shards
        self.replicas = replicas
        self.names = names
        points: list[tuple[int, int]] = []
        for shard, name in enumerate(names):
            for replica in range(replicas):
                token = f"{name}/{replica}".encode("utf-8")
                point = int.from_bytes(
                    hashlib.sha256(token).digest()[:8], "big"
                )
                points.append((point, shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._shards = [s for _, s in points]

    def shard_for(self, digest: str) -> int:
        """The owning shard of a fingerprint digest (hex string)."""
        return self._shards[self._owner_index(digest)]

    def successor_for(self, digest: str) -> int | None:
        """The next *distinct* shard after the digest's owner, walking the
        ring clockwise — where the cluster controller places a ref's
        replica.  ``None`` on a single-member ring (nowhere distinct).

        The load-bearing property: when the owner's tokens are removed
        (its member evicted), the first remaining token at the digest's
        position belongs to exactly this successor — so a replica placed
        here *becomes the ring owner* the moment its owner dies, and
        promotion is a local move, not a transfer.
        """
        if self.n_shards < 2:
            return None
        index = self._owner_index(digest)
        owner = self._shards[index]
        n = len(self._points)
        for step in range(1, n):
            shard = self._shards[(index + step) % n]
            if shard != owner:
                return shard
        return None  # pragma: no cover — unreachable with n_shards >= 2

    def _owner_index(self, digest: str) -> int:
        point = int.from_bytes(
            hashlib.sha256(digest.encode("ascii")).digest()[:8], "big"
        )
        index = bisect_right(self._points, point)
        if index == len(self._points):  # wrap around the ring
            index = 0
        return index


@dataclass(frozen=True)
class ShardStats:
    """One shard's identity plus its engine's stats snapshot."""

    shard: int
    stats: EngineStats

    def to_dict(self) -> dict:
        return {"shard": self.shard, **self.stats.to_dict()}


class ShardedEngine:
    """*N* sessions behind one facade, routed by fingerprint.

    The sharded mirror of :class:`~repro.api.Session`: ``decide`` /
    ``decide_batch`` / ``classify`` / ``explain`` / ``stats`` / ``close``,
    every problem-taking call forwarded to the shard that owns the
    problem's fingerprint.  Sessions are thread-safe, so the sharded
    engine is too — the asyncio server drives it from a thread pool.
    """

    def __init__(
        self,
        n_shards: int = 4,
        config: SessionConfig | None = None,
        *,
        replicas: int = 64,
    ):
        self._ring = HashRing(n_shards, replicas=replicas)
        self._sessions = tuple(
            Session(config) for _ in range(n_shards)
        )
        self._closed = False

    @property
    def n_shards(self) -> int:
        return len(self._sessions)

    def shard_for(self, problem: Problem) -> int:
        """The shard index owning *problem*'s class (deterministic).

        Keyed on the class digest: renamed twins land on the same shard
        and share its one prepared plan.
        """
        return self._ring.shard_for(problem.fingerprint.digest)

    def shard_for_ref(self, ref: str) -> int:
        """The shard index owning the named instance *ref*.

        Ref-affinity routing: decides by reference go to the shard that
        holds the instance (and its incremental states), not to the shard
        the problem class would hash to.
        """
        return self._ring.shard_for(ref_digest(ref))

    def session(self, shard: int) -> Session:
        """The shard's session (for executing on a known shard)."""
        return self._sessions[shard]

    # -- the session surface, routed ----------------------------------------

    def decide(self, problem: Problem, db: DatabaseInstance) -> Decision:
        return self._sessions[self.shard_for(problem)].decide(problem, db)

    def decide_batch(self, problem: Problem, dbs) -> BatchDecision:
        return self._sessions[self.shard_for(problem)].decide_batch(
            problem, dbs
        )

    def classify(self, problem: Problem):
        return self._sessions[self.shard_for(problem)].classify(problem)

    def explain(self, problem: Problem) -> str:
        return self._sessions[self.shard_for(problem)].explain(problem)

    def stats(self) -> tuple[ShardStats, ...]:
        """Every shard's engine stats, in shard order."""
        return tuple(
            ShardStats(shard=i, stats=session.stats())
            for i, session in enumerate(self._sessions)
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every shard's session (idempotent)."""
        self._closed = True
        for session in self._sessions:
            session.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"ShardedEngine({state}, shards={self.n_shards})"
