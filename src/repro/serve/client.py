"""Clients for the ``repro.serve`` protocol.

Two shapes for two callers:

* :class:`ServeClient` — blocking, one request in flight at a time; the
  shape the CLI (``repro decide --connect``), examples and scripts want.
  Speaks :class:`~repro.api.Problem`/:class:`~repro.db.DatabaseInstance`
  in and :class:`~repro.api.Decision`/:class:`~repro.api.BatchDecision`
  out — the wire stays invisible.
* :class:`AsyncServeClient` — asyncio, arbitrarily many pipelined
  requests per connection; a background reader task routes responses to
  their callers by echoed id.  This is what exercises the server's
  micro-batcher: concurrent same-problem decides from one (or many)
  async clients get folded into shared engine batches.

Both raise :class:`~repro.exceptions.RemoteError` when the server answers
with a structured error envelope, and
:class:`~repro.exceptions.ServeProtocolError` when the stream itself is
broken.  Because every verb is idempotent (decides are pure), the
blocking client can optionally reconnect-and-resend across transport
failures (``ServeClient(..., retries=n)``) — the client half of riding
out a fleet worker restart; error envelopes are never retried.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import time

from ..api.decision import BatchDecision, Decision
from ..api.problem import Problem
from ..db import io as db_io
from ..db.instance import DatabaseInstance
from ..exceptions import RemoteError, ServeProtocolError
from ..obs.trace import new_trace_id
from ..store.delta import Delta
from .backoff import BackoffPolicy, backoff_delay_seconds
from .protocol import Request, decode_response, encode_frame, replay_safe

#: Verbs the clients auto-assign a fresh trace id to when none is given:
#: the expensive ones, where "where did the time go" is worth asking.
_TRACED_VERBS = frozenset({"decide", "decide_batch"})


def _request_frame(
    request_id: int,
    verb: str,
    problem: Problem | None = None,
    instance=None,  # DatabaseInstance, or an already-encoded wire dict
    instances=None,
    trace_id: str | None = None,
    parent_span: str | None = None,
    instance_ref: str | None = None,
    delta=None,  # Delta, or an already-encoded wire dict
    expect_version: int | None = None,
    version: int | None = None,
    mac: str | None = None,
    worker: dict | None = None,
    workers: int | None = None,
) -> bytes:
    # raw dicts pass through untouched: a fleet front forwarding a verb
    # to its owning worker must not re-materialize the payloads
    if instance is not None and not isinstance(instance, dict):
        instance = db_io.to_dict(instance)
    if delta is not None and not isinstance(delta, dict):
        delta = delta.to_dict()
    return encode_frame(
        Request(
            id=request_id,
            verb=verb,
            problem=problem.to_dict() if problem is not None else None,
            instance=instance,
            instances=(
                [db_io.to_dict(db) for db in instances]
                if instances is not None
                else None
            ),
            trace_id=trace_id,
            parent_span=parent_span,
            instance_ref=instance_ref,
            delta=delta,
            expect_version=expect_version,
            version=version,
            mac=mac,
            worker=worker,
            workers=workers,
        ).to_dict()
    )


class ServeClient:
    """A blocking JSON-lines client (one request in flight at a time).

    With ``retries=n`` a request that dies on a transport failure — the
    connection refused, reset, or closed mid-cycle, as happens when a
    fleet worker restarts — reconnects and resends up to *n* more times
    before raising, waiting a capped-exponential, jittered backoff step
    (:class:`~repro.serve.backoff.BackoffPolicy`) before each attempt so
    a worker restart never meets a reconnect stampede.  This is safe
    because every verb is idempotent: decides are pure functions of
    problem + instance, the introspection verbs only read, and
    ``shutdown`` converges.  Structured error envelopes
    (:class:`~repro.exceptions.RemoteError`) are never retried — the
    server answered; the answer was no — with one exception:
    ``overloaded`` envelopes, which the server sent *instead of*
    executing the request; those are retried on the same connection
    after honoring the envelope's ``retry_after_ms`` hint (jittered
    upward, never below the hint).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 30.0,
        retries: int = 0,
        backoff: BackoffPolicy | None = None,
        auth_secret: str | None = None,
        ssl_context=None,  # an ssl.SSLContext; see repro.cluster.auth
    ):
        if retries < 0:
            raise ValueError(f"retries must be non-negative, got {retries}")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = retries
        self._backoff = backoff or BackoffPolicy()
        self._auth_secret = auth_secret
        self._ssl_context = ssl_context
        self._sleep = time.sleep  # injectable: schedule-shape tests
        self._rng = random.Random()
        self._ids = itertools.count(1)
        self._closed = False
        self._connect()

    def _connect(self) -> None:
        self._sock = None
        self._file = None
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        try:
            if self._ssl_context is not None:
                sock = self._ssl_context.wrap_socket(
                    sock, server_hostname=self._host
                )
            file = sock.makefile("rwb")
        except OSError:
            sock.close()  # never leak the socket on a half-open connect
            raise
        self._sock = sock
        self._file = file
        if self._auth_secret is not None:
            self._authenticate()

    def _authenticate(self) -> None:
        """The client half of the shared-secret handshake: runs on every
        (re)connect, before any caller request touches the stream.  A
        no-auth server answers ``required: false`` and the handshake is a
        no-op, so a credentialed client works everywhere."""
        from ..cluster.auth import compute_mac

        hello = self._cycle("auth", None, None, None, None, None)
        if not hello.get("required"):
            return
        nonce = hello.get("nonce")
        if not isinstance(nonce, str):
            raise ServeProtocolError(
                f"auth handshake returned no nonce: {hello!r}"
            )
        self._cycle(
            "auth", None, None, None, None, None,
            mac=compute_mac(self._auth_secret, nonce),
        )

    def reconnect(self) -> None:
        """Drop the current connection and dial the same endpoint again."""
        self._teardown()
        self._connect()

    def abort(self) -> None:
        """Hard-close the connection from *another* thread.

        :meth:`close` flushes and closes the buffered stream — which
        deadlocks against a concurrent blocked read, because the buffer
        lock is held for the whole read.  This bypasses the buffer and
        shuts the raw socket down, so a thread blocked mid-request fails
        immediately with a transport error instead of waiting out its
        timeout.  The client is unusable afterwards."""
        self._closed = True
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def _teardown(self) -> None:
        """Close the stream pair, tolerating half-open or failed connects."""
        file, self._file = self._file, None
        sock, self._sock = self._sock, None
        if file is not None:
            try:
                file.close()
            except OSError:
                pass
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -- the raw request/response cycle --------------------------------------

    def request(
        self,
        verb: str,
        *,
        problem: Problem | None = None,
        instance=None,
        instances=None,
        trace_id: str | None = None,
        parent_span: str | None = None,
        instance_ref: str | None = None,
        delta=None,
        expect_version: int | None = None,
        version: int | None = None,
        worker: dict | None = None,
        workers: int | None = None,
    ) -> dict:
        """One request → the response's ``result`` payload (or a raise).

        Decide verbs get a fresh ``trace_id`` when the caller passes none,
        so every expensive request is traceable after the fact.

        Mutation verbs are **not** blindly replayed across transport
        failures, whatever ``retries`` says: a put/patch/drop that died
        mid-cycle may already have been applied, and resending it could
        double-apply.  The exception is ``instance_patch`` with
        ``expect_version`` — the CAS precondition makes a replay safe (a
        double-apply comes back as a structured ``conflict`` envelope
        instead of silently landing twice).  The same gate covers
        ``overloaded`` retries — even though a shed mutation was *not*
        executed, a retry's transport failure could still double-apply,
        so the simple rule stays simple: no replay without the CAS.
        """
        if self._closed:
            raise ServeProtocolError("client is closed")
        if trace_id is None and verb in _TRACED_VERBS:
            trace_id = new_trace_id()
        frame_kwargs = dict(
            instance_ref=instance_ref, delta=delta,
            expect_version=expect_version, version=version,
            worker=worker, workers=workers,
        )
        retries = (
            self._retries if replay_safe(verb, expect_version) else 0
        )
        for attempt in range(retries + 1):
            try:
                return self._cycle(verb, problem, instance, instances,
                                   trace_id, parent_span, **frame_kwargs)
            except RemoteError as error:
                # the server answered; only "overloaded" invites a retry
                # (the request was shed at admission, never executed) —
                # wait at least the server's hint, then resend on the
                # same healthy connection
                if error.code != "overloaded" or attempt >= retries:
                    raise
                self._sleep(backoff_delay_seconds(
                    attempt, self._backoff,
                    retry_after_ms=error.retry_after_ms,
                    rng=self._rng,
                ))
            except (OSError, ServeProtocolError):
                if attempt >= retries:
                    raise
                self._sleep(backoff_delay_seconds(
                    attempt, self._backoff, rng=self._rng
                ))
                self.reconnect()
        raise AssertionError("unreachable")  # pragma: no cover

    def _cycle(self, verb, problem, instance, instances, trace_id,
               parent_span, instance_ref=None, delta=None,
               expect_version=None, version=None, mac=None, worker=None,
               workers=None) -> dict:
        request_id = next(self._ids)
        self._file.write(
            _request_frame(request_id, verb, problem, instance, instances,
                           trace_id, parent_span, instance_ref, delta,
                           expect_version, version, mac, worker, workers)
        )
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeProtocolError("server closed the connection")
        echoed, result = decode_response(line)
        if echoed != request_id:
            raise ServeProtocolError(
                f"response id {echoed!r} does not match request "
                f"{request_id!r} (blocking clients do not pipeline)"
            )
        return result

    # -- verbs ----------------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def decide(
        self,
        problem: Problem,
        db: DatabaseInstance | None = None,
        *,
        ref: str | None = None,
        trace_id: str | None = None,
    ) -> Decision:
        """The remote certain answer, with provenance intact.

        Pass *db* to ship the instance with the request, or ``ref=`` to
        decide against a named instance previously :meth:`put_instance` on
        the server (the decision's ``incremental`` flag then reports
        whether stored state absorbed the work).
        """
        if (db is None) == (ref is None):
            raise ValueError(
                "decide needs exactly one of a database instance or a ref"
            )
        result = self.request(
            "decide", problem=problem, instance=db, instance_ref=ref,
            trace_id=trace_id,
        )
        return Decision.from_dict(result["decision"])

    def decide_batch(
        self, problem: Problem, dbs, *, trace_id: str | None = None
    ) -> BatchDecision:
        """One remote plan over an instance list."""
        result = self.request(
            "decide_batch", problem=problem, instances=list(dbs),
            trace_id=trace_id,
        )
        return BatchDecision.from_dict(result["batch"])

    def classify(self, problem: Problem) -> dict:
        return self.request("classify", problem=problem)

    def explain(self, problem: Problem) -> str:
        return self.request("explain", problem=problem)["plan"]

    # -- named instances ------------------------------------------------------

    def put_instance(
        self,
        ref: str,
        db: DatabaseInstance,
        *,
        version: int | None = None,
    ) -> dict:
        """Store (or replace) a named instance on the server; returns the
        stored descriptor (``instance``: ref/version/facts/bytes)."""
        return self.request(
            "instance_put", instance_ref=ref, instance=db, version=version
        )

    def patch_instance(
        self,
        ref: str,
        delta: Delta,
        *,
        expect_version: int | None = None,
    ) -> dict:
        """Apply a :class:`~repro.store.Delta` to a named instance.

        With ``expect_version`` the patch is compare-and-set: it applies
        only if the stored version still matches, else the server answers
        a ``conflict`` envelope — and the CAS makes the request safe to
        replay across transport failures (without it, it is not replayed).
        """
        return self.request(
            "instance_patch", instance_ref=ref, delta=delta,
            expect_version=expect_version,
        )

    def drop_instance(self, ref: str) -> dict:
        """Discard a named instance (``dropped`` reports whether it existed)."""
        return self.request("instance_drop", instance_ref=ref)

    def get_instance(self, ref: str) -> tuple[DatabaseInstance, int]:
        """Fetch a named instance back: ``(instance, version)``."""
        result = self.request("instance_get", instance_ref=ref)
        return db_io.from_dict(result["instance"]), int(result["version"])

    def list_instances(self) -> dict:
        """Every stored instance descriptor plus registry stats."""
        return self.request("instance_list")

    def stats(self) -> dict:
        return self.request("stats")

    def metrics(self) -> str:
        """The server's Prometheus text exposition (the ``metrics`` verb)."""
        return self.request("metrics")["exposition"]

    def trace(self, trace_id: str) -> dict:
        """The retained phase spans of one trace (the ``trace`` verb):
        ``{"trace_id": ..., "spans": [Span dicts in start order]}``."""
        return self.request("trace", trace_id=trace_id)

    def shutdown(self) -> dict:
        """Ask the server to drain and stop (answers before it does)."""
        return self.request("shutdown")

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the connection; idempotent and safe on broken sockets."""
        if self._closed:
            return
        self._closed = True
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncServeClient:
    """An asyncio client that pipelines: many requests in flight, responses
    routed back by echoed id.

    With ``retries=n``, an ``overloaded`` envelope (the server shed the
    request at admission — it was never executed) is retried up to *n*
    more times on the same connection, sleeping a jittered backoff step
    floored at the envelope's ``retry_after_ms`` hint first; mutation
    verbs stay gated by :func:`~repro.serve.protocol.replay_safe`.
    Transport failures are not retried here — a pipelining client's
    reconnect story belongs to its caller.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        retries: int = 0,
        backoff: BackoffPolicy | None = None,
    ):
        if retries < 0:
            raise ValueError(f"retries must be non-negative, got {retries}")
        self._reader = reader
        self._writer = writer
        self._retries = retries
        self._backoff = backoff or BackoffPolicy()
        self._rng = random.Random()
        self._ids = itertools.count(1)
        self._waiting: dict[int | str, asyncio.Future] = {}
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        self._closed = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        max_frame_bytes: int = 16 * 1024 * 1024,
        retries: int = 0,
        backoff: BackoffPolicy | None = None,
        auth_secret: str | None = None,
        ssl_context=None,  # an ssl.SSLContext; see repro.cluster.auth
    ) -> "AsyncServeClient":
        # limit= mirrors the server's frame cap: a large decide_batch or
        # stats response must not overrun asyncio's 64 KiB line default
        reader, writer = await asyncio.open_connection(
            host, port, limit=max_frame_bytes, ssl=ssl_context,
            server_hostname=(host if ssl_context is not None else None),
        )
        client = cls(reader, writer, retries=retries, backoff=backoff)
        if auth_secret is not None:
            try:
                await client._authenticate(auth_secret)
            except BaseException:
                await client.close()
                raise
        return client

    async def _authenticate(self, secret: str) -> None:
        from ..cluster.auth import compute_mac

        hello = await self.request("auth")
        if not hello.get("required"):
            return
        nonce = hello.get("nonce")
        if not isinstance(nonce, str):
            raise ServeProtocolError(
                f"auth handshake returned no nonce: {hello!r}"
            )
        await self.request("auth", mac=compute_mac(secret, nonce))

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    request_id, result = decode_response(line)
                except RemoteError as error:
                    echoed = getattr(error, "request_id", None)
                    if echoed is None:
                        # a connection-scoped error (e.g. oversize frame):
                        # no id to route by, and the server is hanging up —
                        # surface the envelope to every waiting caller
                        for future in self._waiting.values():
                            if not future.done():
                                future.set_exception(error)
                        self._waiting.clear()
                        continue
                    future = self._waiting.pop(echoed, None)
                    if future is not None and not future.done():
                        future.set_exception(error)
                    continue
                except ServeProtocolError:
                    # one undecodable frame desynchronizes the stream;
                    # treat the connection as broken (the finally block
                    # fails whatever is in flight)
                    break
                future = self._waiting.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_result(result)
        except (
            ConnectionResetError, BrokenPipeError, asyncio.CancelledError
        ):
            pass
        finally:
            # the stream is gone: fail everything in flight AND mark the
            # client broken so later request() calls raise instead of
            # writing into a half-closed socket and awaiting forever
            self._closed = True
            error = ServeProtocolError("connection closed")
            for future in self._waiting.values():
                if not future.done():
                    future.set_exception(error)
            self._waiting.clear()

    async def request(
        self,
        verb: str,
        *,
        problem: Problem | None = None,
        instance=None,
        instances=None,
        trace_id: str | None = None,
        parent_span: str | None = None,
        instance_ref: str | None = None,
        delta=None,
        expect_version: int | None = None,
        version: int | None = None,
        mac: str | None = None,
        worker: dict | None = None,
        workers: int | None = None,
    ) -> dict:
        if trace_id is None and verb in _TRACED_VERBS:
            trace_id = new_trace_id()
        frame_args = (verb, problem, instance, instances, trace_id,
                      parent_span, instance_ref, delta, expect_version,
                      version, mac, worker, workers)
        retries = (
            self._retries if replay_safe(verb, expect_version) else 0
        )
        for attempt in range(retries + 1):
            try:
                return await self._request_once(*frame_args)
            except RemoteError as error:
                if error.code != "overloaded" or attempt >= retries:
                    raise
                await asyncio.sleep(backoff_delay_seconds(
                    attempt, self._backoff,
                    retry_after_ms=error.retry_after_ms,
                    rng=self._rng,
                ))
        raise AssertionError("unreachable")  # pragma: no cover

    async def _request_once(self, verb, problem, instance, instances,
                            trace_id, parent_span, instance_ref, delta,
                            expect_version, version, mac=None, worker=None,
                            workers=None) -> dict:
        if self._closed:
            raise ServeProtocolError("client is closed")
        request_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiting[request_id] = future
        self._writer.write(
            _request_frame(request_id, verb, problem, instance, instances,
                           trace_id, parent_span, instance_ref, delta,
                           expect_version, version, mac, worker, workers)
        )
        await self._writer.drain()
        return await future

    # -- verbs ----------------------------------------------------------------

    async def ping(self) -> dict:
        return await self.request("ping")

    async def decide(
        self,
        problem: Problem,
        db: DatabaseInstance,
        *,
        trace_id: str | None = None,
    ) -> dict:
        """The full per-request result payload: ``decision`` (a
        :meth:`~repro.api.Decision.to_dict` document), ``shard``, the
        observed ``micro_batch`` size, and the ``trace_id`` the request
        ran under."""
        return await self.request(
            "decide", problem=problem, instance=db, trace_id=trace_id
        )

    async def decide_batch(
        self, problem: Problem, dbs, *, trace_id: str | None = None
    ) -> BatchDecision:
        result = await self.request(
            "decide_batch", problem=problem, instances=list(dbs),
            trace_id=trace_id,
        )
        return BatchDecision.from_dict(result["batch"])

    async def stats(self) -> dict:
        return await self.request("stats")

    async def metrics(self) -> str:
        """The server's Prometheus text exposition (the ``metrics`` verb)."""
        return (await self.request("metrics"))["exposition"]

    async def trace(self, trace_id: str) -> dict:
        """The retained phase spans of one trace (the ``trace`` verb)."""
        return await self.request("trace", trace_id=trace_id)

    async def shutdown(self) -> dict:
        return await self.request("shutdown")

    # -- lifecycle ------------------------------------------------------------

    async def close(self) -> None:
        """Cancel the reader and close the stream; idempotent, and safe
        even when the connection already died under the client."""
        if self._closed:
            return
        self._closed = True
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        except Exception:
            pass  # the reader's own failure must not leak out of close()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (OSError, ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
